//! The token exchange multigraph.

use arb_amm::curve::SwapCurve;
use arb_amm::pool::{Pool, PoolId};
use arb_amm::token::TokenId;

use crate::cycles::{self, Cycle};
use crate::error::GraphError;

/// A directed half-edge: swapping into `pool` yields token `to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeRef {
    /// Destination token.
    pub to: TokenId,
    /// Pool implementing the hop.
    pub pool: PoolId,
}

/// The outcome of applying a `Sync`-style reserve update to a pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncOutcome {
    /// The pool was live and its reserves were replaced in place.
    Updated,
    /// The new reserves are degenerate (non-positive or non-finite); the
    /// pool was retired from the adjacency structure. Idempotent: syncing
    /// an already-retired pool with degenerate reserves reports `Retired`
    /// again.
    Retired,
    /// The pool was retired and valid reserves brought it back; its edges
    /// were re-added.
    Revived,
}

/// The outcome of scanning a graph for arbitrage loops, separating the
/// profitable loops from the cycles skipped because a hop's fee-adjusted
/// rate degenerated (underflowed to zero, or the slot is retired).
///
/// The old `arbitrage_loops` path folded every failure into "not an
/// arbitrage" via `unwrap_or(NEG_INFINITY)`; this type keeps the
/// degenerate skips visible while structural errors (a cycle referencing
/// a pool the graph never had) still propagate as [`GraphError`].
#[derive(Debug, Clone, Default)]
pub struct LoopScan {
    /// Cycles whose round-trip rate is strictly above 1 (`Σ log p > 0`).
    pub loops: Vec<Cycle>,
    /// Cycles skipped because a hop's cached log-rate is `-∞`
    /// (degenerate rate or retired slot) — distinct from errors.
    pub degenerate_skipped: usize,
}

/// The token exchange graph: nodes are tokens, edges are pools.
///
/// Parallel pools between the same token pair are preserved as distinct
/// edges (a real feature of Uniswap-style DEX state: the paper's snapshot
/// has 208 pools over 51 tokens).
///
/// The graph is updatable in place: [`TokenGraph::apply_sync`] replaces a
/// pool's reserves (retiring it if they degenerate),
/// [`TokenGraph::add_pool`] appends a new pool edge, and
/// [`TokenGraph::remove_pool`] retires one. Pool ids are stable across all
/// mutations — a retired pool keeps its slot (and its last valid state)
/// so external id spaces (a chain's pool registry) stay aligned.
///
/// Every mutation also maintains a per-slot cache of the two directional
/// fee-adjusted log rates `ln(γ·r_out/r_in)` ([`TokenGraph::pool_log_rates`]),
/// the paper's `log p_ij` terms. Summing the cached values along a cycle
/// ([`TokenGraph::cycle_log_rate`]) is bit-identical to
/// [`Cycle::log_rate`] — same formula, same operand values, same order —
/// but skips the per-hop curve construction and `ln`, which is what makes
/// an incremental `Σ log p > 0` profitability screen cheap.
#[derive(Debug, Clone)]
pub struct TokenGraph {
    pools: Vec<Pool>,
    /// `live[i]` is false when pool `i` has been retired (degenerate
    /// reserves or explicit removal); its edges are absent from
    /// `adjacency` but its slot and last valid state are kept.
    live: Vec<bool>,
    adjacency: Vec<Vec<EdgeRef>>,
    live_count: usize,
    /// `log_rates[i]` = cached `[ln spot_rate(enter with token_a),
    /// ln spot_rate(enter with token_b)]` for pool `i`; both entries are
    /// `NEG_INFINITY` while the slot is retired.
    log_rates: Vec<[f64; 2]>,
    /// `bound_terms[i][d]` = cached `[√r_out, √(r_in/γ)]` for entering
    /// pool `i` in direction `d` (0 = enter with `token_a`) — the
    /// reserve-side ingredients of the per-hop fee-aware profit bound
    /// (see [`TokenGraph::pool_bound_terms`]). NaN while retired.
    bound_terms: Vec<[[f64; 2]; 2]>,
}

impl TokenGraph {
    /// Builds a graph from pools. Token ids are used as dense node indices;
    /// the node count is `1 + max(token id)`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::EmptyGraph`] when `pools` is empty.
    pub fn new(pools: Vec<Pool>) -> Result<Self, GraphError> {
        if pools.is_empty() {
            return Err(GraphError::EmptyGraph);
        }
        let token_count = pools
            .iter()
            .map(|p| p.token_a().index().max(p.token_b().index()) + 1)
            .max()
            .unwrap_or(0);
        let mut adjacency = vec![Vec::new(); token_count];
        for (i, pool) in pools.iter().enumerate() {
            let id = PoolId::new(i as u32);
            adjacency[pool.token_a().index()].push(EdgeRef {
                to: pool.token_b(),
                pool: id,
            });
            adjacency[pool.token_b().index()].push(EdgeRef {
                to: pool.token_a(),
                pool: id,
            });
        }
        let live_count = pools.len();
        let log_rates = pools.iter().map(directional_log_rates).collect();
        let bound_terms = pools.iter().map(directional_bound_terms).collect();
        Ok(TokenGraph {
            live: vec![true; live_count],
            pools,
            adjacency,
            live_count,
            log_rates,
            bound_terms,
        })
    }

    /// Number of token nodes (including isolated indices below the max id).
    pub fn token_count(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of pool slots (live and retired), i.e. `1 + max(PoolId)`.
    pub fn pool_count(&self) -> usize {
        self.pools.len()
    }

    /// Number of live (non-retired) pools.
    pub fn live_pool_count(&self) -> usize {
        self.live_count
    }

    /// All pool slots, indexable by [`PoolId::index`]. Retired pools are
    /// still present (holding their last valid state); check
    /// [`TokenGraph::is_live`] or iterate [`TokenGraph::live_pools`] when
    /// only active liquidity matters.
    pub fn pools(&self) -> &[Pool] {
        &self.pools
    }

    /// Whether `id` refers to a live (non-retired) pool.
    pub fn is_live(&self, id: PoolId) -> bool {
        self.live.get(id.index()).copied().unwrap_or(false)
    }

    /// The live pools with their ids, in slot order.
    pub fn live_pools(&self) -> impl Iterator<Item = (PoolId, &Pool)> + '_ {
        self.pools
            .iter()
            .enumerate()
            .filter(|(i, _)| self.live[*i])
            .map(|(i, p)| (PoolId::new(i as u32), p))
    }

    /// Appends a pool as a new edge, growing the token range if needed.
    /// Returns the id assigned (always the next slot).
    pub fn add_pool(&mut self, pool: Pool) -> PoolId {
        let id = PoolId::new(self.pools.len() as u32);
        let needed = pool.token_a().index().max(pool.token_b().index()) + 1;
        if needed > self.adjacency.len() {
            self.adjacency.resize(needed, Vec::new());
        }
        self.add_edges(id, &pool);
        self.log_rates.push(directional_log_rates(&pool));
        self.bound_terms.push(directional_bound_terms(&pool));
        self.pools.push(pool);
        self.live.push(true);
        self.live_count += 1;
        id
    }

    /// Retires a pool: its edges leave the adjacency structure (so no new
    /// cycles traverse it) but its slot is kept for id stability.
    /// Retiring an already-retired pool is a no-op.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownReference`] for an out-of-range id.
    pub fn remove_pool(&mut self, id: PoolId) -> Result<(), GraphError> {
        if id.index() >= self.pools.len() {
            return Err(GraphError::UnknownReference);
        }
        if self.live[id.index()] {
            self.remove_edges(id);
            self.live[id.index()] = false;
            self.live_count -= 1;
            self.log_rates[id.index()] = [f64::NEG_INFINITY; 2];
            self.bound_terms[id.index()] = [[f64::NAN; 2]; 2];
        }
        Ok(())
    }

    /// Applies a Uniswap-style `Sync`: replaces the pool's reserves in
    /// place. Degenerate reserves (non-positive or non-finite) retire the
    /// pool instead of failing the stream; valid reserves on a retired
    /// pool revive it.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownReference`] for an out-of-range id.
    pub fn apply_sync(
        &mut self,
        id: PoolId,
        reserve_a: f64,
        reserve_b: f64,
    ) -> Result<SyncOutcome, GraphError> {
        let index = id.index();
        if index >= self.pools.len() {
            return Err(GraphError::UnknownReference);
        }
        let was_live = self.live[index];
        match self.pools[index].set_reserves(reserve_a, reserve_b) {
            Ok(()) => {
                self.log_rates[index] = directional_log_rates(&self.pools[index]);
                self.bound_terms[index] = directional_bound_terms(&self.pools[index]);
                if was_live {
                    Ok(SyncOutcome::Updated)
                } else {
                    let pool = self.pools[index];
                    self.add_edges(id, &pool);
                    self.live[index] = true;
                    self.live_count += 1;
                    Ok(SyncOutcome::Revived)
                }
            }
            Err(_) => {
                if was_live {
                    self.remove_edges(id);
                    self.live[index] = false;
                    self.live_count -= 1;
                    self.log_rates[index] = [f64::NEG_INFINITY; 2];
                    self.bound_terms[index] = [[f64::NAN; 2]; 2];
                }
                Ok(SyncOutcome::Retired)
            }
        }
    }

    fn add_edges(&mut self, id: PoolId, pool: &Pool) {
        self.adjacency[pool.token_a().index()].push(EdgeRef {
            to: pool.token_b(),
            pool: id,
        });
        self.adjacency[pool.token_b().index()].push(EdgeRef {
            to: pool.token_a(),
            pool: id,
        });
    }

    fn remove_edges(&mut self, id: PoolId) {
        let pool = self.pools[id.index()];
        for token in [pool.token_a(), pool.token_b()] {
            self.adjacency[token.index()].retain(|e| e.pool != id);
        }
    }

    /// The pool behind `id`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownReference`] for an out-of-range id.
    pub fn pool(&self, id: PoolId) -> Result<&Pool, GraphError> {
        self.pools
            .get(id.index())
            .ok_or(GraphError::UnknownReference)
    }

    /// Outgoing edges from a token (empty for unknown/isolated tokens).
    pub fn neighbors(&self, token: TokenId) -> &[EdgeRef] {
        self.adjacency.get(token.index()).map_or(&[], Vec::as_slice)
    }

    /// Tokens that have at least one pool.
    pub fn active_tokens(&self) -> impl Iterator<Item = TokenId> + '_ {
        self.adjacency
            .iter()
            .enumerate()
            .filter(|(_, adj)| !adj.is_empty())
            .map(|(i, _)| TokenId::new(i as u32))
    }

    /// The directional swap curve for entering `pool` with `token_in`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownReference`] for an unknown pool and
    /// forwards AMM errors for a token not in the pool.
    pub fn curve(&self, pool: PoolId, token_in: TokenId) -> Result<SwapCurve, GraphError> {
        Ok(self.pool(pool)?.curve(token_in)?)
    }

    /// The directional swap curves along a cycle, in hop order.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::DisconnectedCycle`] if consecutive hops do not
    /// share tokens correctly.
    pub fn curves_for(&self, cycle: &Cycle) -> Result<Vec<SwapCurve>, GraphError> {
        cycle.validate(self)?;
        let n = cycle.len();
        (0..n)
            .map(|j| self.curve(cycle.pools()[j], cycle.tokens()[j]))
            .collect()
    }

    /// All directed simple cycles of exactly `length` hops, each rotation
    /// canonicalized (the smallest token id comes first). Both directions
    /// of an undirected loop are returned — they are distinct trades with
    /// reciprocal-ish rates, and at most one is profitable after fees.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::CycleTooShort`] for `length < 2`.
    pub fn cycles(&self, length: usize) -> Result<Vec<Cycle>, GraphError> {
        cycles::enumerate(self, length)
    }

    /// The cached directional fee-adjusted log rates of a pool slot:
    /// `[ln spot_rate(enter with token_a), ln spot_rate(enter with
    /// token_b)]`. Retired slots report `[-∞, -∞]`. Out-of-range ids also
    /// report `[-∞, -∞]` — callers that must distinguish go through
    /// [`TokenGraph::pool`].
    pub fn pool_log_rates(&self, id: PoolId) -> [f64; 2] {
        self.log_rates
            .get(id.index())
            .copied()
            .unwrap_or([f64::NEG_INFINITY; 2])
    }

    /// The cached per-hop profit-bound ingredients of a pool slot:
    /// `terms[d] = [√r_out, √(r_in/γ)]` for entry direction `d` (0 =
    /// enter with `token_a`, 1 = enter with `token_b`).
    ///
    /// For a constant-product hop with input reserve `x`, output reserve
    /// `y`, fee multiplier `γ`, and USD prices `P_in`/`P_out`, the
    /// unconstrained maximum of the hop's standalone profit
    /// `P_out·F(Δ) − P_in·Δ` over `Δ ≥ 0` has the closed form
    ///
    /// ```text
    /// max(0, √(P_out·y) − √(P_in·x/γ))²
    ///     = max(0, √P_out·terms[d][0] − √P_in·terms[d][1])²
    /// ```
    ///
    /// (stationary point of the concave objective; zero when the spot
    /// rate is already unprofitable). Summed along a cycle, the per-hop
    /// maxima upper-bound any coordinated loop profit, because the loop's
    /// USD profit telescopes into exactly these per-hop terms.
    ///
    /// Retired and out-of-range slots report NaN terms, which poison any
    /// bound computed from them — callers must treat a non-finite bound
    /// as "no bound available".
    pub fn pool_bound_terms(&self, id: PoolId) -> [[f64; 2]; 2] {
        self.bound_terms
            .get(id.index())
            .copied()
            .unwrap_or([[f64::NAN; 2]; 2])
    }

    /// The paper's arbitrage indicator `Σ_j log p_j` for a cycle, summed
    /// from the cached per-slot log rates in hop order — bit-identical to
    /// [`Cycle::log_rate`] when every hop's slot is live, `-∞` when any
    /// hop's rate degenerated or its slot is retired.
    ///
    /// # Errors
    ///
    /// * [`GraphError::UnknownReference`] for a hop pool the graph never
    ///   had (a structural defect, **not** folded into `-∞`).
    /// * [`GraphError::DisconnectedCycle`] when a hop's token is not in
    ///   its pool.
    pub fn cycle_log_rate(&self, cycle: &Cycle) -> Result<f64, GraphError> {
        let mut sum = 0.0;
        for (pool, token_in) in cycle.pools().iter().zip(cycle.tokens()) {
            let p = self.pool(*pool)?;
            let dir = if *token_in == p.token_a() {
                0
            } else if *token_in == p.token_b() {
                1
            } else {
                return Err(GraphError::DisconnectedCycle);
            };
            sum += self.log_rates[pool.index()][dir];
        }
        Ok(sum)
    }

    /// The subset of [`TokenGraph::cycles`] that are arbitrage loops:
    /// round-trip rate strictly above 1 (paper's `Σ log p > 0` condition).
    ///
    /// # Errors
    ///
    /// See [`TokenGraph::scan_arbitrage_loops`].
    pub fn arbitrage_loops(&self, length: usize) -> Result<Vec<Cycle>, GraphError> {
        Ok(self.scan_arbitrage_loops(length)?.loops)
    }

    /// [`TokenGraph::arbitrage_loops`] with the degenerate skips counted
    /// instead of silently conflated: a cycle whose cached log-rate is
    /// `-∞` (a hop's rate underflowed to zero, or its slot retired
    /// between enumeration and scan) is reported in
    /// [`LoopScan::degenerate_skipped`], while structural errors — a hop
    /// referencing a pool this graph never had — propagate as
    /// [`GraphError`] rather than being swallowed.
    ///
    /// # Errors
    ///
    /// See [`TokenGraph::cycles`] and [`TokenGraph::cycle_log_rate`].
    pub fn scan_arbitrage_loops(&self, length: usize) -> Result<LoopScan, GraphError> {
        let mut scan = LoopScan::default();
        for cycle in self.cycles(length)? {
            let log_rate = self.cycle_log_rate(&cycle)?;
            if log_rate == f64::NEG_INFINITY {
                scan.degenerate_skipped += 1;
            } else if log_rate > 0.0 {
                scan.loops.push(cycle);
            }
        }
        Ok(scan)
    }
}

/// The two directional `ln spot_rate` values of a live pool, computed
/// through the exact code path [`Cycle::log_rate`] uses
/// (`curve(token_in).spot_rate().ln()`) so cached sums stay bit-identical
/// to fresh ones. A pool whose curve cannot be built (impossible for a
/// validated live pool, but kept total) caches `-∞`.
fn directional_log_rates(pool: &Pool) -> [f64; 2] {
    let log = |token_in| {
        pool.curve(token_in)
            .map_or(f64::NEG_INFINITY, |c: SwapCurve| c.spot_rate().ln())
    };
    [log(pool.token_a()), log(pool.token_b())]
}

/// The two directional `[√r_out, √(r_in/γ)]` ingredient pairs of the
/// per-hop profit bound (see [`TokenGraph::pool_bound_terms`]). A pool
/// whose curve cannot be built caches NaN, which poisons — rather than
/// silently zeroes — any bound summed from it.
fn directional_bound_terms(pool: &Pool) -> [[f64; 2]; 2] {
    let terms = |token_in| {
        pool.curve(token_in).map_or([f64::NAN; 2], |c: SwapCurve| {
            [c.reserve_out().sqrt(), (c.reserve_in() / c.gamma()).sqrt()]
        })
    };
    [terms(pool.token_a()), terms(pool.token_b())]
}

#[cfg(test)]
mod tests {
    use super::*;
    use arb_amm::fee::FeeRate;

    fn t(i: u32) -> TokenId {
        TokenId::new(i)
    }

    pub(crate) fn triangle() -> TokenGraph {
        let fee = FeeRate::UNISWAP_V2;
        TokenGraph::new(vec![
            Pool::new(t(0), t(1), 100.0, 200.0, fee).unwrap(),
            Pool::new(t(1), t(2), 300.0, 200.0, fee).unwrap(),
            Pool::new(t(2), t(0), 200.0, 400.0, fee).unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn empty_rejected() {
        assert_eq!(TokenGraph::new(vec![]).unwrap_err(), GraphError::EmptyGraph);
    }

    #[test]
    fn adjacency_is_bidirectional() {
        let g = triangle();
        assert_eq!(g.token_count(), 3);
        assert_eq!(g.pool_count(), 3);
        assert_eq!(g.neighbors(t(0)).len(), 2);
        assert_eq!(g.neighbors(t(1)).len(), 2);
        assert_eq!(g.neighbors(t(9)).len(), 0);
    }

    #[test]
    fn active_tokens_skips_isolated() {
        let fee = FeeRate::UNISWAP_V2;
        // Token 1 unused: pool connects 0 and 5.
        let g = TokenGraph::new(vec![Pool::new(t(0), t(5), 10.0, 10.0, fee).unwrap()]).unwrap();
        let active: Vec<_> = g.active_tokens().collect();
        assert_eq!(active, vec![t(0), t(5)]);
    }

    #[test]
    fn curve_direction_matters() {
        let g = triangle();
        let c01 = g.curve(PoolId::new(0), t(0)).unwrap();
        let c10 = g.curve(PoolId::new(0), t(1)).unwrap();
        assert_eq!(c01.reserve_in(), 100.0);
        assert_eq!(c10.reserve_in(), 200.0);
    }

    #[test]
    fn unknown_pool_rejected() {
        let g = triangle();
        assert_eq!(
            g.curve(PoolId::new(99), t(0)).unwrap_err(),
            GraphError::UnknownReference
        );
    }

    #[test]
    fn apply_sync_updates_in_place() {
        let mut g = triangle();
        assert_eq!(
            g.apply_sync(PoolId::new(0), 150.0, 250.0).unwrap(),
            SyncOutcome::Updated
        );
        assert_eq!(g.pool(PoolId::new(0)).unwrap().reserve_a(), 150.0);
        assert_eq!(g.live_pool_count(), 3);
    }

    #[test]
    fn degenerate_sync_retires_and_valid_sync_revives() {
        let mut g = triangle();
        assert_eq!(
            g.apply_sync(PoolId::new(1), 0.0, 10.0).unwrap(),
            SyncOutcome::Retired
        );
        assert!(!g.is_live(PoolId::new(1)));
        assert_eq!(g.live_pool_count(), 2);
        assert_eq!(g.neighbors(t(1)).len(), 1, "edge to pool 1 removed");
        // Retired slots keep id stability and the last valid state.
        assert_eq!(g.pool_count(), 3);
        assert_eq!(g.pool(PoolId::new(1)).unwrap().reserve_a(), 300.0);
        // Idempotent while degenerate.
        assert_eq!(
            g.apply_sync(PoolId::new(1), f64::NAN, 10.0).unwrap(),
            SyncOutcome::Retired
        );
        // Valid reserves bring it back.
        assert_eq!(
            g.apply_sync(PoolId::new(1), 310.0, 190.0).unwrap(),
            SyncOutcome::Revived
        );
        assert!(g.is_live(PoolId::new(1)));
        assert_eq!(g.neighbors(t(1)).len(), 2);
        assert_eq!(g.cycles(3).unwrap().len(), 2);
    }

    #[test]
    fn add_and_remove_pool_keep_ids_stable() {
        let fee = FeeRate::UNISWAP_V2;
        let mut g = triangle();
        let id = g.add_pool(Pool::new(t(0), t(3), 10.0, 10.0, fee).unwrap());
        assert_eq!(id, PoolId::new(3));
        assert_eq!(g.token_count(), 4);
        assert_eq!(g.live_pool_count(), 4);
        g.remove_pool(PoolId::new(0)).unwrap();
        assert_eq!(g.live_pool_count(), 3);
        assert!(!g.is_live(PoolId::new(0)));
        // The triangle is broken without pool 0.
        assert!(g.cycles(3).unwrap().is_empty());
        // Ids of the survivors are unchanged.
        let live: Vec<PoolId> = g.live_pools().map(|(id, _)| id).collect();
        assert_eq!(live, vec![PoolId::new(1), PoolId::new(2), PoolId::new(3)]);
        assert_eq!(
            g.remove_pool(PoolId::new(9)).unwrap_err(),
            GraphError::UnknownReference
        );
    }

    #[test]
    fn cached_log_rates_track_every_mutation() {
        let fee = FeeRate::UNISWAP_V2;
        let mut g = triangle();
        let fresh = |g: &TokenGraph, id: u32| {
            let p = g.pool(PoolId::new(id)).unwrap();
            [
                p.curve(p.token_a()).unwrap().spot_rate().ln(),
                p.curve(p.token_b()).unwrap().spot_rate().ln(),
            ]
        };
        for id in 0..3 {
            assert_eq!(g.pool_log_rates(PoolId::new(id)), fresh(&g, id));
        }
        // Sync updates the cache in place, bit-for-bit.
        g.apply_sync(PoolId::new(0), 151.0, 249.0).unwrap();
        assert_eq!(g.pool_log_rates(PoolId::new(0)), fresh(&g, 0));
        // Retired slots (degenerate sync or explicit removal) cache -inf.
        g.apply_sync(PoolId::new(1), 0.0, 1.0).unwrap();
        assert_eq!(g.pool_log_rates(PoolId::new(1)), [f64::NEG_INFINITY; 2]);
        g.remove_pool(PoolId::new(2)).unwrap();
        assert_eq!(g.pool_log_rates(PoolId::new(2)), [f64::NEG_INFINITY; 2]);
        // Revival and appends recompute.
        g.apply_sync(PoolId::new(1), 310.0, 190.0).unwrap();
        assert_eq!(g.pool_log_rates(PoolId::new(1)), fresh(&g, 1));
        let id = g.add_pool(Pool::new(t(0), t(3), 10.0, 30.0, fee).unwrap());
        assert_eq!(g.pool_log_rates(id), fresh(&g, id.index() as u32));
        // Out-of-range ids degrade to -inf rather than panicking.
        assert_eq!(g.pool_log_rates(PoolId::new(99)), [f64::NEG_INFINITY; 2]);
    }

    #[test]
    fn cached_bound_terms_track_every_mutation() {
        let fee = FeeRate::UNISWAP_V2;
        let mut g = triangle();
        let fresh = |g: &TokenGraph, id: u32| {
            let p = g.pool(PoolId::new(id)).unwrap();
            let terms = |token_in| {
                let c = p.curve(token_in).unwrap();
                [c.reserve_out().sqrt(), (c.reserve_in() / c.gamma()).sqrt()]
            };
            [terms(p.token_a()), terms(p.token_b())]
        };
        for id in 0..3 {
            assert_eq!(g.pool_bound_terms(PoolId::new(id)), fresh(&g, id));
        }
        // Sync updates the cache in place, bit-for-bit.
        g.apply_sync(PoolId::new(0), 151.0, 249.0).unwrap();
        assert_eq!(g.pool_bound_terms(PoolId::new(0)), fresh(&g, 0));
        // Retired slots (degenerate sync or explicit removal) cache NaN.
        g.apply_sync(PoolId::new(1), 0.0, 1.0).unwrap();
        assert!(g.pool_bound_terms(PoolId::new(1))[0][0].is_nan());
        g.remove_pool(PoolId::new(2)).unwrap();
        assert!(g.pool_bound_terms(PoolId::new(2))[1][1].is_nan());
        // Revival and appends recompute.
        g.apply_sync(PoolId::new(1), 310.0, 190.0).unwrap();
        assert_eq!(g.pool_bound_terms(PoolId::new(1)), fresh(&g, 1));
        let id = g.add_pool(Pool::new(t(0), t(3), 10.0, 30.0, fee).unwrap());
        assert_eq!(g.pool_bound_terms(id), fresh(&g, id.index() as u32));
        // Out-of-range ids degrade to NaN rather than panicking.
        assert!(g.pool_bound_terms(PoolId::new(99))[0][0].is_nan());
    }

    #[test]
    fn cycle_log_rate_is_bit_identical_to_fresh_computation() {
        let g = triangle();
        for cycle in g.cycles(3).unwrap() {
            assert_eq!(
                g.cycle_log_rate(&cycle).unwrap().to_bits(),
                cycle.log_rate(&g).unwrap().to_bits()
            );
        }
        // Structural errors propagate instead of degrading to -inf.
        let bogus = Cycle::new(vec![t(0), t(1)], vec![PoolId::new(0), PoolId::new(99)]).unwrap();
        assert_eq!(
            g.cycle_log_rate(&bogus).unwrap_err(),
            GraphError::UnknownReference
        );
        let disconnected =
            Cycle::new(vec![t(7), t(8)], vec![PoolId::new(0), PoolId::new(1)]).unwrap();
        assert_eq!(
            g.cycle_log_rate(&disconnected).unwrap_err(),
            GraphError::DisconnectedCycle
        );
    }

    #[test]
    fn scan_counts_degenerate_skips_separately() {
        let fee = FeeRate::UNISWAP_V2;
        // A triangle whose (1,2) edge has a rate that underflows to zero
        // in one direction: reserves are valid (positive, finite) so the
        // pool stays live, but ln(0) = -inf marks its cycles degenerate.
        let g = TokenGraph::new(vec![
            Pool::new(t(0), t(1), 100.0, 200.0, fee).unwrap(),
            Pool::new(t(1), t(2), 1e300, 1e-300, fee).unwrap(),
            Pool::new(t(2), t(0), 200.0, 400.0, fee).unwrap(),
        ])
        .unwrap();
        let scan = g.scan_arbitrage_loops(3).unwrap();
        // Direction 1→2 underflows (rate 0); the reverse overflows to
        // +inf, whose cycle sums to +inf and is a (nonsensical but
        // non-degenerate) loop — exactly what the old filter kept.
        assert_eq!(scan.degenerate_skipped, 1);
        assert_eq!(g.arbitrage_loops(3).unwrap().len(), scan.loops.len());

        // A healthy triangle has no degenerate skips.
        let healthy = triangle().scan_arbitrage_loops(3).unwrap();
        assert_eq!(healthy.degenerate_skipped, 0);
        assert_eq!(healthy.loops.len(), 1);
    }

    #[test]
    fn triangle_has_two_directed_cycles_one_profitable() {
        let g = triangle();
        let all = g.cycles(3).unwrap();
        assert_eq!(all.len(), 2, "two directions of the one triangle");
        let arbs = g.arbitrage_loops(3).unwrap();
        assert_eq!(arbs.len(), 1, "exactly one profitable direction");
        // The profitable direction is 0 → 1 → 2 → 0 (the paper's example).
        assert_eq!(arbs[0].tokens(), &[t(0), t(1), t(2)]);
    }
}
