//! The token exchange multigraph.

use arb_amm::curve::SwapCurve;
use arb_amm::pool::{Pool, PoolId};
use arb_amm::token::TokenId;

use crate::cycles::{self, Cycle};
use crate::error::GraphError;

/// A directed half-edge: swapping into `pool` yields token `to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeRef {
    /// Destination token.
    pub to: TokenId,
    /// Pool implementing the hop.
    pub pool: PoolId,
}

/// The token exchange graph: nodes are tokens, edges are pools.
///
/// Parallel pools between the same token pair are preserved as distinct
/// edges (a real feature of Uniswap-style DEX state: the paper's snapshot
/// has 208 pools over 51 tokens).
#[derive(Debug, Clone)]
pub struct TokenGraph {
    pools: Vec<Pool>,
    adjacency: Vec<Vec<EdgeRef>>,
    token_count: usize,
}

impl TokenGraph {
    /// Builds a graph from pools. Token ids are used as dense node indices;
    /// the node count is `1 + max(token id)`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::EmptyGraph`] when `pools` is empty.
    pub fn new(pools: Vec<Pool>) -> Result<Self, GraphError> {
        if pools.is_empty() {
            return Err(GraphError::EmptyGraph);
        }
        let token_count = pools
            .iter()
            .map(|p| p.token_a().index().max(p.token_b().index()) + 1)
            .max()
            .unwrap_or(0);
        let mut adjacency = vec![Vec::new(); token_count];
        for (i, pool) in pools.iter().enumerate() {
            let id = PoolId::new(i as u32);
            adjacency[pool.token_a().index()].push(EdgeRef {
                to: pool.token_b(),
                pool: id,
            });
            adjacency[pool.token_b().index()].push(EdgeRef {
                to: pool.token_a(),
                pool: id,
            });
        }
        Ok(TokenGraph {
            pools,
            adjacency,
            token_count,
        })
    }

    /// Number of token nodes (including isolated indices below the max id).
    pub fn token_count(&self) -> usize {
        self.token_count
    }

    /// Number of pool edges.
    pub fn pool_count(&self) -> usize {
        self.pools.len()
    }

    /// All pools, indexable by [`PoolId::index`].
    pub fn pools(&self) -> &[Pool] {
        &self.pools
    }

    /// The pool behind `id`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownReference`] for an out-of-range id.
    pub fn pool(&self, id: PoolId) -> Result<&Pool, GraphError> {
        self.pools
            .get(id.index())
            .ok_or(GraphError::UnknownReference)
    }

    /// Outgoing edges from a token (empty for unknown/isolated tokens).
    pub fn neighbors(&self, token: TokenId) -> &[EdgeRef] {
        self.adjacency.get(token.index()).map_or(&[], Vec::as_slice)
    }

    /// Tokens that have at least one pool.
    pub fn active_tokens(&self) -> impl Iterator<Item = TokenId> + '_ {
        self.adjacency
            .iter()
            .enumerate()
            .filter(|(_, adj)| !adj.is_empty())
            .map(|(i, _)| TokenId::new(i as u32))
    }

    /// The directional swap curve for entering `pool` with `token_in`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownReference`] for an unknown pool and
    /// forwards AMM errors for a token not in the pool.
    pub fn curve(&self, pool: PoolId, token_in: TokenId) -> Result<SwapCurve, GraphError> {
        Ok(self.pool(pool)?.curve(token_in)?)
    }

    /// The directional swap curves along a cycle, in hop order.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::DisconnectedCycle`] if consecutive hops do not
    /// share tokens correctly.
    pub fn curves_for(&self, cycle: &Cycle) -> Result<Vec<SwapCurve>, GraphError> {
        cycle.validate(self)?;
        let n = cycle.len();
        (0..n)
            .map(|j| self.curve(cycle.pools()[j], cycle.tokens()[j]))
            .collect()
    }

    /// All directed simple cycles of exactly `length` hops, each rotation
    /// canonicalized (the smallest token id comes first). Both directions
    /// of an undirected loop are returned — they are distinct trades with
    /// reciprocal-ish rates, and at most one is profitable after fees.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::CycleTooShort`] for `length < 2`.
    pub fn cycles(&self, length: usize) -> Result<Vec<Cycle>, GraphError> {
        cycles::enumerate(self, length)
    }

    /// The subset of [`TokenGraph::cycles`] that are arbitrage loops:
    /// round-trip rate strictly above 1 (paper's `Σ log p > 0` condition).
    ///
    /// # Errors
    ///
    /// See [`TokenGraph::cycles`].
    pub fn arbitrage_loops(&self, length: usize) -> Result<Vec<Cycle>, GraphError> {
        Ok(self
            .cycles(length)?
            .into_iter()
            .filter(|c| c.log_rate(self).unwrap_or(f64::NEG_INFINITY) > 0.0)
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arb_amm::fee::FeeRate;

    fn t(i: u32) -> TokenId {
        TokenId::new(i)
    }

    pub(crate) fn triangle() -> TokenGraph {
        let fee = FeeRate::UNISWAP_V2;
        TokenGraph::new(vec![
            Pool::new(t(0), t(1), 100.0, 200.0, fee).unwrap(),
            Pool::new(t(1), t(2), 300.0, 200.0, fee).unwrap(),
            Pool::new(t(2), t(0), 200.0, 400.0, fee).unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn empty_rejected() {
        assert_eq!(TokenGraph::new(vec![]).unwrap_err(), GraphError::EmptyGraph);
    }

    #[test]
    fn adjacency_is_bidirectional() {
        let g = triangle();
        assert_eq!(g.token_count(), 3);
        assert_eq!(g.pool_count(), 3);
        assert_eq!(g.neighbors(t(0)).len(), 2);
        assert_eq!(g.neighbors(t(1)).len(), 2);
        assert_eq!(g.neighbors(t(9)).len(), 0);
    }

    #[test]
    fn active_tokens_skips_isolated() {
        let fee = FeeRate::UNISWAP_V2;
        // Token 1 unused: pool connects 0 and 5.
        let g = TokenGraph::new(vec![Pool::new(t(0), t(5), 10.0, 10.0, fee).unwrap()]).unwrap();
        let active: Vec<_> = g.active_tokens().collect();
        assert_eq!(active, vec![t(0), t(5)]);
    }

    #[test]
    fn curve_direction_matters() {
        let g = triangle();
        let c01 = g.curve(PoolId::new(0), t(0)).unwrap();
        let c10 = g.curve(PoolId::new(0), t(1)).unwrap();
        assert_eq!(c01.reserve_in(), 100.0);
        assert_eq!(c10.reserve_in(), 200.0);
    }

    #[test]
    fn unknown_pool_rejected() {
        let g = triangle();
        assert_eq!(
            g.curve(PoolId::new(99), t(0)).unwrap_err(),
            GraphError::UnknownReference
        );
    }

    #[test]
    fn triangle_has_two_directed_cycles_one_profitable() {
        let g = triangle();
        let all = g.cycles(3).unwrap();
        assert_eq!(all.len(), 2, "two directions of the one triangle");
        let arbs = g.arbitrage_loops(3).unwrap();
        assert_eq!(arbs.len(), 1, "exactly one profitable direction");
        // The profitable direction is 0 → 1 → 2 → 0 (the paper's example).
        assert_eq!(arbs[0].tokens(), &[t(0), t(1), t(2)]);
    }
}
