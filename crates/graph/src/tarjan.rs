//! Tarjan's strongly connected components.
//!
//! Used to prune cycle search: every cycle lies entirely inside one SCC, so
//! enumeration can skip cross-component edges. (For pool graphs every edge
//! is bidirectional, making SCCs coincide with connected components, but
//! the algorithm is implemented in full generality and is reused by
//! [`crate::johnson`] on induced subgraphs.)

use arb_amm::token::TokenId;

use crate::token_graph::TokenGraph;

/// Computes the strongly connected components of the token graph, each as
/// a list of tokens. Components are returned in reverse topological order
/// (a property of Tarjan's algorithm); isolated token indices form
/// singleton components only if they have at least one edge, otherwise they
/// are skipped.
pub fn strongly_connected_components(graph: &TokenGraph) -> Vec<Vec<TokenId>> {
    let n = graph.token_count();
    let mut adjacency: Vec<Vec<usize>> = vec![Vec::new(); n];
    for token in graph.active_tokens() {
        let u = token.index();
        for edge in graph.neighbors(token) {
            adjacency[u].push(edge.to.index());
        }
    }
    let allowed = vec![true; n];
    scc_indices(&adjacency, &allowed)
        .into_iter()
        .filter(|comp| {
            // Skip isolated indices (no pools at all).
            comp.len() > 1 || !adjacency[comp[0]].is_empty()
        })
        .map(|comp| comp.into_iter().map(|i| TokenId::new(i as u32)).collect())
        .collect()
}

/// Iterative Tarjan over a `usize`-indexed adjacency restricted to
/// `allowed` vertices. Shared with Johnson's algorithm, which repeatedly
/// needs SCCs of induced subgraphs.
pub(crate) fn scc_indices(adjacency: &[Vec<usize>], allowed: &[bool]) -> Vec<Vec<usize>> {
    let n = adjacency.len();
    const UNVISITED: usize = usize::MAX;
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut components = Vec::new();

    // Explicit DFS state: (vertex, next child position).
    let mut call_stack: Vec<(usize, usize)> = Vec::new();
    for root in 0..n {
        if !allowed[root] || index[root] != UNVISITED {
            continue;
        }
        call_stack.push((root, 0));
        index[root] = next_index;
        lowlink[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;

        while let Some(&mut (v, ref mut child)) = call_stack.last_mut() {
            let mut descended = false;
            while *child < adjacency[v].len() {
                let w = adjacency[v][*child];
                *child += 1;
                if !allowed[w] {
                    continue;
                }
                if index[w] == UNVISITED {
                    index[w] = next_index;
                    lowlink[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    call_stack.push((w, 0));
                    descended = true;
                    break;
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            }
            if descended {
                continue;
            }
            // v finished: pop and propagate lowlink.
            call_stack.pop();
            if let Some(&(parent, _)) = call_stack.last() {
                lowlink[parent] = lowlink[parent].min(lowlink[v]);
            }
            if lowlink[v] == index[v] {
                let mut component = Vec::new();
                loop {
                    let w = stack.pop().expect("tarjan stack underflow");
                    on_stack[w] = false;
                    component.push(w);
                    if w == v {
                        break;
                    }
                }
                components.push(component);
            }
        }
    }
    components
}

#[cfg(test)]
mod tests {
    use super::*;
    use arb_amm::fee::FeeRate;
    use arb_amm::pool::Pool;

    fn t(i: u32) -> TokenId {
        TokenId::new(i)
    }

    #[test]
    fn single_component_for_connected_pools() {
        let fee = FeeRate::UNISWAP_V2;
        let g = TokenGraph::new(vec![
            Pool::new(t(0), t(1), 10.0, 10.0, fee).unwrap(),
            Pool::new(t(1), t(2), 10.0, 10.0, fee).unwrap(),
        ])
        .unwrap();
        let sccs = strongly_connected_components(&g);
        assert_eq!(sccs.len(), 1);
        assert_eq!(sccs[0].len(), 3);
    }

    #[test]
    fn two_islands_two_components() {
        let fee = FeeRate::UNISWAP_V2;
        let g = TokenGraph::new(vec![
            Pool::new(t(0), t(1), 10.0, 10.0, fee).unwrap(),
            Pool::new(t(2), t(3), 10.0, 10.0, fee).unwrap(),
        ])
        .unwrap();
        let mut sizes: Vec<usize> = strongly_connected_components(&g)
            .iter()
            .map(Vec::len)
            .collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![2, 2]);
    }

    #[test]
    fn directed_helper_detects_dag_structure() {
        // Pure digraph: 0→1→2, 2→1 forms SCC {1,2}; {0} alone.
        let adjacency = vec![vec![1], vec![2], vec![1]];
        let allowed = vec![true; 3];
        let mut sccs = scc_indices(&adjacency, &allowed);
        for c in &mut sccs {
            c.sort_unstable();
        }
        sccs.sort();
        assert!(sccs.contains(&vec![0]));
        assert!(sccs.contains(&vec![1, 2]));
    }

    #[test]
    fn restriction_excludes_vertices() {
        let adjacency = vec![vec![1], vec![0], vec![]];
        let allowed = vec![true, false, true];
        let sccs = scc_indices(&adjacency, &allowed);
        // With 1 excluded, 0 is a singleton.
        assert!(sccs.iter().any(|c| c == &vec![0]));
        assert!(!sccs.iter().any(|c| c.contains(&1)));
    }
}
