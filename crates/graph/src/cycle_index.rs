//! A persistent cycle index for incremental discovery.
//!
//! Re-enumerating every bounded-length cycle on every market tick is the
//! dominant cost of a naive scan loop: the DFS is exponential in loop
//! length while a tick usually touches a handful of pools. The
//! [`CycleIndex`] pays the enumeration cost **once** and then maintains
//! two structures:
//!
//! * a stable arena of cycles (`CycleId` → [`Cycle`], tombstoned on
//!   retirement so ids never shift), and
//! * an inverted index `PoolId → [CycleId]` answering "which cycles does
//!   this pool participate in?" in O(candidates).
//!
//! When a pool's reserves move, only the cycles in its posting list can
//! change profitability; when a pool appears (or revives), only cycles
//! *through that pool* are new and a restricted DFS enumerates exactly
//! those; when a pool degenerates, its posting list names every cycle to
//! retire. The streaming engine in `arb-engine` drives these hooks from
//! chain events.
//!
//! # The incremental profitability screen
//!
//! Besides membership, the index maintains each live cycle's **running
//! log-sum** `Σ_j ln p_j` — the paper's arbitrage indicator — from the
//! per-slot directional log rates the [`TokenGraph`] caches. Posting
//! entries record which direction a cycle traverses its pool in
//! ([`PoolCycleRef`]), so when that pool syncs the cycle's sum takes an
//! O(1) `new_log − old_log` delta ([`CycleIndex::on_pool_synced`])
//! instead of an O(hops) recompute. Floating-point drift from repeated
//! deltas is bounded by an exact resummation every
//! [`CycleIndex::RESUM_INTERVAL`] updates (and immediately whenever a
//! non-finite rate passes through — `-∞ − -∞` must never poison a sum
//! with NaN), which keeps every incremental sum within
//! [`CycleIndex::SCREEN_DRIFT_MARGIN`] of the exact value. A consumer may
//! therefore *soundly* skip any cycle whose incremental sum is at most
//! `−SCREEN_DRIFT_MARGIN`: its exact log-rate is certainly ≤ 0, so a full
//! evaluation would discard it as "not an arbitrage" anyway.

use arb_amm::pool::PoolId;
use arb_amm::token::TokenId;

use crate::cycles::Cycle;
use crate::error::GraphError;
use crate::token_graph::TokenGraph;

/// A stable identifier for an indexed cycle. Ids are never reused while
/// the cycle is live; retired slots may be recycled for later additions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CycleId(u32);

impl CycleId {
    /// The raw slot index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// A cycle id from a raw arena slot (the inverse of
    /// [`CycleId::index`]) — for dense slot-keyed side tables like the
    /// engine's dirty bitset. Forged ids simply resolve to `None` in
    /// [`CycleIndex::get`].
    pub const fn from_index(index: usize) -> Self {
        CycleId(index as u32)
    }
}

impl std::fmt::Display for CycleId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "C{}", self.0)
    }
}

/// One posting-list entry: a live cycle through a pool, plus the
/// direction the cycle enters that pool in (a simple cycle's tokens are
/// distinct, so it traverses each of its pools exactly once).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolCycleRef {
    /// The cycle traversing the pool.
    pub cycle: CycleId,
    /// `true` when the cycle's hop enters the pool with `token_a` (its
    /// log-rate is the slot's direction-0 cached value).
    pub enters_with_token_a: bool,
}

/// Counters describing one screen-maintenance call: how many per-cycle
/// log-sums took an O(1) delta, and how many fell back to an exact
/// resummation (periodic drift control, or a non-finite rate).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScreenUpdate {
    /// Log-sums updated with a `new − old` delta.
    pub deltas: usize,
    /// Log-sums recomputed exactly from the graph's cached rates.
    pub resummations: usize,
}

/// Per-cycle screen state, parallel to the cycle arena.
#[derive(Debug, Clone, Copy, Default)]
struct ScreenSlot {
    /// Running `Σ ln p_j`, delta-maintained between resummations.
    log_sum: f64,
    /// Delta updates applied since the last exact resummation.
    updates_since_resum: u32,
}

/// The persistent cycle index: every directed simple cycle with
/// `min_len..=max_len` hops, plus the pool → cycles inverted index and
/// the per-cycle log-sum profitability screen.
#[derive(Debug, Clone)]
pub struct CycleIndex {
    min_len: usize,
    max_len: usize,
    /// Cycle arena; `None` marks a retired slot.
    cycles: Vec<Option<Cycle>>,
    /// Screen state, parallel to `cycles` (stale for retired slots).
    screen: Vec<ScreenSlot>,
    /// Posting lists: pool slot → live cycles through that pool, with
    /// traversal direction.
    by_pool: Vec<Vec<PoolCycleRef>>,
    /// Retired slots available for reuse.
    free: Vec<u32>,
    live: usize,
}

impl CycleIndex {
    /// Exact resummation cadence: a cycle's running log-sum is recomputed
    /// from the graph's cached rates after this many delta updates. With
    /// IEEE-754 doubles, 32 additions of values bounded by the `f64`
    /// exponent range accumulate well under 1e-11 of error — two orders
    /// of magnitude inside [`CycleIndex::SCREEN_DRIFT_MARGIN`].
    pub const RESUM_INTERVAL: u32 = 32;

    /// Guaranteed bound on `|incremental − exact|` for every live
    /// cycle's log-sum. A cycle whose incremental sum is
    /// `≤ −SCREEN_DRIFT_MARGIN` certainly has exact `Σ ln p ≤ 0`.
    pub const SCREEN_DRIFT_MARGIN: f64 = 1e-9;

    /// Enumerates all cycles of `min_len..=max_len` hops once and builds
    /// the inverted index.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::CycleTooShort`] for `min_len < 2` and
    /// [`GraphError::DisconnectedCycle`] for `min_len > max_len`.
    pub fn build(graph: &TokenGraph, min_len: usize, max_len: usize) -> Result<Self, GraphError> {
        if min_len < 2 {
            return Err(GraphError::CycleTooShort);
        }
        if min_len > max_len {
            return Err(GraphError::DisconnectedCycle);
        }
        let mut index = CycleIndex {
            min_len,
            max_len,
            cycles: Vec::new(),
            screen: Vec::new(),
            by_pool: vec![Vec::new(); graph.pool_count()],
            free: Vec::new(),
            live: 0,
        };
        for len in min_len..=max_len {
            for cycle in graph.cycles(len)? {
                index.insert(graph, cycle);
            }
        }
        Ok(index)
    }

    /// The configured length bounds `(min_len, max_len)`.
    pub fn length_bounds(&self) -> (usize, usize) {
        (self.min_len, self.max_len)
    }

    /// Number of live cycles.
    pub fn live_cycles(&self) -> usize {
        self.live
    }

    /// The cycle behind `id`, if still live.
    pub fn get(&self, id: CycleId) -> Option<&Cycle> {
        self.cycles.get(id.index()).and_then(Option::as_ref)
    }

    /// Live cycles through `pool` with their traversal directions (empty
    /// for unknown/edge-less pools).
    pub fn cycles_for_pool(&self, pool: PoolId) -> &[PoolCycleRef] {
        self.by_pool.get(pool.index()).map_or(&[], Vec::as_slice)
    }

    /// The incrementally maintained `Σ ln p_j` of a live cycle, within
    /// [`CycleIndex::SCREEN_DRIFT_MARGIN`] of the exact sum (`None` for
    /// retired slots). `-∞` marks a cycle through a degenerate rate.
    pub fn screen_log_sum(&self, id: CycleId) -> Option<f64> {
        self.cycles
            .get(id.index())
            .and_then(Option::as_ref)
            .map(|_| self.screen[id.index()].log_sum)
    }

    /// Applies a reserve move on `pool` to every containing cycle's
    /// running log-sum: an O(1) `new − old` delta per cycle, with an
    /// exact resummation every [`CycleIndex::RESUM_INTERVAL`] updates to
    /// bound drift — and *immediately* whenever either endpoint of the
    /// delta is non-finite (a degenerate `-∞` rate passing through would
    /// otherwise turn the sum into NaN).
    ///
    /// `old_log_rates` is the slot's [`TokenGraph::pool_log_rates`]
    /// captured **before** the sync was applied; `graph` holds the
    /// post-sync state. Call only for live→live updates (retire/revive
    /// flow through [`CycleIndex::on_pool_removed`] /
    /// [`CycleIndex::on_pool_added`], which rebuild sums exactly).
    pub fn on_pool_synced(
        &mut self,
        graph: &TokenGraph,
        pool: PoolId,
        old_log_rates: [f64; 2],
    ) -> ScreenUpdate {
        let mut update = ScreenUpdate::default();
        if pool.index() >= self.by_pool.len() {
            return update;
        }
        let new_log_rates = graph.pool_log_rates(pool);
        let postings = std::mem::take(&mut self.by_pool[pool.index()]);
        for entry in &postings {
            let dir = usize::from(!entry.enters_with_token_a);
            let (old, new) = (old_log_rates[dir], new_log_rates[dir]);
            let slot = &mut self.screen[entry.cycle.index()];
            if old.is_finite() && new.is_finite() && slot.updates_since_resum < Self::RESUM_INTERVAL
            {
                slot.log_sum += new - old;
                slot.updates_since_resum += 1;
                update.deltas += 1;
            } else {
                let cycle = self.cycles[entry.cycle.index()]
                    .as_ref()
                    .expect("posting lists only reference live cycles");
                *slot = exact_screen_slot(graph, cycle);
                update.resummations += 1;
            }
        }
        self.by_pool[pool.index()] = postings;
        update
    }

    /// All live cycles with their ids, in slot order.
    pub fn iter_live(&self) -> impl Iterator<Item = (CycleId, &Cycle)> + '_ {
        self.cycles
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.as_ref().map(|c| (CycleId(i as u32), c)))
    }

    /// Extends the index after `pool` appeared (or revived) in `graph`:
    /// enumerates exactly the cycles through that pool and registers them.
    /// Returns the newly indexed cycle ids — the caller's dirty set.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownReference`] for a pool not in `graph`.
    pub fn on_pool_added(
        &mut self,
        graph: &TokenGraph,
        pool: PoolId,
    ) -> Result<Vec<CycleId>, GraphError> {
        let mut added = Vec::new();
        for len in self.min_len..=self.max_len {
            for cycle in cycles_through(graph, pool, len)? {
                added.push(self.insert(graph, cycle));
            }
        }
        Ok(added)
    }

    /// Retires every cycle through `pool` (because it degenerated or was
    /// removed), returning the retired ids so callers can drop any
    /// standing results keyed on them. Unknown pools retire nothing.
    pub fn on_pool_removed(&mut self, pool: PoolId) -> Vec<CycleId> {
        if pool.index() >= self.by_pool.len() {
            return Vec::new();
        }
        let retired: Vec<CycleId> = std::mem::take(&mut self.by_pool[pool.index()])
            .into_iter()
            .map(|entry| entry.cycle)
            .collect();
        for &id in &retired {
            let cycle = self.cycles[id.index()]
                .take()
                .expect("posting lists only reference live cycles");
            self.live -= 1;
            self.free.push(id.0);
            for &other in cycle.pools() {
                if other != pool {
                    self.by_pool[other.index()].retain(|e| e.cycle != id);
                }
            }
        }
        retired
    }

    /// Exports the arena for checkpointing: the cycle slots (`None` marks
    /// a tombstoned slot) and the free list, in recycling order. Together
    /// with the graph the index was built over, [`CycleIndex::from_parts`]
    /// reconstructs an identical index — same `CycleId` assignment, same
    /// future slot-recycling behavior — without re-running the
    /// exponential cycle enumeration.
    pub fn to_parts(&self) -> (Vec<Option<Cycle>>, Vec<u32>) {
        (self.cycles.clone(), self.free.clone())
    }

    /// Rebuilds an index from checkpointed parts ([`CycleIndex::to_parts`])
    /// against `graph`, re-deriving the posting lists. Every live arena
    /// cycle is validated against the graph, and the free list must name
    /// exactly the tombstoned slots.
    ///
    /// # Errors
    ///
    /// * [`GraphError::CycleTooShort`] / [`GraphError::DisconnectedCycle`]
    ///   for invalid length bounds (mirroring [`CycleIndex::build`]).
    /// * [`GraphError::InvalidCheckpoint`] when the free list and arena
    ///   disagree, or a cycle's length falls outside the bounds.
    /// * [`GraphError::UnknownReference`] / [`GraphError::DisconnectedCycle`]
    ///   when an arena cycle does not exist in `graph`.
    pub fn from_parts(
        graph: &TokenGraph,
        min_len: usize,
        max_len: usize,
        cycles: Vec<Option<Cycle>>,
        free: Vec<u32>,
    ) -> Result<Self, GraphError> {
        if min_len < 2 {
            return Err(GraphError::CycleTooShort);
        }
        if min_len > max_len {
            return Err(GraphError::DisconnectedCycle);
        }
        let mut free_slots = vec![false; cycles.len()];
        for &slot in &free {
            match free_slots.get_mut(slot as usize) {
                Some(seen @ false) if cycles[slot as usize].is_none() => *seen = true,
                Some(false) => {
                    return Err(GraphError::InvalidCheckpoint(
                        "free list names a live arena slot",
                    ))
                }
                Some(true) => {
                    return Err(GraphError::InvalidCheckpoint(
                        "free list names a slot twice",
                    ))
                }
                None => {
                    return Err(GraphError::InvalidCheckpoint(
                        "free list points past the arena",
                    ))
                }
            }
        }
        let mut by_pool = vec![Vec::new(); graph.pool_count()];
        let mut screen = vec![ScreenSlot::default(); cycles.len()];
        let mut live = 0usize;
        for (slot, entry) in cycles.iter().enumerate() {
            let Some(cycle) = entry else {
                if !free_slots[slot] {
                    return Err(GraphError::InvalidCheckpoint(
                        "tombstoned arena slot missing from the free list",
                    ));
                }
                continue;
            };
            if cycle.len() < min_len || cycle.len() > max_len {
                return Err(GraphError::InvalidCheckpoint(
                    "arena cycle length outside the index bounds",
                ));
            }
            cycle.validate(graph)?;
            let id = CycleId(slot as u32);
            for (&pool, &token_in) in cycle.pools().iter().zip(cycle.tokens()) {
                if !graph.is_live(pool) {
                    return Err(GraphError::InvalidCheckpoint(
                        "arena cycle traverses a retired pool",
                    ));
                }
                by_pool[pool.index()].push(PoolCycleRef {
                    cycle: id,
                    enters_with_token_a: graph.pool(pool)?.token_a() == token_in,
                });
            }
            // Checkpoints do not carry the running log-sums; they are
            // rebuilt deterministically from the restored graph's cached
            // rates (exact, drift-free — a restored index never screens
            // *more* than the live one did).
            screen[slot] = exact_screen_slot(graph, cycle);
            live += 1;
        }
        Ok(CycleIndex {
            min_len,
            max_len,
            cycles,
            screen,
            by_pool,
            free,
            live,
        })
    }

    fn insert(&mut self, graph: &TokenGraph, cycle: Cycle) -> CycleId {
        let id = match self.free.pop() {
            Some(slot) => {
                self.cycles[slot as usize] = Some(cycle);
                CycleId(slot)
            }
            None => {
                self.cycles.push(Some(cycle));
                self.screen.push(ScreenSlot::default());
                CycleId((self.cycles.len() - 1) as u32)
            }
        };
        let cycle = self.cycles[id.index()].as_ref().expect("just inserted");
        let max_pool = cycle
            .pools()
            .iter()
            .map(|p| p.index() + 1)
            .max()
            .unwrap_or(0);
        if max_pool > self.by_pool.len() {
            self.by_pool.resize(max_pool, Vec::new());
        }
        for (&pool, &token_in) in cycle.pools().iter().zip(cycle.tokens()) {
            let enters_with_token_a = graph
                .pool(pool)
                .map(|p| p.token_a() == token_in)
                .unwrap_or(true);
            self.by_pool[pool.index()].push(PoolCycleRef {
                cycle: id,
                enters_with_token_a,
            });
        }
        self.screen[id.index()] = exact_screen_slot(graph, cycle);
        self.live += 1;
        id
    }
}

/// A freshly resummed screen slot: the exact log-sum from the graph's
/// cached per-slot rates (bit-identical to [`Cycle::log_rate`]), with the
/// drift counter reset. A structurally broken cycle (impossible through
/// the maintained hooks) degrades to NaN, which never screens anything.
fn exact_screen_slot(graph: &TokenGraph, cycle: &Cycle) -> ScreenSlot {
    ScreenSlot {
        log_sum: graph.cycle_log_rate(cycle).unwrap_or(f64::NAN),
        updates_since_resum: 0,
    }
}

/// Enumerates the directed simple cycles of exactly `length` hops that
/// traverse `pool`, in the same canonical rotation as
/// [`crate::cycles::enumerate`] (smallest token id first).
///
/// Each directed cycle uses `pool` in exactly one direction (tokens on a
/// simple cycle are distinct, and a pool joins one pair), so fixing the
/// first hop to each direction of `pool` in turn enumerates every such
/// cycle exactly once.
fn cycles_through(
    graph: &TokenGraph,
    pool: PoolId,
    length: usize,
) -> Result<Vec<Cycle>, GraphError> {
    if length < 2 {
        return Err(GraphError::CycleTooShort);
    }
    let p = graph.pool(pool)?;
    let mut out = Vec::new();
    for (a, b) in [(p.token_a(), p.token_b()), (p.token_b(), p.token_a())] {
        if length == 2 {
            // Close straight back through any *other* parallel pool.
            for edge in graph.neighbors(b) {
                if edge.to == a && edge.pool != pool {
                    out.push(canonical(vec![a, b], vec![pool, edge.pool]));
                }
            }
            continue;
        }
        let mut visited = vec![false; graph.token_count()];
        visited[a.index()] = true;
        visited[b.index()] = true;
        let mut tokens = vec![a, b];
        let mut pools = vec![pool];
        path_dfs(
            graph,
            a,
            length,
            &mut tokens,
            &mut pools,
            &mut visited,
            &mut out,
        );
    }
    Ok(out)
}

/// DFS over simple paths extending `tokens` (first hop already fixed)
/// until `length` tokens are placed, then closes each path back to `home`.
/// The closing hop cannot collide with an interior pool: every interior
/// pool joins a token pair that includes neither endpoint pair again.
#[allow(clippy::too_many_arguments)]
fn path_dfs(
    graph: &TokenGraph,
    home: TokenId,
    length: usize,
    tokens: &mut Vec<TokenId>,
    pools: &mut Vec<PoolId>,
    visited: &mut [bool],
    out: &mut Vec<Cycle>,
) {
    let current = *tokens.last().expect("path never empty");
    if tokens.len() == length {
        for edge in graph.neighbors(current) {
            if edge.to == home {
                let mut closed = pools.clone();
                closed.push(edge.pool);
                out.push(canonical(tokens.clone(), closed));
            }
        }
        return;
    }
    for edge in graph.neighbors(current) {
        if visited[edge.to.index()] {
            continue;
        }
        visited[edge.to.index()] = true;
        tokens.push(edge.to);
        pools.push(edge.pool);
        path_dfs(graph, home, length, tokens, pools, visited, out);
        tokens.pop();
        pools.pop();
        visited[edge.to.index()] = false;
    }
}

/// Rotates a directed cycle into the canonical form used by the bulk
/// enumerator: the smallest token id comes first.
fn canonical(tokens: Vec<TokenId>, pools: Vec<PoolId>) -> Cycle {
    let offset = tokens
        .iter()
        .enumerate()
        .min_by_key(|(_, t)| **t)
        .map(|(i, _)| i)
        .expect("cycles are non-empty");
    Cycle::new(tokens, pools)
        .expect("aligned sequences")
        .rotated(offset)
}

#[cfg(test)]
mod tests {
    use super::*;
    use arb_amm::fee::FeeRate;
    use arb_amm::pool::Pool;
    use std::collections::HashSet;

    fn t(i: u32) -> TokenId {
        TokenId::new(i)
    }

    fn p(i: u32) -> PoolId {
        PoolId::new(i)
    }

    fn diamond() -> TokenGraph {
        let fee = FeeRate::UNISWAP_V2;
        // 4-cycle 0-1-2-3 plus diagonal 0-2: four triangles' worth of
        // directed 3-cycles (2 undirected × 2 directions) and two 4-cycles.
        TokenGraph::new(vec![
            Pool::new(t(0), t(1), 10.0, 11.0, fee).unwrap(),
            Pool::new(t(1), t(2), 10.0, 12.0, fee).unwrap(),
            Pool::new(t(2), t(3), 10.0, 13.0, fee).unwrap(),
            Pool::new(t(3), t(0), 10.0, 14.0, fee).unwrap(),
            Pool::new(t(0), t(2), 10.0, 15.0, fee).unwrap(),
        ])
        .unwrap()
    }

    /// The index must always equal a from-scratch enumeration on the
    /// current graph — the invariant every incremental hook preserves.
    fn assert_matches_full_enumeration(index: &CycleIndex, graph: &TokenGraph) {
        let (min_len, max_len) = index.length_bounds();
        let mut expected = HashSet::new();
        for len in min_len..=max_len {
            expected.extend(graph.cycles(len).unwrap());
        }
        let actual: HashSet<Cycle> = index.iter_live().map(|(_, c)| c.clone()).collect();
        assert_eq!(actual, expected);
        assert_eq!(index.live_cycles(), expected.len());
        // The screen invariant rides along: every live cycle's running
        // log-sum stays within the guaranteed drift margin of exact.
        for (id, cycle) in index.iter_live() {
            let exact = graph.cycle_log_rate(cycle).unwrap();
            let incremental = index.screen_log_sum(id).expect("live cycle screened");
            assert!(
                (incremental - exact).abs() <= CycleIndex::SCREEN_DRIFT_MARGIN
                    || (incremental == exact),
                "screen drift on {id}: incremental {incremental} vs exact {exact}"
            );
        }
    }

    #[test]
    fn build_matches_bulk_enumeration() {
        let g = diamond();
        let index = CycleIndex::build(&g, 2, 4).unwrap();
        assert_matches_full_enumeration(&index, &g);
        // 4 directed triangles + 2 directed squares, no 2-cycles.
        assert_eq!(index.live_cycles(), 6);
    }

    #[test]
    fn bad_bounds_rejected() {
        let g = diamond();
        assert_eq!(
            CycleIndex::build(&g, 1, 3).unwrap_err(),
            GraphError::CycleTooShort
        );
        assert_eq!(
            CycleIndex::build(&g, 4, 3).unwrap_err(),
            GraphError::DisconnectedCycle
        );
    }

    #[test]
    fn posting_lists_cover_every_cycle_hop() {
        let g = diamond();
        let index = CycleIndex::build(&g, 3, 4).unwrap();
        for (id, cycle) in index.iter_live() {
            for (pool, token_in) in cycle.pools().iter().zip(cycle.tokens()) {
                let entry = index
                    .cycles_for_pool(*pool)
                    .iter()
                    .find(|e| e.cycle == id)
                    .unwrap_or_else(|| panic!("cycle {id} missing from posting list of {pool}"));
                assert_eq!(
                    entry.enters_with_token_a,
                    g.pool(*pool).unwrap().token_a() == *token_in,
                    "direction bit of {id} through {pool}"
                );
            }
        }
        // The diagonal 0-2 participates in all four directed triangles.
        assert_eq!(index.cycles_for_pool(p(4)).len(), 4);
    }

    #[test]
    fn pool_removal_retires_exactly_its_cycles() {
        let g = diamond();
        let mut index = CycleIndex::build(&g, 3, 4).unwrap();
        let mut graph = g.clone();
        graph.remove_pool(p(4)).unwrap();
        let retired = index.on_pool_removed(p(4));
        assert_eq!(retired.len(), 4, "all four triangles used the diagonal");
        assert_matches_full_enumeration(&index, &graph);
        assert_eq!(index.live_cycles(), 2, "the two squares survive");
        assert!(index.cycles_for_pool(p(4)).is_empty());
        for id in retired {
            assert!(index.get(id).is_none());
        }
    }

    #[test]
    fn pool_addition_extends_incrementally() {
        let fee = FeeRate::UNISWAP_V2;
        let mut graph = TokenGraph::new(vec![
            Pool::new(t(0), t(1), 10.0, 11.0, fee).unwrap(),
            Pool::new(t(1), t(2), 10.0, 12.0, fee).unwrap(),
            Pool::new(t(2), t(3), 10.0, 13.0, fee).unwrap(),
            Pool::new(t(3), t(0), 10.0, 14.0, fee).unwrap(),
        ])
        .unwrap();
        let mut index = CycleIndex::build(&graph, 2, 4).unwrap();
        assert_eq!(index.live_cycles(), 2, "just the two directed squares");

        // Adding the diagonal creates the four directed triangles.
        let id = graph.add_pool(Pool::new(t(0), t(2), 10.0, 15.0, fee).unwrap());
        let added = index.on_pool_added(&graph, id).unwrap();
        assert_eq!(added.len(), 4);
        assert_matches_full_enumeration(&index, &graph);

        // A parallel pool on (0,1) creates two 2-cycles, replacement
        // triangles/squares, and more triangles via the diagonal.
        let id2 = graph.add_pool(Pool::new(t(0), t(1), 20.0, 21.0, fee).unwrap());
        index.on_pool_added(&graph, id2).unwrap();
        assert_matches_full_enumeration(&index, &graph);
    }

    #[test]
    fn retire_then_revive_round_trips() {
        let g = diamond();
        let mut graph = g.clone();
        let mut index = CycleIndex::build(&graph, 2, 4).unwrap();
        let before: HashSet<Cycle> = index.iter_live().map(|(_, c)| c.clone()).collect();

        graph.remove_pool(p(1)).unwrap();
        index.on_pool_removed(p(1));
        assert_matches_full_enumeration(&index, &graph);

        // Revive with the same reserves: the cycle *set* must round-trip
        // (ids may differ — slots are recycled).
        assert_eq!(
            graph.apply_sync(p(1), 10.0, 12.0).unwrap(),
            crate::token_graph::SyncOutcome::Revived
        );
        index.on_pool_added(&graph, p(1)).unwrap();
        assert_matches_full_enumeration(&index, &graph);
        let after: HashSet<Cycle> = index.iter_live().map(|(_, c)| c.clone()).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn through_pool_enumeration_matches_filtered_bulk() {
        let g = diamond();
        for length in 2..=4 {
            for pool_index in 0..g.pool_count() as u32 {
                let through: HashSet<Cycle> = cycles_through(&g, p(pool_index), length)
                    .unwrap()
                    .into_iter()
                    .collect();
                let filtered: HashSet<Cycle> = g
                    .cycles(length)
                    .unwrap()
                    .into_iter()
                    .filter(|c| c.pools().contains(&p(pool_index)))
                    .collect();
                assert_eq!(through, filtered, "pool {pool_index} length {length}");
            }
        }
    }

    #[test]
    fn freed_slots_recycle_into_unrelated_pools() {
        // Retire a pool (freeing its cycle ids), then extend the index
        // with a *different* pool over *different* tokens: the freed ids
        // must be safely recycled — posting lists may not leak stale
        // references across the reuse boundary.
        let fee = FeeRate::UNISWAP_V2;
        let mut graph = diamond();
        let mut index = CycleIndex::build(&graph, 2, 4).unwrap();

        graph.remove_pool(p(4)).unwrap();
        let retired = index.on_pool_removed(p(4));
        assert_eq!(retired.len(), 4, "the diagonal carried four triangles");

        // New pools over brand-new tokens 5 and 6: a parallel pair that
        // opens two directed 2-cycles, reusing freed arena slots.
        let id5 = graph.add_pool(Pool::new(t(5), t(6), 10.0, 10.0, fee).unwrap());
        index.on_pool_added(&graph, id5).unwrap();
        let id6 = graph.add_pool(Pool::new(t(5), t(6), 20.0, 21.0, fee).unwrap());
        let added = index.on_pool_added(&graph, id6).unwrap();
        assert_eq!(added.len(), 2, "two directed 2-cycles");
        assert!(
            added.iter().any(|id| retired.contains(id)),
            "freed slots should be recycled: {added:?} vs {retired:?}"
        );
        assert_matches_full_enumeration(&index, &graph);

        // The recycled ids resolve to the *new* cycles, and the retired
        // pool's posting list is empty until it revives.
        for id in &added {
            let cycle = index.get(*id).expect("live");
            assert!(cycle.tokens().contains(&t(5)));
        }
        assert!(index.cycles_for_pool(p(4)).is_empty());

        // Reviving the diagonal restores its triangles alongside the new
        // 2-cycles.
        assert_eq!(
            graph.apply_sync(p(4), 10.0, 15.0).unwrap(),
            crate::token_graph::SyncOutcome::Revived
        );
        index.on_pool_added(&graph, p(4)).unwrap();
        assert_matches_full_enumeration(&index, &graph);
        assert_eq!(index.cycles_for_pool(p(4)).len(), 4);
    }

    #[test]
    fn retire_revive_extend_interleavings_hold_the_invariant() {
        // A longer adversarial sequence: retire two pools, extend through
        // a third, revive in the opposite order, extend again. After
        // every hook the index must equal a from-scratch enumeration.
        let fee = FeeRate::UNISWAP_V2;
        let mut graph = diamond();
        let mut index = CycleIndex::build(&graph, 2, 4).unwrap();

        for pool in [p(0), p(2)] {
            graph.remove_pool(pool).unwrap();
            index.on_pool_removed(pool);
            assert_matches_full_enumeration(&index, &graph);
        }

        let new_pool = graph.add_pool(Pool::new(t(1), t(3), 9.0, 9.0, fee).unwrap());
        index.on_pool_added(&graph, new_pool).unwrap();
        assert_matches_full_enumeration(&index, &graph);

        for (pool, a, b) in [(p(2), 10.0, 13.0), (p(0), 10.0, 11.0)] {
            assert_eq!(
                graph.apply_sync(pool, a, b).unwrap(),
                crate::token_graph::SyncOutcome::Revived
            );
            index.on_pool_added(&graph, pool).unwrap();
            assert_matches_full_enumeration(&index, &graph);
        }
    }

    #[test]
    fn parts_round_trip_preserves_ids_and_recycling() {
        // Retire a pool so the arena has tombstones and a free list, then
        // export/import: the rebuilt index must expose the same live
        // cycles under the same ids and recycle slots identically.
        let mut graph = diamond();
        let mut index = CycleIndex::build(&graph, 2, 4).unwrap();
        graph.remove_pool(p(4)).unwrap();
        index.on_pool_removed(p(4));

        let (arena, free) = index.to_parts();
        let mut restored = CycleIndex::from_parts(&graph, 2, 4, arena, free).unwrap();
        assert_eq!(restored.live_cycles(), index.live_cycles());
        assert_eq!(restored.length_bounds(), index.length_bounds());
        let live: Vec<(CycleId, Cycle)> = index.iter_live().map(|(i, c)| (i, c.clone())).collect();
        let restored_live: Vec<(CycleId, Cycle)> =
            restored.iter_live().map(|(i, c)| (i, c.clone())).collect();
        assert_eq!(live, restored_live, "ids and cycles survive the trip");
        assert_matches_full_enumeration(&restored, &graph);

        // Both copies must recycle the same freed slot for the next
        // insertion (same future behavior, not just same present state).
        let mut graph2 = graph.clone();
        let fee = FeeRate::UNISWAP_V2;
        let id = graph2.add_pool(Pool::new(t(5), t(6), 10.0, 10.0, fee).unwrap());
        let _ = graph2.add_pool(Pool::new(t(5), t(6), 20.0, 21.0, fee).unwrap());
        let a = index.on_pool_added(&graph2, PoolId::new(id.index() as u32 + 1));
        let b = restored.on_pool_added(&graph2, PoolId::new(id.index() as u32 + 1));
        assert_eq!(a.unwrap(), b.unwrap());
    }

    #[test]
    fn inconsistent_parts_rejected() {
        let graph = diamond();
        let index = CycleIndex::build(&graph, 3, 3).unwrap();
        let (arena, free) = index.to_parts();
        assert!(free.is_empty());

        // Free list naming a live slot.
        let err = CycleIndex::from_parts(&graph, 3, 3, arena.clone(), vec![0]).unwrap_err();
        assert_eq!(
            err,
            GraphError::InvalidCheckpoint("free list names a live arena slot")
        );

        // Tombstone missing from the free list.
        let mut holed = arena.clone();
        holed[1] = None;
        let err = CycleIndex::from_parts(&graph, 3, 3, holed.clone(), vec![]).unwrap_err();
        assert_eq!(
            err,
            GraphError::InvalidCheckpoint("tombstoned arena slot missing from the free list")
        );
        // …and consistent tombstones are accepted.
        let ok = CycleIndex::from_parts(&graph, 3, 3, holed.clone(), vec![1]).unwrap();
        assert_eq!(ok.live_cycles(), index.live_cycles() - 1);
        // Duplicate and out-of-range free entries.
        let err = CycleIndex::from_parts(&graph, 3, 3, holed.clone(), vec![1, 1]).unwrap_err();
        assert_eq!(
            err,
            GraphError::InvalidCheckpoint("free list names a slot twice")
        );
        let err = CycleIndex::from_parts(&graph, 3, 3, holed, vec![1, 99]).unwrap_err();
        assert_eq!(
            err,
            GraphError::InvalidCheckpoint("free list points past the arena")
        );

        // Length bounds must bracket every arena cycle.
        let err = CycleIndex::from_parts(&graph, 4, 4, arena.clone(), vec![]).unwrap_err();
        assert_eq!(
            err,
            GraphError::InvalidCheckpoint("arena cycle length outside the index bounds")
        );

        // A cycle through a pool that is retired in the restore-target
        // graph is rejected (the arena invariant is live-pools-only).
        let mut smaller = graph.clone();
        smaller.remove_pool(p(4)).unwrap();
        assert_eq!(
            CycleIndex::from_parts(&smaller, 3, 3, arena, vec![]).unwrap_err(),
            GraphError::InvalidCheckpoint("arena cycle traverses a retired pool")
        );

        // The bound checks mirror `build`.
        assert_eq!(
            CycleIndex::from_parts(&graph, 1, 3, vec![], vec![]).unwrap_err(),
            GraphError::CycleTooShort
        );
        assert_eq!(
            CycleIndex::from_parts(&graph, 4, 3, vec![], vec![]).unwrap_err(),
            GraphError::DisconnectedCycle
        );
    }

    #[test]
    fn build_screen_sums_are_bit_identical_to_exact() {
        let g = diamond();
        let index = CycleIndex::build(&g, 2, 4).unwrap();
        for (id, cycle) in index.iter_live() {
            assert_eq!(
                index.screen_log_sum(id).unwrap().to_bits(),
                g.cycle_log_rate(cycle).unwrap().to_bits(),
                "freshly built sums are exact, not merely close"
            );
        }
        assert!(index.screen_log_sum(CycleId(99)).is_none());
    }

    #[test]
    fn synced_pool_deltas_stay_within_drift_margin_and_resum() {
        let mut graph = diamond();
        let mut index = CycleIndex::build(&graph, 2, 4).unwrap();
        let mut total = ScreenUpdate::default();
        for step in 0..200u32 {
            let pool = p(step % 5);
            let old = graph.pool_log_rates(pool);
            let a = 10.0 + f64::from(step % 13) * 0.37;
            let b = 11.0 + f64::from(step % 17) * 0.53;
            assert_eq!(
                graph.apply_sync(pool, a, b).unwrap(),
                crate::token_graph::SyncOutcome::Updated
            );
            let update = index.on_pool_synced(&graph, pool, old);
            total.deltas += update.deltas;
            total.resummations += update.resummations;
            assert_matches_full_enumeration(&index, &graph);
        }
        assert!(total.deltas > 0, "O(1) deltas must carry the steady state");
        assert!(
            total.resummations > 0,
            "200 syncs × {} cycles must cross the {}-update resum cadence",
            index.live_cycles(),
            CycleIndex::RESUM_INTERVAL
        );
    }

    #[test]
    fn non_finite_rates_resum_instead_of_poisoning_sums() {
        let mut graph = diamond();
        let mut index = CycleIndex::build(&graph, 3, 4).unwrap();
        // Underflow the diagonal's 0→2 rate to zero while the pool stays
        // live: affected sums must become -inf (or ±inf), never NaN via
        // a -inf − -inf delta, and recover exactly on the way back.
        let before: Vec<(CycleId, f64)> = index
            .iter_live()
            .map(|(id, _)| (id, index.screen_log_sum(id).unwrap()))
            .collect();
        let old = graph.pool_log_rates(p(4));
        assert_eq!(
            graph.apply_sync(p(4), 1e300, 1e-300).unwrap(),
            crate::token_graph::SyncOutcome::Updated
        );
        let update = index.on_pool_synced(&graph, p(4), old);
        assert_eq!(update.deltas, 0, "non-finite endpoints force resums");
        assert_eq!(update.resummations, 4, "all four triangles resummed");
        for (id, _) in index.iter_live() {
            assert!(!index.screen_log_sum(id).unwrap().is_nan());
        }
        // A second degenerate-to-degenerate sync still must not NaN.
        let old = graph.pool_log_rates(p(4));
        graph.apply_sync(p(4), 1e305, 1e-305).unwrap();
        index.on_pool_synced(&graph, p(4), old);
        for (id, _) in index.iter_live() {
            assert!(!index.screen_log_sum(id).unwrap().is_nan());
        }
        // Recovery: valid rates restore exact finite sums.
        let old = graph.pool_log_rates(p(4));
        graph.apply_sync(p(4), 10.0, 15.0).unwrap();
        index.on_pool_synced(&graph, p(4), old);
        let after: Vec<(CycleId, f64)> = index
            .iter_live()
            .map(|(id, _)| (id, index.screen_log_sum(id).unwrap()))
            .collect();
        assert_eq!(before, after, "resummation is exact, so the round trip is");
        assert_matches_full_enumeration(&index, &graph);
    }

    #[test]
    fn restored_index_rebuilds_screen_sums_deterministically() {
        let mut graph = diamond();
        let mut index = CycleIndex::build(&graph, 2, 4).unwrap();
        // Drift the live index a little, then retire a pool for
        // tombstones.
        for step in 0..40u32 {
            let pool = p(step % 4);
            let old = graph.pool_log_rates(pool);
            graph
                .apply_sync(pool, 10.0 + f64::from(step) * 0.01, 12.0)
                .unwrap();
            index.on_pool_synced(&graph, pool, old);
        }
        graph.remove_pool(p(4)).unwrap();
        index.on_pool_removed(p(4));

        let (arena, free) = index.to_parts();
        let restored = CycleIndex::from_parts(&graph, 2, 4, arena, free).unwrap();
        for (id, cycle) in restored.iter_live() {
            assert_eq!(
                restored.screen_log_sum(id).unwrap().to_bits(),
                graph.cycle_log_rate(cycle).unwrap().to_bits(),
                "restored sums are exact resummations"
            );
        }
    }

    #[test]
    fn unknown_pool_is_safe() {
        let g = diamond();
        let mut index = CycleIndex::build(&g, 3, 3).unwrap();
        assert!(index.cycles_for_pool(p(99)).is_empty());
        assert!(index.on_pool_removed(p(99)).is_empty());
        assert_eq!(
            index.on_pool_synced(&g, p(99), [0.0, 0.0]),
            ScreenUpdate::default()
        );
        assert_eq!(
            index.on_pool_added(&g, p(99)).unwrap_err(),
            GraphError::UnknownReference
        );
    }
}
