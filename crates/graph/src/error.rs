//! Error type for graph construction and queries.

use std::error::Error;
use std::fmt;

/// Errors from token-graph operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// The graph has no pools.
    EmptyGraph,
    /// A cycle length below 2 was requested.
    CycleTooShort,
    /// A referenced pool or token does not exist in this graph.
    UnknownReference,
    /// A cycle's hops do not connect into a loop.
    DisconnectedCycle,
    /// Pool construction failed (forwarded from `arb-amm`).
    Amm(arb_amm::AmmError),
    /// Checkpointed state (a cycle-index arena or a partition assignment)
    /// is internally inconsistent with the graph it is being restored
    /// against.
    InvalidCheckpoint(&'static str),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::EmptyGraph => write!(f, "token graph has no pools"),
            GraphError::CycleTooShort => write!(f, "cycle length must be at least 2"),
            GraphError::UnknownReference => write!(f, "unknown token or pool reference"),
            GraphError::DisconnectedCycle => write!(f, "cycle hops do not form a loop"),
            GraphError::Amm(e) => write!(f, "amm error: {e}"),
            GraphError::InvalidCheckpoint(reason) => {
                write!(f, "invalid checkpoint state: {reason}")
            }
        }
    }
}

impl Error for GraphError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            GraphError::Amm(e) => Some(e),
            _ => None,
        }
    }
}

impl From<arb_amm::AmmError> for GraphError {
    fn from(e: arb_amm::AmmError) -> Self {
        GraphError::Amm(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        assert!(!GraphError::EmptyGraph.to_string().is_empty());
        assert!(GraphError::Amm(arb_amm::AmmError::SameToken)
            .to_string()
            .contains("amm"));
    }
}
