//! Johnson's algorithm for all elementary cycles.
//!
//! McLaughlin et al. (USENIX Security '23) use Johnson's 1975 algorithm to
//! enumerate candidate arbitrage cycles exhaustively. This module
//! implements it at the token level (each pool contributes arcs in both
//! directions; parallel pools collapse to one arc for enumeration) and then
//! expands token cycles into pool-level [`Cycle`]s, multiplying out
//! parallel-pool choices.
//!
//! Compared to [`crate::cycles::enumerate`] (fixed length `k`), Johnson
//! enumerates *all* lengths in `O((V+E)(C+1))` output-sensitive time; a
//! `max_cycles` cap bounds runaway output on dense graphs.

use arb_amm::pool::PoolId;
use arb_amm::token::TokenId;
use std::collections::HashSet;

use crate::cycles::Cycle;
use crate::error::GraphError;
use crate::tarjan;
use crate::token_graph::TokenGraph;

/// Enumerates all elementary token cycles (vertex sequences, length ≥ 2),
/// canonically rooted at their smallest vertex, up to `max_cycles`.
///
/// Both directions of each undirected cycle are produced (distinct trades).
pub fn elementary_token_cycles(graph: &TokenGraph, max_cycles: usize) -> Vec<Vec<TokenId>> {
    let n = graph.token_count();
    // Token-level simple digraph (dedup parallel pools).
    let mut adjacency: Vec<Vec<usize>> = vec![Vec::new(); n];
    for token in graph.active_tokens() {
        let mut seen = HashSet::new();
        for edge in graph.neighbors(token) {
            if seen.insert(edge.to.index()) {
                adjacency[token.index()].push(edge.to.index());
            }
        }
        adjacency[token.index()].sort_unstable();
    }

    let mut cycles: Vec<Vec<TokenId>> = Vec::new();
    let mut blocked = vec![false; n];
    let mut block_map: Vec<HashSet<usize>> = vec![HashSet::new(); n];
    let mut stack: Vec<usize> = Vec::new();

    for s in 0..n {
        if cycles.len() >= max_cycles {
            break;
        }
        // Restrict to vertices ≥ s in the SCC containing s.
        let mut allowed = vec![false; n];
        for (v, a) in allowed.iter_mut().enumerate() {
            *a = v >= s;
        }
        let sccs = tarjan::scc_indices(&adjacency, &allowed);
        let Some(component) = sccs.into_iter().find(|c| c.contains(&s)) else {
            continue;
        };
        let in_scc: HashSet<usize> = component.into_iter().collect();
        // 2-cycles u↔v are elementary in this digraph but SCC membership
        // alone admits them; Johnson handles them naturally below.
        for v in 0..n {
            if in_scc.contains(&v) {
                blocked[v] = false;
                block_map[v].clear();
            }
        }
        circuit(
            s,
            s,
            &adjacency,
            &in_scc,
            &mut blocked,
            &mut block_map,
            &mut stack,
            &mut cycles,
            max_cycles,
        );
    }
    cycles
}

#[allow(clippy::too_many_arguments)]
fn circuit(
    v: usize,
    start: usize,
    adjacency: &[Vec<usize>],
    in_scc: &HashSet<usize>,
    blocked: &mut [bool],
    block_map: &mut [HashSet<usize>],
    stack: &mut Vec<usize>,
    cycles: &mut Vec<Vec<TokenId>>,
    max_cycles: usize,
) -> bool {
    let mut found = false;
    stack.push(v);
    blocked[v] = true;
    for &w in &adjacency[v] {
        if cycles.len() >= max_cycles {
            break;
        }
        if !in_scc.contains(&w) {
            continue;
        }
        if w == start {
            if stack.len() >= 2 {
                cycles.push(stack.iter().map(|&i| TokenId::new(i as u32)).collect());
                found = true;
            }
        } else if !blocked[w]
            && circuit(
                w, start, adjacency, in_scc, blocked, block_map, stack, cycles, max_cycles,
            )
        {
            found = true;
        }
    }
    if found {
        unblock(v, blocked, block_map);
    } else {
        for &w in &adjacency[v] {
            if in_scc.contains(&w) {
                block_map[w].insert(v);
            }
        }
    }
    stack.pop();
    found
}

fn unblock(v: usize, blocked: &mut [bool], block_map: &mut [HashSet<usize>]) {
    blocked[v] = false;
    let waiters: Vec<usize> = block_map[v].drain().collect();
    for w in waiters {
        if blocked[w] {
            unblock(w, blocked, block_map);
        }
    }
}

/// Expands token cycles into pool-level cycles, multiplying out parallel
/// pools; 2-cycles through a single pool (a swap there and back) are
/// excluded. The `max_cycles` cap applies to the expanded output.
pub fn elementary_pool_cycles(
    graph: &TokenGraph,
    max_cycles: usize,
) -> Result<Vec<Cycle>, GraphError> {
    let token_cycles = elementary_token_cycles(graph, max_cycles);
    let mut out = Vec::new();
    for tokens in token_cycles {
        expand_pools(graph, &tokens, max_cycles, &mut out)?;
        if out.len() >= max_cycles {
            out.truncate(max_cycles);
            break;
        }
    }
    Ok(out)
}

/// Depth-first expansion of pool choices along a token cycle.
fn expand_pools(
    graph: &TokenGraph,
    tokens: &[TokenId],
    max_cycles: usize,
    out: &mut Vec<Cycle>,
) -> Result<(), GraphError> {
    let n = tokens.len();
    let mut choice: Vec<PoolId> = Vec::with_capacity(n);
    fn rec(
        graph: &TokenGraph,
        tokens: &[TokenId],
        j: usize,
        choice: &mut Vec<PoolId>,
        max_cycles: usize,
        out: &mut Vec<Cycle>,
    ) -> Result<(), GraphError> {
        let n = tokens.len();
        if out.len() >= max_cycles {
            return Ok(());
        }
        if j == n {
            // Reject single-pool 2-cycles.
            if n == 2 && choice[0] == choice[1] {
                return Ok(());
            }
            out.push(Cycle::new(tokens.to_vec(), choice.clone())?);
            return Ok(());
        }
        let from = tokens[j];
        let to = tokens[(j + 1) % n];
        for edge in graph.neighbors(from) {
            if edge.to == to {
                choice.push(edge.pool);
                rec(graph, tokens, j + 1, choice, max_cycles, out)?;
                choice.pop();
            }
        }
        Ok(())
    }
    rec(graph, tokens, 0, &mut choice, max_cycles, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use arb_amm::fee::FeeRate;
    use arb_amm::pool::Pool;
    use std::collections::HashSet as Set;

    fn t(i: u32) -> TokenId {
        TokenId::new(i)
    }

    fn triangle() -> TokenGraph {
        let fee = FeeRate::UNISWAP_V2;
        TokenGraph::new(vec![
            Pool::new(t(0), t(1), 100.0, 200.0, fee).unwrap(),
            Pool::new(t(1), t(2), 300.0, 200.0, fee).unwrap(),
            Pool::new(t(2), t(0), 200.0, 400.0, fee).unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn triangle_token_cycles() {
        let g = triangle();
        let cycles = elementary_token_cycles(&g, 1000);
        // 2-cycles: (0,1), (0,2), (1,2) ×2 directions = 6... at token level
        // u→v→u is one cycle per direction pair start: canonical root makes
        // [0,1] and [1,0] the same? No: [0,1] means 0→1→0; the reverse
        // direction 1→0→1 canonically roots at 0 as [0,1] again — i.e. a
        // 2-cycle is direction-symmetric. So: 3 two-cycles + 2 directed
        // triangles = 5.
        let two: Vec<_> = cycles.iter().filter(|c| c.len() == 2).collect();
        let three: Vec<_> = cycles.iter().filter(|c| c.len() == 3).collect();
        assert_eq!(two.len(), 3, "{cycles:?}");
        assert_eq!(three.len(), 2, "{cycles:?}");
    }

    #[test]
    fn pool_expansion_matches_fixed_length_enumeration() {
        let fee = FeeRate::UNISWAP_V2;
        // Triangle with a parallel edge to exercise pool expansion.
        let g = TokenGraph::new(vec![
            Pool::new(t(0), t(1), 100.0, 200.0, fee).unwrap(),
            Pool::new(t(0), t(1), 120.0, 220.0, fee).unwrap(),
            Pool::new(t(1), t(2), 300.0, 200.0, fee).unwrap(),
            Pool::new(t(2), t(0), 200.0, 400.0, fee).unwrap(),
        ])
        .unwrap();
        let johnson: Set<Cycle> = elementary_pool_cycles(&g, 100_000)
            .unwrap()
            .into_iter()
            .filter(|c| c.len() == 3)
            .collect();
        let direct: Set<Cycle> = g.cycles(3).unwrap().into_iter().collect();
        assert_eq!(johnson, direct);
    }

    #[test]
    fn two_cycle_expansion_requires_distinct_pools() {
        let fee = FeeRate::UNISWAP_V2;
        let g = TokenGraph::new(vec![
            Pool::new(t(0), t(1), 100.0, 100.0, fee).unwrap(),
            Pool::new(t(0), t(1), 100.0, 150.0, fee).unwrap(),
        ])
        .unwrap();
        let cycles = elementary_pool_cycles(&g, 1000).unwrap();
        // One token 2-cycle expands into 2 pool cycles (p0→p1, p1→p0).
        assert_eq!(cycles.len(), 2);
        for c in &cycles {
            assert_ne!(c.pools()[0], c.pools()[1]);
        }
    }

    #[test]
    fn max_cycles_caps_output() {
        let fee = FeeRate::UNISWAP_V2;
        // K4: plenty of cycles.
        let mut pools = Vec::new();
        for a in 0..4u32 {
            for b in (a + 1)..4 {
                pools.push(Pool::new(t(a), t(b), 100.0, 100.0, fee).unwrap());
            }
        }
        let g = TokenGraph::new(pools).unwrap();
        let capped = elementary_token_cycles(&g, 3);
        assert_eq!(capped.len(), 3);
    }

    #[test]
    fn k4_cycle_census() {
        let fee = FeeRate::UNISWAP_V2;
        let mut pools = Vec::new();
        for a in 0..4u32 {
            for b in (a + 1)..4 {
                pools.push(Pool::new(t(a), t(b), 100.0, 100.0, fee).unwrap());
            }
        }
        let g = TokenGraph::new(pools).unwrap();
        let cycles = elementary_token_cycles(&g, 100_000);
        let by_len = |k: usize| cycles.iter().filter(|c| c.len() == k).count();
        // K4 undirected: 6 edges ⇒ 6 two-cycles (direction symmetric);
        // 4 triangles × 2 directions = 8; 3 four-cycles × 2 directions = 6.
        assert_eq!(by_len(2), 6);
        assert_eq!(by_len(3), 8);
        assert_eq!(by_len(4), 6);
    }
}
