//! Connected-component-aware pool partitioning for sharded runtimes.
//!
//! A directed arbitrage cycle is connected, so it can never straddle two
//! connected components of the token graph. That makes components the
//! natural unit of sharding: assign every component wholly to one shard
//! and each shard's cycle universe is exactly the global cycle universe
//! restricted to its pools — no cycle is split, none is duplicated, and a
//! per-shard engine fleet produces the same opportunity set as one global
//! engine (`arb-engine`'s sharded runtime builds on this invariant).
//!
//! Components are computed over **every pool slot**, live and retired: a
//! retired pool can revive through a later valid `Sync`, and it must
//! revive inside the shard that already owns the rest of its component.
//! Balancing is greedy: components are placed largest-first onto the
//! least-loaded shard, which is within a factor of the optimum for the
//! typical DEX shape (one giant hub component plus a tail of islands) and
//! — more importantly here — fully deterministic.
//!
//! [`Partition::new_weighted`] extends the same scheme for adaptive
//! rebalancing: placement units are weighted by observed per-pool load
//! instead of raw pool counts, and when one **dominant component** holds
//! more than its fair share of the weight it is split along *bridge*
//! boundaries. A bridge pool — one whose removal disconnects its
//! component — belongs to **no** simple cycle, so cutting at bridges
//! keeps every cycle whole inside a single placement unit: the 2-edge-
//! connected blocks are as cycle-safe to shard by as whole components.

use arb_amm::pool::PoolId;
use arb_amm::token::TokenId;

use crate::token_graph::TokenGraph;

/// A deterministic assignment of pool slots (and their tokens) to shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// `shard_of_pool[p]` is the shard owning pool slot `p`.
    shard_of_pool: Vec<usize>,
    /// `shard_of_token[t]` is the shard owning token `t`'s component
    /// (`None` for isolated tokens that touch no pool).
    shard_of_token: Vec<Option<usize>>,
    /// Pools per shard, in slot order.
    members: Vec<Vec<PoolId>>,
}

impl Partition {
    /// Partitions `graph`'s pool slots into at most `max_shards` shards,
    /// never splitting a connected component. The realized shard count is
    /// `min(max_shards, component count)`; `max_shards == 0` is treated
    /// as 1.
    pub fn new(graph: &TokenGraph, max_shards: usize) -> Self {
        // Unit weights and no splitting reproduce the classic
        // largest-component-first greedy placement exactly.
        Self::new_weighted(graph, max_shards, &[], false)
    }

    /// Partitions `graph`'s pool slots with per-slot load weights
    /// (`weights[p]` = observed load of pool slot `p`; missing entries
    /// count as zero — every slot also carries an implicit weight of 1 so
    /// cold components still spread by size).
    ///
    /// Placement units are connected components, placed heaviest-first on
    /// the least-loaded shard. With `split_dominant` set, a **dominant
    /// component** — one holding more than `total_weight / max_shards`,
    /// i.e. more than a perfectly balanced shard's share — is first split
    /// into its 2-edge-connected blocks along bridge boundaries. Bridge
    /// pools belong to no simple cycle (removing one disconnects the
    /// component), so every cycle's pools stay inside one block and
    /// block-level sharding preserves the per-shard cycle-universe
    /// invariant the sharded runtime relies on. Each bridge pool is
    /// deterministically assigned to the block owning its `token_a`
    /// endpoint.
    ///
    /// The result is a pure function of `(graph, max_shards, weights,
    /// split_dominant)` — no randomness, no iteration-order dependence —
    /// so identical inputs (e.g. a replayed event journal) always yield
    /// the identical partition.
    pub fn new_weighted(
        graph: &TokenGraph,
        max_shards: usize,
        weights: &[u64],
        split_dominant: bool,
    ) -> Self {
        let pool_count = graph.pool_count();
        let token_count = graph.token_count();

        // Union-find over tokens, driven by every pool slot (live or
        // retired — retired pools keep their component claim so a revive
        // stays shard-local).
        let mut parent: Vec<usize> = (0..token_count).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for pool in graph.pools() {
            let a = find(&mut parent, pool.token_a().index());
            let b = find(&mut parent, pool.token_b().index());
            if a != b {
                // Union by smaller root index: keeps roots (and therefore
                // component ordering below) independent of pool order.
                let (lo, hi) = if a < b { (a, b) } else { (b, a) };
                parent[hi] = lo;
            }
        }

        // Group pool slots by component root, preserving slot order. The
        // root is the component's smallest token index (unions always
        // keep the smaller root), making it a deterministic tiebreak.
        let mut component_of_root: Vec<Option<usize>> = vec![None; token_count];
        let mut component_pools: Vec<Vec<PoolId>> = Vec::new();
        let mut component_roots: Vec<usize> = Vec::new();
        for (index, pool) in graph.pools().iter().enumerate() {
            let root = find(&mut parent, pool.token_a().index());
            let component = *component_of_root[root].get_or_insert_with(|| {
                component_pools.push(Vec::new());
                component_roots.push(root);
                component_pools.len() - 1
            });
            component_pools[component].push(PoolId::new(index as u32));
        }

        // Placement units: (pools, weight, tiebreak token). Start with
        // whole components.
        let weight_of = |pools: &[PoolId]| -> u64 {
            pools
                .iter()
                .map(|p| 1 + weights.get(p.index()).copied().unwrap_or(0))
                .sum()
        };
        let mut units: Vec<(Vec<PoolId>, u64, usize)> = component_pools
            .into_iter()
            .zip(component_roots)
            .map(|(pools, root)| {
                let weight = weight_of(&pools);
                (pools, weight, root)
            })
            .collect();

        // Hot-shard splitting: when one component outweighs a perfectly
        // balanced shard's share, cut it at bridge boundaries so its
        // blocks can spread across engines.
        if split_dominant && max_shards > 1 && !units.is_empty() {
            let total: u64 = units.iter().map(|u| u.1).sum();
            let dominant = (0..units.len())
                .min_by_key(|&i| (std::cmp::Reverse(units[i].1), units[i].2))
                .expect("units is non-empty");
            if units[dominant].1 * max_shards as u64 > total {
                let blocks = bridge_blocks(graph, &units[dominant].0);
                if blocks.len() > 1 {
                    let (pools, _, _) = units.swap_remove(dominant);
                    debug_assert_eq!(
                        blocks.iter().map(Vec::len).sum::<usize>(),
                        pools.len(),
                        "blocks repartition the component exactly"
                    );
                    for block in blocks {
                        let weight = weight_of(&block);
                        let tiebreak = block
                            .iter()
                            .flat_map(|p| {
                                let pool = &graph.pools()[p.index()];
                                [pool.token_a().index(), pool.token_b().index()]
                            })
                            .min()
                            .expect("blocks are non-empty");
                        units.push((block, weight, tiebreak));
                    }
                }
            }
        }

        // Heaviest unit first; ties broken by smallest token index so the
        // order is a pure function of the graph + weights.
        units.sort_by_key(|(_, weight, tiebreak)| (std::cmp::Reverse(*weight), *tiebreak));

        let shard_count = max_shards.max(1).min(units.len().max(1));
        let mut members: Vec<Vec<PoolId>> = vec![Vec::new(); shard_count];
        let mut loads: Vec<u64> = vec![0; shard_count];
        let mut shard_of_pool = vec![0usize; pool_count];
        for (pools, weight, _) in units {
            let shard = (0..shard_count)
                .min_by_key(|&s| (loads[s], s))
                .expect("at least one shard");
            for &pool in &pools {
                shard_of_pool[pool.index()] = shard;
            }
            loads[shard] += weight;
            members[shard].extend(pools);
        }
        for shard in &mut members {
            shard.sort_by_key(|p| p.index());
        }

        // Token ownership: claim both tokens of every slot in slot order
        // (last claim wins) — exactly how `from_assignments` re-derives
        // it, so checkpoint round trips reproduce the partition
        // bit-for-bit even when a split component shares bridge tokens
        // between shards.
        let mut shard_of_token = vec![None; token_count];
        for (index, &shard) in shard_of_pool.iter().enumerate() {
            let pool = &graph.pools()[index];
            shard_of_token[pool.token_a().index()] = Some(shard);
            shard_of_token[pool.token_b().index()] = Some(shard);
        }

        Partition {
            shard_of_pool,
            shard_of_token,
            members,
        }
    }

    /// Reconstructs a partition from a checkpointed per-slot shard
    /// assignment (`owners[p]` = shard owning pool slot `p`). Token
    /// ownership and member lists are re-derived by claiming both tokens
    /// of every slot in slot order — exactly how [`Partition::new`] and
    /// [`Partition::register_pool`] built them originally, so a
    /// checkpoint → restore round trip reproduces the partition
    /// bit-for-bit.
    ///
    /// # Errors
    ///
    /// Returns [`crate::GraphError::InvalidCheckpoint`] when the
    /// assignment does not cover `graph`'s slots exactly, names a shard
    /// at or beyond `shard_count`, or `shard_count` is zero.
    pub fn from_assignments(
        graph: &TokenGraph,
        owners: &[usize],
        shard_count: usize,
    ) -> Result<Self, crate::GraphError> {
        if shard_count == 0 {
            return Err(crate::GraphError::InvalidCheckpoint(
                "partition needs at least one shard",
            ));
        }
        if owners.len() != graph.pool_count() {
            return Err(crate::GraphError::InvalidCheckpoint(
                "partition assignment does not cover every pool slot",
            ));
        }
        let mut members: Vec<Vec<PoolId>> = vec![Vec::new(); shard_count];
        let mut shard_of_token = vec![None; graph.token_count()];
        for (index, &shard) in owners.iter().enumerate() {
            if shard >= shard_count {
                return Err(crate::GraphError::InvalidCheckpoint(
                    "partition assignment names an unknown shard",
                ));
            }
            let pool = &graph.pools()[index];
            members[shard].push(PoolId::new(index as u32));
            shard_of_token[pool.token_a().index()] = Some(shard);
            shard_of_token[pool.token_b().index()] = Some(shard);
        }
        Ok(Partition {
            shard_of_pool: owners.to_vec(),
            shard_of_token,
            members,
        })
    }

    /// Number of shards actually produced.
    pub fn shard_count(&self) -> usize {
        self.members.len()
    }

    /// The shard owning pool slot `pool` (`None` for unknown slots).
    pub fn shard_of_pool(&self, pool: PoolId) -> Option<usize> {
        self.shard_of_pool.get(pool.index()).copied()
    }

    /// The shard owning `token`'s component (`None` for tokens that touch
    /// no pool).
    pub fn shard_of_token(&self, token: TokenId) -> Option<usize> {
        self.shard_of_token.get(token.index()).copied().flatten()
    }

    /// The pool slots owned by `shard`, in slot order.
    pub fn members(&self, shard: usize) -> &[PoolId] {
        self.members.get(shard).map_or(&[], Vec::as_slice)
    }

    /// Pool counts per shard (the balance the greedy placement achieved).
    pub fn loads(&self) -> Vec<usize> {
        self.members.iter().map(Vec::len).collect()
    }

    /// Registers a pool appended after partitioning (one new slot at a
    /// time, in slot order). The pool joins `shard`; both its tokens are
    /// claimed for that shard. Callers decide `shard` via
    /// [`Partition::shard_of_token`] — a pool bridging two *different*
    /// shards' components cannot be registered and requires repartitioning
    /// (that is exactly the rebuild trigger in `arb-engine`'s runtime).
    pub fn register_pool(&mut self, pool: PoolId, a: TokenId, b: TokenId, shard: usize) {
        debug_assert_eq!(pool.index(), self.shard_of_pool.len(), "slot order");
        debug_assert!(shard < self.members.len());
        self.shard_of_pool.push(shard);
        let needed = a.index().max(b.index()) + 1;
        if needed > self.shard_of_token.len() {
            self.shard_of_token.resize(needed, None);
        }
        self.shard_of_token[a.index()] = Some(shard);
        self.shard_of_token[b.index()] = Some(shard);
        self.members[shard].push(pool);
    }
}

/// Splits one connected component (given as its pool slots, ascending)
/// into 2-edge-connected blocks: bridge edges are found with an
/// iterative low-link DFS over the token multigraph, then blocks are the
/// connected components of the non-bridge edges. Each bridge pool joins
/// the block holding its `token_a` endpoint. Parallel pools between the
/// same token pair are distinct edges (so neither is a bridge), which the
/// per-edge parent check handles. Fully deterministic: adjacency is
/// built in slot order and the DFS starts from the smallest token.
fn bridge_blocks(graph: &TokenGraph, pools: &[PoolId]) -> Vec<Vec<PoolId>> {
    // Local node numbering in first-appearance (slot) order.
    let mut local: Vec<Option<usize>> = vec![None; graph.token_count()];
    let mut adjacency: Vec<Vec<(usize, usize)>> = Vec::new();
    let mut endpoints: Vec<(usize, usize)> = Vec::with_capacity(pools.len());
    for (edge, &pid) in pools.iter().enumerate() {
        let pool = &graph.pools()[pid.index()];
        let mut node = |token: usize, adjacency: &mut Vec<Vec<(usize, usize)>>| {
            *local[token].get_or_insert_with(|| {
                adjacency.push(Vec::new());
                adjacency.len() - 1
            })
        };
        let a = node(pool.token_a().index(), &mut adjacency);
        let b = node(pool.token_b().index(), &mut adjacency);
        adjacency[a].push((b, edge));
        adjacency[b].push((a, edge));
        endpoints.push((a, b));
    }

    // Iterative bridge-finding DFS (low-link). `parent_edge` is the edge
    // used to enter a node: skipping that *edge* (not the vertex) keeps
    // parallel edges from being misclassified as bridges.
    let n = adjacency.len();
    let mut disc = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut is_bridge = vec![false; pools.len()];
    let mut timer = 0usize;
    for start in 0..n {
        if disc[start] != usize::MAX {
            continue;
        }
        disc[start] = timer;
        low[start] = timer;
        timer += 1;
        let mut stack: Vec<(usize, usize, usize)> = vec![(start, usize::MAX, 0)];
        while let Some(&(u, parent_edge, next)) = stack.last() {
            if let Some(&(v, edge)) = adjacency[u].get(next) {
                stack.last_mut().expect("stack is non-empty").2 += 1;
                if edge == parent_edge {
                    continue;
                }
                if disc[v] == usize::MAX {
                    disc[v] = timer;
                    low[v] = timer;
                    timer += 1;
                    stack.push((v, edge, 0));
                } else {
                    low[u] = low[u].min(disc[v]);
                }
            } else {
                stack.pop();
                if let Some(&(p, _, _)) = stack.last() {
                    low[p] = low[p].min(low[u]);
                    if low[u] > disc[p] {
                        is_bridge[parent_edge] = true;
                    }
                }
            }
        }
    }

    // Blocks: union non-bridge edge endpoints, then bucket pools by the
    // block of their (token_a for bridges) endpoint, numbering blocks in
    // slot order of first appearance.
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for (edge, &(a, b)) in endpoints.iter().enumerate() {
        if !is_bridge[edge] {
            let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
            if ra != rb {
                let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
                parent[hi] = lo;
            }
        }
    }
    let mut block_of_root: Vec<Option<usize>> = vec![None; n];
    let mut blocks: Vec<Vec<PoolId>> = Vec::new();
    for (edge, &pid) in pools.iter().enumerate() {
        let root = find(&mut parent, endpoints[edge].0);
        let block = *block_of_root[root].get_or_insert_with(|| {
            blocks.push(Vec::new());
            blocks.len() - 1
        });
        blocks[block].push(pid);
    }
    blocks
}

#[cfg(test)]
mod tests {
    use super::*;
    use arb_amm::fee::FeeRate;
    use arb_amm::pool::Pool;

    fn t(i: u32) -> TokenId {
        TokenId::new(i)
    }

    fn p(i: u32) -> PoolId {
        PoolId::new(i)
    }

    /// Two triangles and one pair: three components of sizes 3, 3, 1.
    fn three_islands() -> TokenGraph {
        let fee = FeeRate::UNISWAP_V2;
        TokenGraph::new(vec![
            Pool::new(t(0), t(1), 100.0, 200.0, fee).unwrap(),
            Pool::new(t(1), t(2), 300.0, 200.0, fee).unwrap(),
            Pool::new(t(2), t(0), 200.0, 400.0, fee).unwrap(),
            Pool::new(t(3), t(4), 10.0, 10.0, fee).unwrap(),
            Pool::new(t(4), t(5), 10.0, 10.0, fee).unwrap(),
            Pool::new(t(5), t(3), 10.0, 10.0, fee).unwrap(),
            Pool::new(t(6), t(7), 5.0, 5.0, fee).unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn components_are_never_split() {
        let graph = three_islands();
        for shards in 1..=4 {
            let partition = Partition::new(&graph, shards);
            // Pools of one component share a shard.
            for component in [[0u32, 1, 2], [3, 4, 5]] {
                let owner = partition.shard_of_pool(p(component[0])).unwrap();
                for &pool in &component {
                    assert_eq!(partition.shard_of_pool(p(pool)), Some(owner));
                }
            }
            // Every pool appears in exactly one member list.
            let mut seen = vec![0usize; graph.pool_count()];
            for shard in 0..partition.shard_count() {
                for pool in partition.members(shard) {
                    seen[pool.index()] += 1;
                    assert_eq!(partition.shard_of_pool(*pool), Some(shard));
                }
            }
            assert!(seen.iter().all(|&n| n == 1), "{seen:?}");
        }
    }

    #[test]
    fn shard_count_caps_at_component_count() {
        let graph = three_islands();
        let partition = Partition::new(&graph, 8);
        assert_eq!(partition.shard_count(), 3);
        assert_eq!(partition.loads().iter().sum::<usize>(), 7);
        // Greedy largest-first: the two triangles land on different
        // shards, the pair on the third.
        let mut loads = partition.loads();
        loads.sort_unstable();
        assert_eq!(loads, vec![1, 3, 3]);
    }

    #[test]
    fn zero_shards_treated_as_one() {
        let graph = three_islands();
        let partition = Partition::new(&graph, 0);
        assert_eq!(partition.shard_count(), 1);
        assert_eq!(partition.members(0).len(), 7);
    }

    #[test]
    fn token_ownership_follows_pools() {
        let graph = three_islands();
        let partition = Partition::new(&graph, 3);
        let groups: [(&[u32], u32); 3] = [(&[0, 1, 2], 0), (&[3, 4, 5], 3), (&[6, 7], 6)];
        for (tokens, pool) in groups {
            let owner = partition.shard_of_pool(p(pool));
            for &token in tokens {
                assert_eq!(partition.shard_of_token(t(token)), owner);
            }
        }
        assert_eq!(partition.shard_of_token(t(99)), None);
    }

    #[test]
    fn deterministic_across_calls() {
        let graph = three_islands();
        assert_eq!(Partition::new(&graph, 4), Partition::new(&graph, 4));
    }

    #[test]
    fn retired_pools_keep_their_component_claim() {
        let fee = FeeRate::UNISWAP_V2;
        let mut graph = TokenGraph::new(vec![
            Pool::new(t(0), t(1), 10.0, 10.0, fee).unwrap(),
            Pool::new(t(1), t(2), 10.0, 10.0, fee).unwrap(),
            Pool::new(t(3), t(4), 10.0, 10.0, fee).unwrap(),
        ])
        .unwrap();
        // Retiring the bridge pool must not move it (or its tokens) to
        // another shard: a later revive has to stay shard-local.
        graph.remove_pool(p(1)).unwrap();
        let partition = Partition::new(&graph, 2);
        assert_eq!(
            partition.shard_of_pool(p(0)),
            partition.shard_of_pool(p(1)),
            "retired pool stays with its component"
        );
        assert_eq!(
            partition.shard_of_token(t(2)),
            partition.shard_of_pool(p(1))
        );
    }

    #[test]
    fn assignments_round_trip_bit_for_bit() {
        let graph = three_islands();
        let mut partition = Partition::new(&graph, 3);
        // Exercise the append path too, so the round trip covers state no
        // fresh `Partition::new` would produce.
        let shard = partition.shard_of_token(t(6)).unwrap();
        let mut graph = graph;
        graph.add_pool(Pool::new(t(6), t(9), 5.0, 5.0, FeeRate::UNISWAP_V2).unwrap());
        partition.register_pool(p(7), t(6), t(9), shard);

        let owners: Vec<usize> = (0..graph.pool_count())
            .map(|i| partition.shard_of_pool(p(i as u32)).unwrap())
            .collect();
        let restored =
            Partition::from_assignments(&graph, &owners, partition.shard_count()).unwrap();
        assert_eq!(restored, partition);
    }

    #[test]
    fn invalid_assignments_rejected() {
        let graph = three_islands();
        let owners = vec![0usize; graph.pool_count()];
        assert!(matches!(
            Partition::from_assignments(&graph, &owners, 0),
            Err(crate::GraphError::InvalidCheckpoint(_))
        ));
        assert!(matches!(
            Partition::from_assignments(&graph, &owners[1..], 1),
            Err(crate::GraphError::InvalidCheckpoint(_))
        ));
        let bad = vec![5usize; graph.pool_count()];
        assert!(matches!(
            Partition::from_assignments(&graph, &bad, 2),
            Err(crate::GraphError::InvalidCheckpoint(_))
        ));
        assert!(Partition::from_assignments(&graph, &owners, 1).is_ok());
    }

    /// One component shaped as two triangles joined by a single bridge
    /// pool: `t0-t1-t2` (pools 0-2), bridge `t2-t3` (pool 3), `t3-t4-t5`
    /// (pools 4-6).
    fn bridged_dumbbell() -> TokenGraph {
        let fee = FeeRate::UNISWAP_V2;
        TokenGraph::new(vec![
            Pool::new(t(0), t(1), 100.0, 200.0, fee).unwrap(),
            Pool::new(t(1), t(2), 300.0, 200.0, fee).unwrap(),
            Pool::new(t(2), t(0), 200.0, 400.0, fee).unwrap(),
            Pool::new(t(2), t(3), 50.0, 50.0, fee).unwrap(),
            Pool::new(t(3), t(4), 10.0, 10.0, fee).unwrap(),
            Pool::new(t(4), t(5), 10.0, 10.0, fee).unwrap(),
            Pool::new(t(5), t(3), 10.0, 10.0, fee).unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn unweighted_and_weighted_unit_paths_agree() {
        let graph = three_islands();
        for shards in 1..=4 {
            assert_eq!(
                Partition::new(&graph, shards),
                Partition::new_weighted(&graph, shards, &[], false),
            );
        }
    }

    #[test]
    fn dominant_component_splits_at_the_bridge() {
        let graph = bridged_dumbbell();
        // Without splitting, the single component pins everything to one
        // shard regardless of the cap.
        let whole = Partition::new(&graph, 2);
        assert_eq!(whole.shard_count(), 1);

        // With splitting, the bridge separates the two triangles; the
        // bridge pool itself follows its `token_a` (t2) side.
        let split = Partition::new_weighted(&graph, 2, &[], true);
        assert_eq!(split.shard_count(), 2);
        let left = split.shard_of_pool(p(0)).unwrap();
        for pool in [1, 2, 3] {
            assert_eq!(split.shard_of_pool(p(pool)), Some(left), "pool {pool}");
        }
        let right = split.shard_of_pool(p(4)).unwrap();
        assert_ne!(left, right);
        for pool in [5, 6] {
            assert_eq!(split.shard_of_pool(p(pool)), Some(right), "pool {pool}");
        }
        // No cycle crosses the cut: every 3-cycle's pools share a shard.
        for cycle in [[0u32, 1, 2], [4, 5, 6]] {
            let owner = split.shard_of_pool(p(cycle[0]));
            for &pool in &cycle {
                assert_eq!(split.shard_of_pool(p(pool)), owner);
            }
        }
    }

    #[test]
    fn parallel_pools_are_never_bridges() {
        let fee = FeeRate::UNISWAP_V2;
        // Two parallel pools between t0-t1, then a genuine bridge to a
        // triangle. The parallel pair is 2-edge-connected (a 2-cycle runs
        // through it), so only the t1-t2 pool may be cut.
        let graph = TokenGraph::new(vec![
            Pool::new(t(0), t(1), 100.0, 100.0, fee).unwrap(),
            Pool::new(t(0), t(1), 90.0, 110.0, fee).unwrap(),
            Pool::new(t(1), t(2), 50.0, 50.0, fee).unwrap(),
            Pool::new(t(2), t(3), 10.0, 10.0, fee).unwrap(),
            Pool::new(t(3), t(4), 10.0, 10.0, fee).unwrap(),
            Pool::new(t(4), t(2), 10.0, 10.0, fee).unwrap(),
        ])
        .unwrap();
        let split = Partition::new_weighted(&graph, 2, &[], true);
        assert_eq!(split.shard_count(), 2);
        // The 2-cycle through the parallel pair stays whole.
        assert_eq!(split.shard_of_pool(p(0)), split.shard_of_pool(p(1)));
        // The triangle stays whole.
        assert_eq!(split.shard_of_pool(p(3)), split.shard_of_pool(p(4)));
        assert_eq!(split.shard_of_pool(p(4)), split.shard_of_pool(p(5)));
    }

    #[test]
    fn weights_steer_the_greedy_placement() {
        let graph = three_islands();
        // Make the single pair (pool 6) hotter than both triangles
        // combined: it must land alone on its own shard.
        let mut weights = vec![0u64; graph.pool_count()];
        weights[6] = 100;
        let partition = Partition::new_weighted(&graph, 2, &weights, false);
        assert_eq!(partition.shard_count(), 2);
        let hot = partition.shard_of_pool(p(6)).unwrap();
        for pool in 0..6 {
            assert_ne!(partition.shard_of_pool(p(pool)), Some(hot), "pool {pool}");
        }
    }

    #[test]
    fn weighted_split_is_deterministic_across_calls() {
        let graph = bridged_dumbbell();
        let weights: Vec<u64> = (0..graph.pool_count() as u64).map(|i| i * 3 % 7).collect();
        assert_eq!(
            Partition::new_weighted(&graph, 3, &weights, true),
            Partition::new_weighted(&graph, 3, &weights, true),
        );
    }

    #[test]
    fn split_partitions_round_trip_through_assignments() {
        let graph = bridged_dumbbell();
        let partition = Partition::new_weighted(&graph, 2, &[], true);
        let owners: Vec<usize> = (0..graph.pool_count())
            .map(|i| partition.shard_of_pool(p(i as u32)).unwrap())
            .collect();
        let restored =
            Partition::from_assignments(&graph, &owners, partition.shard_count()).unwrap();
        assert_eq!(restored, partition);
    }

    #[test]
    fn register_pool_extends_ownership() {
        let graph = three_islands();
        let mut partition = Partition::new(&graph, 3);
        let shard = partition.shard_of_token(t(6)).unwrap();
        partition.register_pool(p(7), t(6), t(9), shard);
        assert_eq!(partition.shard_of_pool(p(7)), Some(shard));
        assert_eq!(partition.shard_of_token(t(9)), Some(shard));
        assert!(partition.members(shard).contains(&p(7)));
    }
}
