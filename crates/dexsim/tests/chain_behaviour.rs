//! Chain-level behaviour: invariants under randomized transaction flow
//! and failure injection.

use arb_amm::fee::FeeRate;
use arb_amm::pool::PoolId;
use arb_amm::token::TokenId;
use arb_dexsim::chain::{BlockConfig, Chain};
use arb_dexsim::tx::{BundleStep, Transaction};
use arb_dexsim::units::to_raw;
use arb_dexsim::TxError;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn t(i: u32) -> TokenId {
    TokenId::new(i)
}

fn three_pool_chain() -> Chain {
    let mut chain = Chain::new();
    let fee = FeeRate::UNISWAP_V2;
    for (a, b) in [(0u32, 1u32), (1, 2), (2, 0)] {
        chain
            .add_pool(t(a), t(b), to_raw(5_000.0), to_raw(5_000.0), fee)
            .unwrap();
    }
    chain
}

#[test]
fn k_never_decreases_under_swap_flow() {
    let mut chain = three_pool_chain();
    let alice = chain.create_account();
    let mut rng = StdRng::seed_from_u64(1);
    let mut last_k: Vec<u128> = chain
        .state()
        .pools()
        .iter()
        .map(|p| p.raw().k().unwrap())
        .collect();
    for _ in 0..30 {
        for _ in 0..10 {
            let pool = rng.gen_range(0..3u32);
            let p = chain.state().pools()[pool as usize];
            let a_to_b = rng.gen_bool(0.5);
            let token_in = if a_to_b { p.token_a() } else { p.token_b() };
            let amount = to_raw(rng.gen_range(0.1..50.0));
            chain.mint(alice, token_in, amount);
            chain.submit(Transaction::Swap {
                account: alice,
                pool: PoolId::new(pool),
                token_in,
                amount_in: amount,
                min_out: 0,
            });
        }
        chain.mine_block();
        let k_now: Vec<u128> = chain
            .state()
            .pools()
            .iter()
            .map(|p| p.raw().k().unwrap())
            .collect();
        for (before, after) in last_k.iter().zip(&k_now) {
            assert!(after >= before, "pool k decreased under pure swaps");
        }
        last_k = k_now;
    }
}

#[test]
fn partial_bundle_failure_reverts_midway_state() {
    let mut chain = three_pool_chain();
    let bot = chain.create_account();
    let digest = chain.state().digest();
    // First two steps fine, last step drains more than exists: overall
    // revert must restore even the pools touched by the good steps.
    let steps = vec![
        BundleStep {
            pool: PoolId::new(0),
            token_in: t(0),
            amount_in: to_raw(100.0),
        },
        BundleStep {
            pool: PoolId::new(1),
            token_in: t(1),
            amount_in: to_raw(50.0),
        },
        BundleStep {
            pool: PoolId::new(2),
            token_in: t(2),
            amount_in: u128::MAX / 2, // overflow territory
        },
    ];
    chain.submit(Transaction::FlashBundle {
        account: bot,
        steps,
    });
    let block = chain.mine_block();
    assert!(!block.receipts[0].success);
    assert_eq!(chain.state().digest(), digest);
    assert_eq!(chain.state().balance(bot, t(0)), 0);
    assert_eq!(chain.state().balance(bot, t(1)), 0);
}

#[test]
fn gas_accounting_is_exact() {
    let mut chain = Chain::with_config(BlockConfig { gas_limit: 400_000 });
    let fee = FeeRate::UNISWAP_V2;
    let pool = chain
        .add_pool(t(0), t(1), to_raw(100.0), to_raw(100.0), fee)
        .unwrap();
    let alice = chain.create_account();
    chain.mint(alice, t(0), to_raw(50.0));
    // Swap gas = 81_000; transfer gas = 21_000.
    for _ in 0..3 {
        chain.submit(Transaction::Swap {
            account: alice,
            pool,
            token_in: t(0),
            amount_in: to_raw(1.0),
            min_out: 0,
        });
    }
    chain.submit(Transaction::Transfer {
        from: alice,
        to: alice,
        token: t(0),
        amount: 1,
    });
    let block = chain.mine_block();
    // 3×81k = 243k + 21k = 264k ≤ 400k: all four fit.
    assert_eq!(block.receipts.len(), 4);
    assert_eq!(block.gas_used, 3 * 81_000 + 21_000);
}

#[test]
fn transfer_to_unknown_account_reverts() {
    let mut chain = three_pool_chain();
    let alice = chain.create_account();
    chain.mint(alice, t(0), 100);
    // Forge an account id from a different chain.
    let ghost = {
        let mut other = Chain::new();
        other.create_account();
        other.create_account()
    };
    chain.submit(Transaction::Transfer {
        from: alice,
        to: ghost,
        token: t(0),
        amount: 10,
    });
    let block = chain.mine_block();
    assert!(!block.receipts[0].success);
    assert_eq!(block.receipts[0].error, Some(TxError::UnknownAccount));
    assert_eq!(chain.state().balance(alice, t(0)), 100);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Value conservation: tokens paid into pools + balances held equals
    /// tokens minted, under arbitrary successful swap flow.
    #[test]
    fn token_conservation(ops in proptest::collection::vec((0u32..3, any::<bool>(), 1.0..100.0f64), 1..40)) {
        let mut chain = three_pool_chain();
        let alice = chain.create_account();
        let mut minted: [u128; 3] = [0; 3];
        let initial_reserves: Vec<(u128, u128)> = chain
            .state()
            .pools()
            .iter()
            .map(|p| (p.raw().reserve_a(), p.raw().reserve_b()))
            .collect();
        for (pool, a_to_b, amount) in ops {
            let p = chain.state().pools()[pool as usize];
            let token_in = if a_to_b { p.token_a() } else { p.token_b() };
            let raw = to_raw(amount);
            chain.mint(alice, token_in, raw);
            minted[token_in.index()] += raw;
            chain.submit(Transaction::Swap {
                account: alice,
                pool: PoolId::new(pool),
                token_in,
                amount_in: raw,
                min_out: 0,
            });
        }
        chain.mine_block();
        // Per token: minted == balance + (reserves now − reserves then).
        for token in 0..3u32 {
            let balance = chain.state().balance(alice, t(token));
            let mut reserve_delta: i128 = 0;
            for (i, pool) in chain.state().pools().iter().enumerate() {
                let (ia, ib) = initial_reserves[i];
                if pool.token_a() == t(token) {
                    reserve_delta += pool.raw().reserve_a() as i128 - ia as i128;
                }
                if pool.token_b() == t(token) {
                    reserve_delta += pool.raw().reserve_b() as i128 - ib as i128;
                }
            }
            let total = balance as i128 + reserve_delta;
            prop_assert_eq!(total, minted[token as usize] as i128,
                "token {} conservation violated", token);
        }
    }
}
