//! Transaction execution errors (revert reasons).

use std::error::Error;
use std::fmt;

/// Why a transaction reverted.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TxError {
    /// The referenced pool does not exist.
    UnknownPool,
    /// The referenced account does not exist.
    UnknownAccount,
    /// The account's balance cannot cover the debit.
    InsufficientBalance,
    /// A swap produced less than its `min_out` bound.
    SlippageExceeded,
    /// A flash bundle would settle with a negative token balance.
    BundleInsolvent,
    /// The account holds fewer LP shares than it tried to burn.
    InsufficientShares,
    /// A zero amount where a positive one is required.
    ZeroAmount,
    /// AMM-level failure (overflow, drained reserve, …).
    Amm(arb_amm::AmmError),
}

impl fmt::Display for TxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxError::UnknownPool => write!(f, "unknown pool"),
            TxError::UnknownAccount => write!(f, "unknown account"),
            TxError::InsufficientBalance => write!(f, "insufficient balance"),
            TxError::SlippageExceeded => write!(f, "output below min_out bound"),
            TxError::BundleInsolvent => write!(f, "flash bundle settles negative"),
            TxError::InsufficientShares => write!(f, "insufficient lp shares"),
            TxError::ZeroAmount => write!(f, "amount must be positive"),
            TxError::Amm(e) => write!(f, "amm error: {e}"),
        }
    }
}

impl Error for TxError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TxError::Amm(e) => Some(e),
            _ => None,
        }
    }
}

impl From<arb_amm::AmmError> for TxError {
    fn from(e: arb_amm::AmmError) -> Self {
        TxError::Amm(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants_nonempty() {
        let variants = [
            TxError::UnknownPool,
            TxError::UnknownAccount,
            TxError::InsufficientBalance,
            TxError::SlippageExceeded,
            TxError::BundleInsolvent,
            TxError::InsufficientShares,
            TxError::ZeroAmount,
            TxError::Amm(arb_amm::AmmError::Overflow),
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }
}
