//! Market agents that perturb on-chain state between blocks.
//!
//! The paper's snapshot is one instant of a market that retail flow keeps
//! pushing out of equilibrium. [`RandomTrader`] (uninformed swaps) and
//! [`LiquidityAgent`] (depth changes) regenerate the price discrepancies
//! that the arbitrage bot then harvests — the closed loop the end-to-end
//! examples and the bot crate run on.

use rand::Rng;

use crate::chain::Chain;
use crate::state::AccountId;
use crate::tx::Transaction;
use crate::units::to_display;

/// Uninformed noise trader: swaps a random fraction of a random pool's
/// input reserve each activation.
#[derive(Debug, Clone)]
pub struct RandomTrader {
    account: AccountId,
    /// Probability of trading on each pool per activation.
    pub trade_probability: f64,
    /// Maximum input as a fraction of the pool's input-side reserve.
    pub max_fraction: f64,
}

impl RandomTrader {
    /// Registers a trader account on the chain.
    pub fn new(chain: &mut Chain, trade_probability: f64, max_fraction: f64) -> Self {
        RandomTrader {
            account: chain.create_account(),
            trade_probability: trade_probability.clamp(0.0, 1.0),
            max_fraction: max_fraction.clamp(0.0, 0.5),
        }
    }

    /// The trader's account.
    pub fn account(&self) -> AccountId {
        self.account
    }

    /// Submits this activation's swaps to the mempool. The trader's input
    /// tokens are faucet-minted first — it models *external* flow entering
    /// the DEX, so the tokens genuinely come from outside the system.
    pub fn act<R: Rng + ?Sized>(&self, chain: &mut Chain, rng: &mut R) {
        let pool_count = chain.state().pool_count();
        for index in 0..pool_count {
            if !rng.gen_bool(self.trade_probability) {
                continue;
            }
            let pool = chain.state().pools()[index];
            let a_to_b = rng.gen_bool(0.5);
            let (token_in, reserve_in) = if a_to_b {
                (pool.token_a(), pool.raw().reserve_a())
            } else {
                (pool.token_b(), pool.raw().reserve_b())
            };
            let fraction = rng.gen_range(0.0..self.max_fraction.max(f64::MIN_POSITIVE));
            let amount_in = ((reserve_in as f64) * fraction) as u128;
            if amount_in == 0 {
                continue;
            }
            chain.mint(self.account, token_in, amount_in);
            chain.submit(Transaction::Swap {
                account: self.account,
                pool: arb_amm::pool::PoolId::new(index as u32),
                token_in,
                amount_in,
                min_out: 0,
            });
        }
    }
}

/// Liquidity agent: occasionally adds (and later removes) liquidity,
/// changing pool depth and therefore slippage profiles.
#[derive(Debug, Clone)]
pub struct LiquidityAgent {
    account: AccountId,
    /// Probability of acting on each pool per activation.
    pub action_probability: f64,
    /// Deposit size as a fraction of current reserves.
    pub deposit_fraction: f64,
}

impl LiquidityAgent {
    /// Registers an LP account on the chain.
    pub fn new(chain: &mut Chain, action_probability: f64, deposit_fraction: f64) -> Self {
        LiquidityAgent {
            account: chain.create_account(),
            action_probability: action_probability.clamp(0.0, 1.0),
            deposit_fraction: deposit_fraction.clamp(0.0, 0.5),
        }
    }

    /// The agent's account.
    pub fn account(&self) -> AccountId {
        self.account
    }

    /// Submits this activation's liquidity actions. Deposits are minted
    /// (external capital entering); removals recycle previously earned
    /// shares.
    pub fn act<R: Rng + ?Sized>(&self, chain: &mut Chain, rng: &mut R) {
        let pool_count = chain.state().pool_count();
        for index in 0..pool_count {
            if !rng.gen_bool(self.action_probability) {
                continue;
            }
            let pool_id = arb_amm::pool::PoolId::new(index as u32);
            let held = chain.state().shares(self.account, pool_id);
            if held > 0 && rng.gen_bool(0.5) {
                chain.submit(Transaction::RemoveLiquidity {
                    account: self.account,
                    pool: pool_id,
                    shares: held / 2 + 1,
                });
            } else {
                let pool = chain.state().pools()[index];
                let dep_a = ((pool.raw().reserve_a() as f64) * self.deposit_fraction) as u128;
                let dep_b = ((pool.raw().reserve_b() as f64) * self.deposit_fraction) as u128;
                if dep_a == 0 || dep_b == 0 {
                    continue;
                }
                chain.mint(self.account, pool.token_a(), dep_a);
                chain.mint(self.account, pool.token_b(), dep_b);
                chain.submit(Transaction::AddLiquidity {
                    account: self.account,
                    pool: pool_id,
                    amount_a: dep_a,
                    amount_b: dep_b,
                });
            }
        }
    }
}

/// Convenience: the spot mispricing a trader's flow created on one pool,
/// in display units (useful for diagnostics and tests).
pub fn display_reserves(chain: &Chain, pool_index: usize) -> (f64, f64) {
    let pool = chain.state().pools()[pool_index];
    (
        to_display(pool.raw().reserve_a()),
        to_display(pool.raw().reserve_b()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::to_raw;
    use arb_amm::fee::FeeRate;
    use arb_amm::token::TokenId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn t(i: u32) -> TokenId {
        TokenId::new(i)
    }

    fn chain_with_pools() -> Chain {
        let mut chain = Chain::new();
        for i in 0..3u32 {
            chain
                .add_pool(
                    t(i),
                    t((i + 1) % 3),
                    to_raw(10_000.0),
                    to_raw(10_000.0),
                    FeeRate::UNISWAP_V2,
                )
                .unwrap();
        }
        chain
    }

    #[test]
    fn trader_perturbs_reserves() {
        let mut chain = chain_with_pools();
        let trader = RandomTrader::new(&mut chain, 1.0, 0.05);
        let mut rng = StdRng::seed_from_u64(42);
        let before: Vec<_> = (0..3).map(|i| display_reserves(&chain, i)).collect();
        for _ in 0..5 {
            trader.act(&mut chain, &mut rng);
            chain.mine_block();
        }
        let after: Vec<_> = (0..3).map(|i| display_reserves(&chain, i)).collect();
        assert_ne!(before, after, "trading must move reserves");
        // All submitted swaps succeed (the trader mints its inputs).
        for block in chain.blocks() {
            for r in &block.receipts {
                assert!(r.success, "unexpected revert: {:?}", r.error);
            }
        }
    }

    #[test]
    fn lp_agent_round_trips_liquidity() {
        let mut chain = chain_with_pools();
        let lp = LiquidityAgent::new(&mut chain, 1.0, 0.1);
        let mut rng = StdRng::seed_from_u64(43);
        for _ in 0..10 {
            lp.act(&mut chain, &mut rng);
            chain.mine_block();
        }
        for block in chain.blocks() {
            for r in &block.receipts {
                assert!(r.success, "unexpected revert: {:?}", r.error);
            }
        }
        // Pool k never decreases under adds/removes beyond rounding dust.
        for i in 0..3 {
            let (ra, rb) = display_reserves(&chain, i);
            assert!(ra > 0.0 && rb > 0.0);
        }
    }

    #[test]
    fn trading_creates_arbitrage_over_time() {
        let mut chain = chain_with_pools();
        let trader = RandomTrader::new(&mut chain, 1.0, 0.08);
        let mut rng = StdRng::seed_from_u64(44);
        for _ in 0..10 {
            trader.act(&mut chain, &mut rng);
            chain.mine_block();
        }
        // The triangle 0→1→2→0 should now be unbalanced in one direction.
        let rate: f64 = (0..3)
            .map(|i| {
                let pool = chain.state().pools()[i];
                0.997 * pool.raw().reserve_b() as f64 / pool.raw().reserve_a() as f64
            })
            .product();
        let best = rate.max(1.0 / rate * 0.997f64.powi(6));
        assert!(
            best > 1.0,
            "random flow should create a profitable direction, rate={rate}"
        );
    }
}
