//! Transaction types.

use arb_amm::pool::PoolId;
use arb_amm::token::TokenId;

use crate::state::AccountId;

/// One swap inside a flash bundle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BundleStep {
    /// Pool to swap through.
    pub pool: PoolId,
    /// Token paid into the pool.
    pub token_in: TokenId,
    /// Exact raw input amount.
    pub amount_in: u128,
}

/// A transaction submitted to the chain.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Transaction {
    /// A single swap with a slippage bound: reverts unless the output is at
    /// least `min_out`.
    Swap {
        /// Paying account.
        account: AccountId,
        /// Pool to trade against.
        pool: PoolId,
        /// Token paid in (must be one of the pool's pair).
        token_in: TokenId,
        /// Raw input amount.
        amount_in: u128,
        /// Minimum acceptable raw output.
        min_out: u128,
    },
    /// Adds liquidity. Amounts are *desired* maxima; the executor deposits
    /// the largest reserve-ratio-preserving amounts within them (Uniswap
    /// router semantics) and mints LP shares.
    AddLiquidity {
        /// Depositing account.
        account: AccountId,
        /// Target pool.
        pool: PoolId,
        /// Max raw amount of the pool's token A.
        amount_a: u128,
        /// Max raw amount of the pool's token B.
        amount_b: u128,
    },
    /// Burns LP shares for the proportional reserves.
    RemoveLiquidity {
        /// Withdrawing account.
        account: AccountId,
        /// Target pool.
        pool: PoolId,
        /// Shares to burn.
        shares: u128,
    },
    /// A plain token transfer between accounts.
    Transfer {
        /// Sender.
        from: AccountId,
        /// Recipient.
        to: AccountId,
        /// Token to move.
        token: TokenId,
        /// Raw amount.
        amount: u128,
    },
    /// An atomic sequence of swaps with flash-loan semantics: intermediate
    /// token positions may go negative, but every token must settle
    /// non-negative against the account's balance or the whole bundle
    /// reverts. This is how a loop trade executes without upfront capital.
    FlashBundle {
        /// Executing account.
        account: AccountId,
        /// Swap steps in order.
        steps: Vec<BundleStep>,
    },
}

impl Transaction {
    /// The gas this transaction consumes (simplified flat-rate model:
    /// 21k base + 60k per swap + 80k per liquidity action).
    pub fn gas(&self) -> u64 {
        const BASE: u64 = 21_000;
        match self {
            Transaction::Swap { .. } => BASE + 60_000,
            Transaction::AddLiquidity { .. } | Transaction::RemoveLiquidity { .. } => BASE + 80_000,
            Transaction::Transfer { .. } => BASE,
            Transaction::FlashBundle { steps, .. } => BASE + 60_000 * steps.len() as u64,
        }
    }

    /// The account paying for / initiating the transaction.
    pub fn sender(&self) -> AccountId {
        match self {
            Transaction::Swap { account, .. }
            | Transaction::AddLiquidity { account, .. }
            | Transaction::RemoveLiquidity { account, .. }
            | Transaction::FlashBundle { account, .. } => *account,
            Transaction::Transfer { from, .. } => *from,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acct() -> AccountId {
        let mut s = crate::state::ChainState::new();
        s.create_account()
    }

    #[test]
    fn gas_scales_with_bundle_size() {
        let account = acct();
        let step = BundleStep {
            pool: PoolId::new(0),
            token_in: TokenId::new(0),
            amount_in: 1,
        };
        let small = Transaction::FlashBundle {
            account,
            steps: vec![step; 2],
        };
        let large = Transaction::FlashBundle {
            account,
            steps: vec![step; 10],
        };
        assert!(large.gas() > small.gas());
        assert_eq!(large.gas() - small.gas(), 8 * 60_000);
    }

    #[test]
    fn sender_extraction() {
        let account = acct();
        let tx = Transaction::Swap {
            account,
            pool: PoolId::new(0),
            token_in: TokenId::new(0),
            amount_in: 1,
            min_out: 0,
        };
        assert_eq!(tx.sender(), account);
    }
}
