//! A deterministic DEX chain simulator — the Ethereum + Uniswap V2 stand-in.
//!
//! The paper's strategies ultimately execute on-chain: the three swaps of a
//! loop are bundled into one atomic transaction ("it is better to implement
//! these three exchanges in the same transaction by applying flash loan").
//! This crate provides the execution substrate with the semantics that
//! matter for arbitrage:
//!
//! * [`state`] — integer-exact pools ([`arb_amm::exact::RawPool`]), account
//!   balances, and LP shares;
//! * [`tx`] — transactions: swaps with slippage bounds, liquidity
//!   provision/removal, transfers, and atomic [`tx::Transaction::FlashBundle`]s
//!   that may run transiently negative but must settle non-negative
//!   (flash-loan semantics);
//! * [`executor`] — journaled execution with full rollback on revert;
//! * [`chain`] — mempool, gas-limited block mining, receipts, and a
//!   deterministic state digest;
//! * [`events`] — Uniswap-style `Sync`/`Swap` events with a compact binary
//!   codec;
//! * [`agents`] — random traders and liquidity providers that perturb
//!   reserves between blocks, regenerating arbitrage opportunities.
//!
//! Determinism: equal seeds and equal transaction orderings produce
//! identical state digests.
//!
//! # Quickstart
//!
//! ```
//! use arb_dexsim::chain::Chain;
//! use arb_dexsim::units::to_raw;
//! use arb_dexsim::tx::Transaction;
//! use arb_amm::{fee::FeeRate, token::TokenId};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut chain = Chain::new();
//! let (x, y) = (TokenId::new(0), TokenId::new(1));
//! let pool = chain.add_pool(x, y, to_raw(1000.0), to_raw(2000.0), FeeRate::UNISWAP_V2)?;
//! let alice = chain.create_account();
//! chain.mint(alice, x, to_raw(10.0));
//! chain.submit(Transaction::Swap {
//!     account: alice,
//!     pool,
//!     token_in: x,
//!     amount_in: to_raw(10.0),
//!     min_out: 0,
//! });
//! let block = chain.mine_block();
//! assert!(block.receipts[0].success);
//! # Ok(())
//! # }
//! ```

pub mod agents;
pub mod chain;
pub mod error;
pub mod events;
pub mod executor;
pub mod state;
pub mod tx;
pub mod units;

pub use chain::{Block, Chain, EventCursor, EventSink, Receipt, SharedEventSink};
pub use error::TxError;
pub use events::Event;
pub use state::{AccountId, ChainState, OnChainPool};
pub use tx::Transaction;
