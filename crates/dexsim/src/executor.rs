//! Journaled transaction execution with full revert semantics.
//!
//! Every state mutation is recorded in an undo journal before it happens;
//! if any later step of the same transaction fails, the journal unwinds in
//! reverse order and the state is exactly as before — the simulator's
//! equivalent of an EVM revert. This is what makes
//! [`Transaction::FlashBundle`] atomic and risk-free in the paper's sense.

use std::collections::HashMap;

use arb_amm::exact::RawPool;
use arb_amm::pool::PoolId;
use arb_amm::token::TokenId;

use crate::error::TxError;
use crate::events::Event;
use crate::state::{AccountId, ChainState};
use crate::tx::{BundleStep, Transaction};

/// One reversible state mutation.
enum Undo {
    Balance {
        account: AccountId,
        token: TokenId,
        prev: u128,
    },
    PoolRaw {
        pool: PoolId,
        prev: RawPool,
    },
    Shares {
        account: AccountId,
        pool: PoolId,
        prev: u128,
    },
    TotalShares {
        pool: PoolId,
        prev: u128,
    },
}

/// Executes a transaction; on error the state is untouched.
///
/// Returns the events emitted on success.
///
/// # Errors
///
/// Any [`TxError`] is a revert reason; the caller may record it in a
/// receipt. State is rolled back before returning.
pub fn execute(state: &mut ChainState, tx: &Transaction) -> Result<Vec<Event>, TxError> {
    let mut journal: Vec<Undo> = Vec::new();
    let mut events: Vec<Event> = Vec::new();
    let result = run(state, tx, &mut journal, &mut events);
    match result {
        Ok(()) => Ok(events),
        Err(e) => {
            for undo in journal.into_iter().rev() {
                apply_undo(state, undo);
            }
            Err(e)
        }
    }
}

fn apply_undo(state: &mut ChainState, undo: Undo) {
    match undo {
        Undo::Balance {
            account,
            token,
            prev,
        } => state.set_balance(account, token, prev),
        Undo::PoolRaw { pool, prev } => state.set_pool_raw(pool, prev),
        Undo::Shares {
            account,
            pool,
            prev,
        } => state.set_shares(account, pool, prev),
        Undo::TotalShares { pool, prev } => state.set_total_shares(pool, prev),
    }
}

fn journal_balance(
    state: &ChainState,
    journal: &mut Vec<Undo>,
    account: AccountId,
    token: TokenId,
) {
    journal.push(Undo::Balance {
        account,
        token,
        prev: state.balance(account, token),
    });
}

fn run(
    state: &mut ChainState,
    tx: &Transaction,
    journal: &mut Vec<Undo>,
    events: &mut Vec<Event>,
) -> Result<(), TxError> {
    if !state.account_exists(tx.sender()) {
        return Err(TxError::UnknownAccount);
    }
    match tx {
        Transaction::Swap {
            account,
            pool,
            token_in,
            amount_in,
            min_out,
        } => {
            let out = swap(
                state, journal, events, *account, *pool, *token_in, *amount_in,
            )?;
            if out < *min_out {
                return Err(TxError::SlippageExceeded);
            }
            Ok(())
        }
        Transaction::AddLiquidity {
            account,
            pool,
            amount_a,
            amount_b,
        } => add_liquidity(
            state, journal, events, *account, *pool, *amount_a, *amount_b,
        ),
        Transaction::RemoveLiquidity {
            account,
            pool,
            shares,
        } => remove_liquidity(state, journal, events, *account, *pool, *shares),
        Transaction::Transfer {
            from,
            to,
            token,
            amount,
        } => {
            if !state.account_exists(*to) {
                return Err(TxError::UnknownAccount);
            }
            if *amount == 0 {
                return Err(TxError::ZeroAmount);
            }
            journal_balance(state, journal, *from, *token);
            state.debit(*from, *token, *amount)?;
            journal_balance(state, journal, *to, *token);
            state.credit(*to, *token, *amount);
            Ok(())
        }
        Transaction::FlashBundle { account, steps } => {
            flash_bundle(state, journal, events, *account, steps)
        }
    }
}

/// A balance-settled swap: debit input, trade, credit output.
fn swap(
    state: &mut ChainState,
    journal: &mut Vec<Undo>,
    events: &mut Vec<Event>,
    account: AccountId,
    pool_id: PoolId,
    token_in: TokenId,
    amount_in: u128,
) -> Result<u128, TxError> {
    if amount_in == 0 {
        return Err(TxError::ZeroAmount);
    }
    journal_balance(state, journal, account, token_in);
    state.debit(account, token_in, amount_in)?;
    let (token_out, out) = pool_swap(state, journal, events, pool_id, token_in, amount_in)?;
    journal_balance(state, journal, account, token_out);
    state.credit(account, token_out, out);
    Ok(out)
}

/// Mutates only the pool (no balance settlement) — shared by swaps and
/// flash-bundle steps.
fn pool_swap(
    state: &mut ChainState,
    journal: &mut Vec<Undo>,
    events: &mut Vec<Event>,
    pool_id: PoolId,
    token_in: TokenId,
    amount_in: u128,
) -> Result<(TokenId, u128), TxError> {
    let pool = state.pool(pool_id)?;
    let (a_to_b, token_out) = if token_in == pool.token_a() {
        (true, pool.token_b())
    } else if token_in == pool.token_b() {
        (false, pool.token_a())
    } else {
        return Err(TxError::Amm(arb_amm::AmmError::TokenNotInPool));
    };
    let prev = *pool.raw();
    let mut raw = prev;
    let out = raw.execute(a_to_b, amount_in)?;
    journal.push(Undo::PoolRaw {
        pool: pool_id,
        prev,
    });
    state.set_pool_raw(pool_id, raw);
    events.push(Event::Swap {
        pool: pool_id,
        token_in,
        amount_in,
        amount_out: out,
    });
    events.push(Event::Sync {
        pool: pool_id,
        reserve_a: raw.reserve_a(),
        reserve_b: raw.reserve_b(),
    });
    Ok((token_out, out))
}

fn add_liquidity(
    state: &mut ChainState,
    journal: &mut Vec<Undo>,
    events: &mut Vec<Event>,
    account: AccountId,
    pool_id: PoolId,
    amount_a: u128,
    amount_b: u128,
) -> Result<(), TxError> {
    if amount_a == 0 || amount_b == 0 {
        return Err(TxError::ZeroAmount);
    }
    let pool = state.pool(pool_id)?;
    let (ra, rb) = (pool.raw().reserve_a(), pool.raw().reserve_b());
    let (token_a, token_b) = (pool.token_a(), pool.token_b());
    let total = pool.total_shares();
    let fee = pool.raw().fee();

    // Largest ratio-preserving deposit within the desired maxima
    // (Uniswap V2 router `addLiquidity` semantics).
    let b_for_a = amount_a.saturating_mul(rb) / ra;
    let (dep_a, dep_b) = if b_for_a <= amount_b && b_for_a > 0 {
        (amount_a, b_for_a)
    } else {
        (amount_b.saturating_mul(ra) / rb, amount_b)
    };
    if dep_a == 0 || dep_b == 0 {
        return Err(TxError::ZeroAmount);
    }
    let minted = (dep_a.saturating_mul(total) / ra).min(dep_b.saturating_mul(total) / rb);
    if minted == 0 {
        return Err(TxError::ZeroAmount);
    }

    journal_balance(state, journal, account, token_a);
    state.debit(account, token_a, dep_a)?;
    journal_balance(state, journal, account, token_b);
    state.debit(account, token_b, dep_b)?;

    journal.push(Undo::PoolRaw {
        pool: pool_id,
        prev: *state.pool(pool_id)?.raw(),
    });
    state.set_pool_raw(pool_id, RawPool::new(ra + dep_a, rb + dep_b, fee)?);

    journal.push(Undo::TotalShares {
        pool: pool_id,
        prev: total,
    });
    state.set_total_shares(pool_id, total + minted);

    journal.push(Undo::Shares {
        account,
        pool: pool_id,
        prev: state.shares(account, pool_id),
    });
    state.set_shares(account, pool_id, state.shares(account, pool_id) + minted);

    events.push(Event::Mint {
        pool: pool_id,
        account,
        shares: minted,
    });
    events.push(Event::Sync {
        pool: pool_id,
        reserve_a: ra + dep_a,
        reserve_b: rb + dep_b,
    });
    Ok(())
}

fn remove_liquidity(
    state: &mut ChainState,
    journal: &mut Vec<Undo>,
    events: &mut Vec<Event>,
    account: AccountId,
    pool_id: PoolId,
    shares: u128,
) -> Result<(), TxError> {
    if shares == 0 {
        return Err(TxError::ZeroAmount);
    }
    let held = state.shares(account, pool_id);
    if held < shares {
        return Err(TxError::InsufficientShares);
    }
    let pool = state.pool(pool_id)?;
    let (ra, rb) = (pool.raw().reserve_a(), pool.raw().reserve_b());
    let (token_a, token_b) = (pool.token_a(), pool.token_b());
    let total = pool.total_shares();
    let fee = pool.raw().fee();

    let out_a = shares.saturating_mul(ra) / total;
    let out_b = shares.saturating_mul(rb) / total;
    if out_a == 0 || out_b == 0 {
        return Err(TxError::ZeroAmount);
    }
    // A pool can never be fully drained in the simulator.
    if out_a >= ra || out_b >= rb {
        return Err(TxError::Amm(arb_amm::AmmError::InsufficientLiquidity));
    }

    journal.push(Undo::Shares {
        account,
        pool: pool_id,
        prev: held,
    });
    state.set_shares(account, pool_id, held - shares);
    journal.push(Undo::TotalShares {
        pool: pool_id,
        prev: total,
    });
    state.set_total_shares(pool_id, total - shares);
    journal.push(Undo::PoolRaw {
        pool: pool_id,
        prev: *state.pool(pool_id)?.raw(),
    });
    state.set_pool_raw(pool_id, RawPool::new(ra - out_a, rb - out_b, fee)?);

    journal_balance(state, journal, account, token_a);
    state.credit(account, token_a, out_a);
    journal_balance(state, journal, account, token_b);
    state.credit(account, token_b, out_b);

    events.push(Event::Burn {
        pool: pool_id,
        account,
        shares,
    });
    events.push(Event::Sync {
        pool: pool_id,
        reserve_a: ra - out_a,
        reserve_b: rb - out_b,
    });
    Ok(())
}

/// Flash-loan bundle: swaps execute against pools while per-token deltas
/// accumulate off-balance; settlement applies deltas to the account and
/// reverts if any token would go negative.
fn flash_bundle(
    state: &mut ChainState,
    journal: &mut Vec<Undo>,
    events: &mut Vec<Event>,
    account: AccountId,
    steps: &[BundleStep],
) -> Result<(), TxError> {
    if steps.is_empty() {
        return Err(TxError::ZeroAmount);
    }
    let mut deltas: HashMap<TokenId, i128> = HashMap::new();
    for step in steps {
        if step.amount_in == 0 {
            return Err(TxError::ZeroAmount);
        }
        let (token_out, out) = pool_swap(
            state,
            journal,
            events,
            step.pool,
            step.token_in,
            step.amount_in,
        )?;
        *deltas.entry(step.token_in).or_insert(0) -= step.amount_in as i128;
        *deltas.entry(token_out).or_insert(0) += out as i128;
    }
    // Settlement: deterministic order for reproducible receipts.
    let mut tokens: Vec<TokenId> = deltas.keys().copied().collect();
    tokens.sort_unstable();
    for token in tokens {
        let delta = deltas[&token];
        if delta < 0 {
            let owed = delta.unsigned_abs();
            if state.balance(account, token) < owed {
                return Err(TxError::BundleInsolvent);
            }
            journal_balance(state, journal, account, token);
            state.debit(account, token, owed)?;
        } else if delta > 0 {
            journal_balance(state, journal, account, token);
            state.credit(account, token, delta as u128);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::to_raw;
    use arb_amm::fee::FeeRate;

    fn t(i: u32) -> TokenId {
        TokenId::new(i)
    }

    struct Fixture {
        state: ChainState,
        alice: AccountId,
        pool: PoolId,
    }

    fn fixture() -> Fixture {
        let mut state = ChainState::new();
        let pool = state
            .add_pool(
                t(0),
                t(1),
                to_raw(1_000.0),
                to_raw(2_000.0),
                FeeRate::UNISWAP_V2,
            )
            .unwrap();
        let alice = state.create_account();
        state.mint(alice, t(0), to_raw(100.0));
        state.mint(alice, t(1), to_raw(100.0));
        Fixture { state, alice, pool }
    }

    #[test]
    fn swap_settles_balances_and_reserves() {
        let mut f = fixture();
        let events = execute(
            &mut f.state,
            &Transaction::Swap {
                account: f.alice,
                pool: f.pool,
                token_in: t(0),
                amount_in: to_raw(10.0),
                min_out: 0,
            },
        )
        .unwrap();
        assert_eq!(events.len(), 2, "Swap + Sync");
        assert_eq!(f.state.balance(f.alice, t(0)), to_raw(90.0));
        let got = f.state.balance(f.alice, t(1)) - to_raw(100.0);
        assert!(got > 0);
        let pool = f.state.pool(f.pool).unwrap();
        assert_eq!(pool.raw().reserve_a(), to_raw(1_010.0));
        assert_eq!(pool.raw().reserve_b(), to_raw(2_000.0) - got);
    }

    #[test]
    fn slippage_bound_reverts_cleanly() {
        let mut f = fixture();
        let digest = f.state.digest();
        let balance = f.state.balance(f.alice, t(0));
        let err = execute(
            &mut f.state,
            &Transaction::Swap {
                account: f.alice,
                pool: f.pool,
                token_in: t(0),
                amount_in: to_raw(10.0),
                min_out: u128::MAX,
            },
        )
        .unwrap_err();
        assert_eq!(err, TxError::SlippageExceeded);
        assert_eq!(f.state.digest(), digest, "reserves rolled back");
        assert_eq!(
            f.state.balance(f.alice, t(0)),
            balance,
            "balance rolled back"
        );
    }

    #[test]
    fn insufficient_balance_reverts() {
        let mut f = fixture();
        let err = execute(
            &mut f.state,
            &Transaction::Swap {
                account: f.alice,
                pool: f.pool,
                token_in: t(0),
                amount_in: to_raw(1e9),
                min_out: 0,
            },
        )
        .unwrap_err();
        assert_eq!(err, TxError::InsufficientBalance);
    }

    #[test]
    fn unknown_account_rejected() {
        let mut f = fixture();
        let ghost = {
            let mut other = ChainState::new();
            other.create_account();
            other.create_account();
            other.create_account() // id 2, beyond f.state's account count
        };
        let err = execute(
            &mut f.state,
            &Transaction::Swap {
                account: ghost,
                pool: f.pool,
                token_in: t(0),
                amount_in: 1,
                min_out: 0,
            },
        )
        .unwrap_err();
        assert_eq!(err, TxError::UnknownAccount);
    }

    #[test]
    fn add_then_remove_liquidity_round_trips() {
        let mut f = fixture();
        execute(
            &mut f.state,
            &Transaction::AddLiquidity {
                account: f.alice,
                pool: f.pool,
                amount_a: to_raw(10.0),
                amount_b: to_raw(100.0), // more than needed; ratio clips to 20
            },
        )
        .unwrap();
        let shares = f.state.shares(f.alice, f.pool);
        assert!(shares > 0);
        // Ratio preserved: deposited 10 A and 20 B.
        assert_eq!(f.state.balance(f.alice, t(0)), to_raw(90.0));
        assert_eq!(f.state.balance(f.alice, t(1)), to_raw(80.0));

        execute(
            &mut f.state,
            &Transaction::RemoveLiquidity {
                account: f.alice,
                pool: f.pool,
                shares,
            },
        )
        .unwrap();
        // Back within rounding dust of the original balances.
        assert!(f.state.balance(f.alice, t(0)) >= to_raw(100.0) - 2);
        assert!(f.state.balance(f.alice, t(1)) >= to_raw(100.0) - 2);
        assert_eq!(f.state.shares(f.alice, f.pool), 0);
    }

    #[test]
    fn remove_more_shares_than_held_fails() {
        let mut f = fixture();
        let err = execute(
            &mut f.state,
            &Transaction::RemoveLiquidity {
                account: f.alice,
                pool: f.pool,
                shares: 1,
            },
        )
        .unwrap_err();
        assert_eq!(err, TxError::InsufficientShares);
    }

    #[test]
    fn transfer_moves_balance() {
        let mut f = fixture();
        let bob = f.state.create_account();
        execute(
            &mut f.state,
            &Transaction::Transfer {
                from: f.alice,
                to: bob,
                token: t(0),
                amount: to_raw(30.0),
            },
        )
        .unwrap();
        assert_eq!(f.state.balance(f.alice, t(0)), to_raw(70.0));
        assert_eq!(f.state.balance(bob, t(0)), to_raw(30.0));
    }

    /// Three-pool loop with an injected mispricing; the bundle extracts
    /// profit starting from a *zero* balance in the input token.
    #[test]
    fn flash_bundle_extracts_loop_profit_without_capital() {
        let mut state = ChainState::new();
        let fee = FeeRate::UNISWAP_V2;
        // The paper's example scaled up: rates 2, 2/3, 2 ⇒ round trip ≈ 2.64.
        let p0 = state
            .add_pool(t(0), t(1), to_raw(100.0), to_raw(200.0), fee)
            .unwrap();
        let p1 = state
            .add_pool(t(1), t(2), to_raw(300.0), to_raw(200.0), fee)
            .unwrap();
        let p2 = state
            .add_pool(t(2), t(0), to_raw(200.0), to_raw(400.0), fee)
            .unwrap();
        let arb = state.create_account();
        // No starting capital at all.
        assert_eq!(state.balance(arb, t(0)), 0);

        // Paper-optimal input ≈ 27 X; chain the exact integer outputs.
        let in0 = to_raw(27.0);
        let out0 = state.pool(p0).unwrap().raw().quote(true, in0).unwrap();
        let out1 = state.pool(p1).unwrap().raw().quote(true, out0).unwrap();
        let steps = vec![
            BundleStep {
                pool: p0,
                token_in: t(0),
                amount_in: in0,
            },
            BundleStep {
                pool: p1,
                token_in: t(1),
                amount_in: out0,
            },
            BundleStep {
                pool: p2,
                token_in: t(2),
                amount_in: out1,
            },
        ];
        execute(
            &mut state,
            &Transaction::FlashBundle {
                account: arb,
                steps,
            },
        )
        .unwrap();
        let profit = state.balance(arb, t(0));
        // Paper: ~16.8 token X of profit.
        assert!(
            profit > to_raw(16.0) && profit < to_raw(17.5),
            "profit = {profit}"
        );
    }

    #[test]
    fn insolvent_bundle_reverts_every_pool() {
        let mut state = ChainState::new();
        let fee = FeeRate::UNISWAP_V2;
        // Balanced pools: any loop loses to fees.
        let p0 = state
            .add_pool(t(0), t(1), to_raw(100.0), to_raw(100.0), fee)
            .unwrap();
        let p1 = state
            .add_pool(t(1), t(0), to_raw(100.0), to_raw(100.0), fee)
            .unwrap();
        let arb = state.create_account();
        let digest = state.digest();
        let err = execute(
            &mut state,
            &Transaction::FlashBundle {
                account: arb,
                steps: vec![
                    BundleStep {
                        pool: p0,
                        token_in: t(0),
                        amount_in: to_raw(10.0),
                    },
                    BundleStep {
                        pool: p1,
                        token_in: t(1),
                        amount_in: to_raw(9.0),
                    },
                ],
            },
        )
        .unwrap_err();
        assert_eq!(err, TxError::BundleInsolvent);
        assert_eq!(state.digest(), digest, "all pool mutations rolled back");
    }

    #[test]
    fn empty_bundle_rejected() {
        let mut f = fixture();
        let err = execute(
            &mut f.state,
            &Transaction::FlashBundle {
                account: f.alice,
                steps: vec![],
            },
        )
        .unwrap_err();
        assert_eq!(err, TxError::ZeroAmount);
    }
}
