//! On-chain state: pools, balances, LP shares.

use std::collections::HashMap;

use arb_amm::exact::RawPool;
use arb_amm::fee::FeeRate;
use arb_amm::pool::{Pool, PoolId};
use arb_amm::token::TokenId;

use crate::error::TxError;
use crate::units::to_display;

/// An account on the simulated chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AccountId(u32);

impl AccountId {
    /// The raw index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Rebuilds an id from its wire representation (event codec only).
    pub(crate) const fn from_wire(index: u32) -> AccountId {
        AccountId(index)
    }
}

impl std::fmt::Display for AccountId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "A{}", self.0)
    }
}

/// A deployed pool: the token pair plus exact integer reserves and the LP
/// share supply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OnChainPool {
    token_a: TokenId,
    token_b: TokenId,
    raw: RawPool,
    total_shares: u128,
}

impl OnChainPool {
    /// First token of the pair.
    pub fn token_a(&self) -> TokenId {
        self.token_a
    }

    /// Second token of the pair.
    pub fn token_b(&self) -> TokenId {
        self.token_b
    }

    /// The integer-exact reserves.
    pub fn raw(&self) -> &RawPool {
        &self.raw
    }

    /// Total LP shares outstanding.
    pub fn total_shares(&self) -> u128 {
        self.total_shares
    }

    /// An analysis-level (f64 display units) view of this pool, preserving
    /// token ids and fee — the bridge to the strategy layer.
    ///
    /// # Errors
    ///
    /// Forwards construction errors for degenerate (drained) reserves.
    pub fn to_analysis_pool(&self) -> Result<Pool, arb_amm::AmmError> {
        Pool::new(
            self.token_a,
            self.token_b,
            to_display(self.raw.reserve_a()),
            to_display(self.raw.reserve_b()),
            self.raw.fee(),
        )
    }
}

/// The complete mutable chain state.
#[derive(Debug, Clone, Default)]
pub struct ChainState {
    pools: Vec<OnChainPool>,
    balances: HashMap<(AccountId, TokenId), u128>,
    shares: HashMap<(AccountId, PoolId), u128>,
    next_account: u32,
}

impl ChainState {
    /// Creates empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Deploys a pool with initial reserves; the initial LP shares
    /// (geometric mean of reserves, Uniswap V2 style) are credited to no
    /// one (burned), keeping the setup minimal.
    ///
    /// # Errors
    ///
    /// Forwards AMM validation (zero reserves) as [`TxError::Amm`].
    pub fn add_pool(
        &mut self,
        token_a: TokenId,
        token_b: TokenId,
        reserve_a: u128,
        reserve_b: u128,
        fee: FeeRate,
    ) -> Result<PoolId, TxError> {
        if token_a == token_b {
            return Err(TxError::Amm(arb_amm::AmmError::SameToken));
        }
        let raw = RawPool::new(reserve_a, reserve_b, fee)?;
        let id = PoolId::new(self.pools.len() as u32);
        self.pools.push(OnChainPool {
            token_a,
            token_b,
            raw,
            total_shares: isqrt(reserve_a.saturating_mul(reserve_b)),
        });
        Ok(id)
    }

    /// Number of deployed pools.
    pub fn pool_count(&self) -> usize {
        self.pools.len()
    }

    /// All pools, indexable by [`PoolId::index`].
    pub fn pools(&self) -> &[OnChainPool] {
        &self.pools
    }

    /// The pool behind `id`.
    ///
    /// # Errors
    ///
    /// Returns [`TxError::UnknownPool`] for out-of-range ids.
    pub fn pool(&self, id: PoolId) -> Result<&OnChainPool, TxError> {
        self.pools.get(id.index()).ok_or(TxError::UnknownPool)
    }

    pub(crate) fn set_pool_raw(&mut self, id: PoolId, raw: RawPool) {
        self.pools[id.index()].raw = raw;
    }

    pub(crate) fn set_total_shares(&mut self, id: PoolId, shares: u128) {
        self.pools[id.index()].total_shares = shares;
    }

    /// Registers a new externally-owned account.
    pub fn create_account(&mut self) -> AccountId {
        let id = AccountId(self.next_account);
        self.next_account += 1;
        id
    }

    /// Number of accounts created.
    pub fn account_count(&self) -> usize {
        self.next_account as usize
    }

    /// Whether `account` exists.
    pub fn account_exists(&self, account: AccountId) -> bool {
        account.0 < self.next_account
    }

    /// Token balance of an account (0 when never credited).
    pub fn balance(&self, account: AccountId, token: TokenId) -> u128 {
        self.balances.get(&(account, token)).copied().unwrap_or(0)
    }

    /// LP shares an account holds in a pool.
    pub fn shares(&self, account: AccountId, pool: PoolId) -> u128 {
        self.shares.get(&(account, pool)).copied().unwrap_or(0)
    }

    /// Faucet: credits `amount` of `token` to `account` (test/bootstrap
    /// helper, not a transaction).
    pub fn mint(&mut self, account: AccountId, token: TokenId, amount: u128) {
        *self.balances.entry((account, token)).or_insert(0) += amount;
    }

    pub(crate) fn credit(&mut self, account: AccountId, token: TokenId, amount: u128) {
        *self.balances.entry((account, token)).or_insert(0) += amount;
    }

    pub(crate) fn debit(
        &mut self,
        account: AccountId,
        token: TokenId,
        amount: u128,
    ) -> Result<(), TxError> {
        let entry = self.balances.entry((account, token)).or_insert(0);
        if *entry < amount {
            return Err(TxError::InsufficientBalance);
        }
        *entry -= amount;
        Ok(())
    }

    pub(crate) fn set_balance(&mut self, account: AccountId, token: TokenId, value: u128) {
        self.balances.insert((account, token), value);
    }

    pub(crate) fn set_shares(&mut self, account: AccountId, pool: PoolId, value: u128) {
        self.shares.insert((account, pool), value);
    }

    /// A deterministic digest of all pool reserves and share supplies —
    /// the simulator's "state root". Two runs with identical inputs
    /// produce identical digests.
    pub fn digest(&self) -> u64 {
        // FNV-1a over the reserve words.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |value: u128| {
            for byte in value.to_le_bytes() {
                hash ^= byte as u64;
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for pool in &self.pools {
            mix(pool.raw.reserve_a());
            mix(pool.raw.reserve_b());
            mix(pool.total_shares);
        }
        hash
    }
}

/// Integer square root (Newton's method on u128).
pub(crate) fn isqrt(value: u128) -> u128 {
    if value < 2 {
        return value;
    }
    let mut x = 1u128 << (value.ilog2() / 2 + 1);
    loop {
        let next = (x + value / x) / 2;
        if next >= x {
            return x;
        }
        x = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn t(i: u32) -> TokenId {
        TokenId::new(i)
    }

    #[test]
    fn pool_deployment_and_lookup() {
        let mut state = ChainState::new();
        let id = state
            .add_pool(t(0), t(1), 1_000_000, 2_000_000, FeeRate::UNISWAP_V2)
            .unwrap();
        assert_eq!(state.pool_count(), 1);
        let pool = state.pool(id).unwrap();
        assert_eq!(pool.raw().reserve_a(), 1_000_000);
        assert!(pool.total_shares() > 0);
        assert_eq!(
            state.pool(PoolId::new(9)).unwrap_err(),
            TxError::UnknownPool
        );
    }

    #[test]
    fn same_token_pool_rejected() {
        let mut state = ChainState::new();
        assert!(matches!(
            state.add_pool(t(0), t(0), 1, 1, FeeRate::UNISWAP_V2),
            Err(TxError::Amm(arb_amm::AmmError::SameToken))
        ));
    }

    #[test]
    fn balances_and_faucet() {
        let mut state = ChainState::new();
        let alice = state.create_account();
        assert_eq!(state.balance(alice, t(0)), 0);
        state.mint(alice, t(0), 500);
        assert_eq!(state.balance(alice, t(0)), 500);
        state.debit(alice, t(0), 200).unwrap();
        assert_eq!(state.balance(alice, t(0)), 300);
        assert_eq!(
            state.debit(alice, t(0), 301).unwrap_err(),
            TxError::InsufficientBalance
        );
    }

    #[test]
    fn digest_changes_with_state() {
        let mut state = ChainState::new();
        state
            .add_pool(t(0), t(1), 1_000, 2_000, FeeRate::UNISWAP_V2)
            .unwrap();
        let d0 = state.digest();
        state.set_pool_raw(
            PoolId::new(0),
            RawPool::new(1_001, 2_000, FeeRate::UNISWAP_V2).unwrap(),
        );
        assert_ne!(state.digest(), d0);
    }

    #[test]
    fn analysis_pool_bridge() {
        let mut state = ChainState::new();
        let id = state
            .add_pool(t(0), t(1), 100_000_000, 200_000_000, FeeRate::UNISWAP_V2)
            .unwrap();
        let pool = state.pool(id).unwrap().to_analysis_pool().unwrap();
        assert!((pool.reserve_a() - 100.0).abs() < 1e-9);
        assert!((pool.reserve_b() - 200.0).abs() < 1e-9);
    }

    proptest! {
        #[test]
        fn isqrt_is_exact_floor(v in 0u128..u64::MAX as u128) {
            let r = isqrt(v);
            prop_assert!(r * r <= v);
            prop_assert!((r + 1) * (r + 1) > v);
        }
    }
}
