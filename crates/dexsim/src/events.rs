//! Uniswap-style chain events with a compact binary codec.
//!
//! Real arbitrage monitors consume `Sync`/`Swap` event logs; the simulator
//! emits the same shape. Events encode to a tagged little-endian binary
//! frame via [`bytes`] so the log can be persisted or streamed compactly.

use arb_amm::pool::PoolId;
use arb_amm::token::TokenId;
use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::state::AccountId;

/// A chain event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Event {
    /// Reserve update after any pool mutation (Uniswap V2 `Sync`).
    Sync {
        /// Affected pool.
        pool: PoolId,
        /// New reserve of token A.
        reserve_a: u128,
        /// New reserve of token B.
        reserve_b: u128,
    },
    /// A swap executed (Uniswap V2 `Swap`).
    Swap {
        /// Pool traded against.
        pool: PoolId,
        /// Token paid in.
        token_in: TokenId,
        /// Raw input amount.
        amount_in: u128,
        /// Raw output amount.
        amount_out: u128,
    },
    /// LP shares minted.
    Mint {
        /// Pool.
        pool: PoolId,
        /// Receiving account.
        account: AccountId,
        /// Shares created.
        shares: u128,
    },
    /// LP shares burned.
    Burn {
        /// Pool.
        pool: PoolId,
        /// Burning account.
        account: AccountId,
        /// Shares destroyed.
        shares: u128,
    },
}

const TAG_SYNC: u8 = 1;
const TAG_SWAP: u8 = 2;
const TAG_MINT: u8 = 3;
const TAG_BURN: u8 = 4;

impl Event {
    /// Appends the binary encoding of this event to `buf`.
    pub fn encode(&self, buf: &mut BytesMut) {
        match *self {
            Event::Sync {
                pool,
                reserve_a,
                reserve_b,
            } => {
                buf.put_u8(TAG_SYNC);
                buf.put_u32_le(pool.index() as u32);
                buf.put_u128_le(reserve_a);
                buf.put_u128_le(reserve_b);
            }
            Event::Swap {
                pool,
                token_in,
                amount_in,
                amount_out,
            } => {
                buf.put_u8(TAG_SWAP);
                buf.put_u32_le(pool.index() as u32);
                buf.put_u32_le(token_in.index() as u32);
                buf.put_u128_le(amount_in);
                buf.put_u128_le(amount_out);
            }
            Event::Mint {
                pool,
                account,
                shares,
            } => {
                buf.put_u8(TAG_MINT);
                buf.put_u32_le(pool.index() as u32);
                buf.put_u32_le(account.index() as u32);
                buf.put_u128_le(shares);
            }
            Event::Burn {
                pool,
                account,
                shares,
            } => {
                buf.put_u8(TAG_BURN);
                buf.put_u32_le(pool.index() as u32);
                buf.put_u32_le(account.index() as u32);
                buf.put_u128_le(shares);
            }
        }
    }

    /// Decodes one event from the front of `buf`, advancing it.
    ///
    /// Returns `None` on an empty/truncated/unknown-tag frame.
    pub fn decode(buf: &mut Bytes) -> Option<Event> {
        if buf.is_empty() {
            return None;
        }
        let tag = buf.get_u8();
        match tag {
            TAG_SYNC => {
                if buf.remaining() < 4 + 32 {
                    return None;
                }
                Some(Event::Sync {
                    pool: PoolId::new(buf.get_u32_le()),
                    reserve_a: buf.get_u128_le(),
                    reserve_b: buf.get_u128_le(),
                })
            }
            TAG_SWAP => {
                if buf.remaining() < 8 + 32 {
                    return None;
                }
                Some(Event::Swap {
                    pool: PoolId::new(buf.get_u32_le()),
                    token_in: TokenId::new(buf.get_u32_le()),
                    amount_in: buf.get_u128_le(),
                    amount_out: buf.get_u128_le(),
                })
            }
            TAG_MINT | TAG_BURN => {
                if buf.remaining() < 8 + 16 {
                    return None;
                }
                let pool = PoolId::new(buf.get_u32_le());
                let account = account_from_index(buf.get_u32_le());
                let shares = buf.get_u128_le();
                Some(if tag == TAG_MINT {
                    Event::Mint {
                        pool,
                        account,
                        shares,
                    }
                } else {
                    Event::Burn {
                        pool,
                        account,
                        shares,
                    }
                })
            }
            _ => None,
        }
    }
}

// AccountId has no public u32 constructor by design; the event codec is
// the one place that rebuilds one from its wire index.
fn account_from_index(index: u32) -> AccountId {
    AccountId::from_wire(index)
}

/// An append-only encoded event log.
#[derive(Debug, Clone, Default)]
pub struct EventLog {
    buffer: BytesMut,
    count: usize,
}

impl EventLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event.
    pub fn push(&mut self, event: Event) {
        event.encode(&mut self.buffer);
        self.count += 1;
    }

    /// Number of events recorded.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Size of the encoded log in bytes.
    pub fn encoded_size(&self) -> usize {
        self.buffer.len()
    }

    /// Decodes the full log back into events.
    pub fn decode_all(&self) -> Vec<Event> {
        let mut bytes = Bytes::copy_from_slice(&self.buffer);
        let mut events = Vec::with_capacity(self.count);
        while let Some(e) = Event::decode(&mut bytes) {
            events.push(e);
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<Event> {
        let mut state = crate::state::ChainState::new();
        let account = state.create_account();
        vec![
            Event::Sync {
                pool: PoolId::new(3),
                reserve_a: u128::MAX - 5,
                reserve_b: 12345,
            },
            Event::Swap {
                pool: PoolId::new(0),
                token_in: TokenId::new(7),
                amount_in: 1,
                amount_out: 2,
            },
            Event::Mint {
                pool: PoolId::new(1),
                account,
                shares: 999,
            },
            Event::Burn {
                pool: PoolId::new(1),
                account,
                shares: 100,
            },
        ]
    }

    #[test]
    fn encode_decode_round_trip() {
        for event in sample_events() {
            let mut buf = BytesMut::new();
            event.encode(&mut buf);
            let mut bytes = buf.freeze();
            assert_eq!(Event::decode(&mut bytes), Some(event));
            assert!(bytes.is_empty(), "decoder must consume the frame exactly");
        }
    }

    #[test]
    fn log_round_trip_preserves_order() {
        let mut log = EventLog::new();
        let events = sample_events();
        for e in &events {
            log.push(*e);
        }
        assert_eq!(log.len(), events.len());
        assert_eq!(log.decode_all(), events);
    }

    #[test]
    fn truncated_frame_returns_none() {
        let mut buf = BytesMut::new();
        sample_events()[0].encode(&mut buf);
        let mut truncated = buf.freeze().slice(0..10);
        assert_eq!(Event::decode(&mut truncated), None);
    }

    #[test]
    fn unknown_tag_returns_none() {
        let mut bytes = Bytes::from_static(&[0xFFu8, 1, 2, 3]);
        assert_eq!(Event::decode(&mut bytes), None);
    }

    #[test]
    fn empty_log() {
        let log = EventLog::new();
        assert!(log.is_empty());
        assert_eq!(log.decode_all(), vec![]);
    }
}
