//! Uniswap-style chain events with a compact binary codec.
//!
//! Real arbitrage monitors consume `Sync`/`Swap` event logs; the simulator
//! emits the same shape. Events encode to a tagged little-endian binary
//! frame via [`bytes`] so the log can be persisted or streamed compactly.

use arb_amm::fee::FeeRate;
use arb_amm::pool::PoolId;
use arb_amm::token::TokenId;
use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::state::AccountId;

/// A chain event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Event {
    /// Reserve update after any pool mutation (Uniswap V2 `Sync`).
    Sync {
        /// Affected pool.
        pool: PoolId,
        /// New reserve of token A.
        reserve_a: u128,
        /// New reserve of token B.
        reserve_b: u128,
    },
    /// A swap executed (Uniswap V2 `Swap`).
    Swap {
        /// Pool traded against.
        pool: PoolId,
        /// Token paid in.
        token_in: TokenId,
        /// Raw input amount.
        amount_in: u128,
        /// Raw output amount.
        amount_out: u128,
    },
    /// LP shares minted.
    Mint {
        /// Pool.
        pool: PoolId,
        /// Receiving account.
        account: AccountId,
        /// Shares created.
        shares: u128,
    },
    /// LP shares burned.
    Burn {
        /// Pool.
        pool: PoolId,
        /// Burning account.
        account: AccountId,
        /// Shares destroyed.
        shares: u128,
    },
    /// A pool was deployed (Uniswap factory `PairCreated` + initial
    /// reserves). Emitted so streaming consumers can extend their graph
    /// without re-snapshotting the chain.
    PoolCreated {
        /// The id assigned to the new pool.
        pool: PoolId,
        /// First token of the pair.
        token_a: TokenId,
        /// Second token of the pair.
        token_b: TokenId,
        /// Initial reserve of token A.
        reserve_a: u128,
        /// Initial reserve of token B.
        reserve_b: u128,
        /// The pool's swap fee.
        fee: FeeRate,
    },
    /// A CEX feed price update, as carried on the multiplexed ingest
    /// stream (`arb-ingest`). The chain itself never emits this event;
    /// it exists so one journaled stream is self-contained — recovery
    /// can rebuild the price table from the journal alone instead of
    /// needing a live feed. The price travels as raw `f64` bits so the
    /// event stays `Eq` and the value round-trips bit-exactly.
    FeedPrice {
        /// The priced token.
        token: TokenId,
        /// USD price, as [`f64::to_bits`].
        price_bits: u64,
    },
}

const TAG_SYNC: u8 = 1;
const TAG_SWAP: u8 = 2;
const TAG_MINT: u8 = 3;
const TAG_BURN: u8 = 4;
const TAG_POOL_CREATED: u8 = 5;
const TAG_FEED_PRICE: u8 = 6;

impl Event {
    /// Appends the binary encoding of this event to `buf`.
    pub fn encode(&self, buf: &mut BytesMut) {
        match *self {
            Event::Sync {
                pool,
                reserve_a,
                reserve_b,
            } => {
                buf.put_u8(TAG_SYNC);
                buf.put_u32_le(pool.index() as u32);
                buf.put_u128_le(reserve_a);
                buf.put_u128_le(reserve_b);
            }
            Event::Swap {
                pool,
                token_in,
                amount_in,
                amount_out,
            } => {
                buf.put_u8(TAG_SWAP);
                buf.put_u32_le(pool.index() as u32);
                buf.put_u32_le(token_in.index() as u32);
                buf.put_u128_le(amount_in);
                buf.put_u128_le(amount_out);
            }
            Event::Mint {
                pool,
                account,
                shares,
            } => {
                buf.put_u8(TAG_MINT);
                buf.put_u32_le(pool.index() as u32);
                buf.put_u32_le(account.index() as u32);
                buf.put_u128_le(shares);
            }
            Event::Burn {
                pool,
                account,
                shares,
            } => {
                buf.put_u8(TAG_BURN);
                buf.put_u32_le(pool.index() as u32);
                buf.put_u32_le(account.index() as u32);
                buf.put_u128_le(shares);
            }
            Event::PoolCreated {
                pool,
                token_a,
                token_b,
                reserve_a,
                reserve_b,
                fee,
            } => {
                buf.put_u8(TAG_POOL_CREATED);
                buf.put_u32_le(pool.index() as u32);
                buf.put_u32_le(token_a.index() as u32);
                buf.put_u32_le(token_b.index() as u32);
                buf.put_u128_le(reserve_a);
                buf.put_u128_le(reserve_b);
                buf.put_u32_le(fee.ppm());
            }
            Event::FeedPrice { token, price_bits } => {
                buf.put_u8(TAG_FEED_PRICE);
                buf.put_u32_le(token.index() as u32);
                buf.put_u64_le(price_bits);
            }
        }
    }

    /// A [`Event::FeedPrice`] for `token` at `price` USD.
    pub fn feed_price(token: TokenId, price: f64) -> Event {
        Event::FeedPrice {
            token,
            price_bits: price.to_bits(),
        }
    }

    /// The `(token, price)` of a [`Event::FeedPrice`], decoded back to
    /// `f64`; `None` for every other variant.
    pub fn as_feed_price(&self) -> Option<(TokenId, f64)> {
        match *self {
            Event::FeedPrice { token, price_bits } => Some((token, f64::from_bits(price_bits))),
            _ => None,
        }
    }

    /// Decodes one event from the front of `buf`, advancing it.
    ///
    /// Returns `None` on an empty/truncated/unknown-tag frame.
    pub fn decode(buf: &mut Bytes) -> Option<Event> {
        if buf.is_empty() {
            return None;
        }
        let tag = buf.get_u8();
        match tag {
            TAG_SYNC => {
                if buf.remaining() < 4 + 32 {
                    return None;
                }
                Some(Event::Sync {
                    pool: PoolId::new(buf.get_u32_le()),
                    reserve_a: buf.get_u128_le(),
                    reserve_b: buf.get_u128_le(),
                })
            }
            TAG_SWAP => {
                if buf.remaining() < 8 + 32 {
                    return None;
                }
                Some(Event::Swap {
                    pool: PoolId::new(buf.get_u32_le()),
                    token_in: TokenId::new(buf.get_u32_le()),
                    amount_in: buf.get_u128_le(),
                    amount_out: buf.get_u128_le(),
                })
            }
            TAG_POOL_CREATED => {
                if buf.remaining() < 12 + 32 + 4 {
                    return None;
                }
                let pool = PoolId::new(buf.get_u32_le());
                let token_a = TokenId::new(buf.get_u32_le());
                let token_b = TokenId::new(buf.get_u32_le());
                let reserve_a = buf.get_u128_le();
                let reserve_b = buf.get_u128_le();
                // A fee ≥ 100% can never have been encoded from a valid
                // FeeRate; treat it like an unknown tag.
                let fee = FeeRate::from_ppm(buf.get_u32_le()).ok()?;
                Some(Event::PoolCreated {
                    pool,
                    token_a,
                    token_b,
                    reserve_a,
                    reserve_b,
                    fee,
                })
            }
            TAG_FEED_PRICE => {
                if buf.remaining() < 4 + 8 {
                    return None;
                }
                Some(Event::FeedPrice {
                    token: TokenId::new(buf.get_u32_le()),
                    price_bits: buf.get_u64_le(),
                })
            }
            TAG_MINT | TAG_BURN => {
                if buf.remaining() < 8 + 16 {
                    return None;
                }
                let pool = PoolId::new(buf.get_u32_le());
                let account = account_from_index(buf.get_u32_le());
                let shares = buf.get_u128_le();
                Some(if tag == TAG_MINT {
                    Event::Mint {
                        pool,
                        account,
                        shares,
                    }
                } else {
                    Event::Burn {
                        pool,
                        account,
                        shares,
                    }
                })
            }
            _ => None,
        }
    }
}

// AccountId has no public u32 constructor by design; the event codec is
// the one place that rebuilds one from its wire index.
fn account_from_index(index: u32) -> AccountId {
    AccountId::from_wire(index)
}

/// An append-only encoded event log with per-event offsets, so consumers
/// can resume decoding from any sequence number (the drain API in
/// [`crate::chain::Chain`] builds on this).
#[derive(Debug, Clone, Default)]
pub struct EventLog {
    buffer: BytesMut,
    /// Byte offset where each event's frame starts.
    offsets: Vec<usize>,
}

impl EventLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event.
    pub fn push(&mut self, event: Event) {
        self.offsets.push(self.buffer.len());
        event.encode(&mut self.buffer);
    }

    /// Number of events recorded.
    pub fn len(&self) -> usize {
        self.offsets.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.offsets.is_empty()
    }

    /// Size of the encoded log in bytes.
    pub fn encoded_size(&self) -> usize {
        self.buffer.len()
    }

    /// Decodes the single event at sequence number `offset` (0-based).
    /// Returns `None` when `offset` is at or past the end — callers
    /// replaying the log (the `arb-journal` backfill path, tests) get a
    /// bounds-checked lookup instead of indexing raw vectors.
    pub fn get(&self, offset: usize) -> Option<Event> {
        let start = *self.offsets.get(offset)?;
        let end = self
            .offsets
            .get(offset + 1)
            .copied()
            .unwrap_or(self.buffer.len());
        let mut bytes = Bytes::copy_from_slice(&self.buffer[start..end]);
        Event::decode(&mut bytes)
    }

    /// Decodes the full log back into events.
    pub fn decode_all(&self) -> Vec<Event> {
        self.decode_from(0)
    }

    /// Decodes events starting at sequence number `from` (0-based).
    /// Returns an empty vector when `from` is at or past the end.
    pub fn decode_from(&self, from: usize) -> Vec<Event> {
        if from >= self.offsets.len() {
            return Vec::new();
        }
        let mut bytes = Bytes::copy_from_slice(&self.buffer[self.offsets[from]..]);
        let mut events = Vec::with_capacity(self.offsets.len() - from);
        while let Some(e) = Event::decode(&mut bytes) {
            events.push(e);
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_events() -> Vec<Event> {
        let mut state = crate::state::ChainState::new();
        let account = state.create_account();
        vec![
            Event::Sync {
                pool: PoolId::new(3),
                reserve_a: u128::MAX - 5,
                reserve_b: 12345,
            },
            Event::Swap {
                pool: PoolId::new(0),
                token_in: TokenId::new(7),
                amount_in: 1,
                amount_out: 2,
            },
            Event::Mint {
                pool: PoolId::new(1),
                account,
                shares: 999,
            },
            Event::Burn {
                pool: PoolId::new(1),
                account,
                shares: 100,
            },
            Event::PoolCreated {
                pool: PoolId::new(4),
                token_a: TokenId::new(0),
                token_b: TokenId::new(9),
                reserve_a: u128::MAX,
                reserve_b: 1,
                fee: FeeRate::UNISWAP_V2,
            },
            Event::feed_price(TokenId::new(2), 1234.5),
        ]
    }

    #[test]
    fn feed_price_round_trips_bit_exactly() {
        // Non-finite and negative prices are representable on the wire
        // (the consumer's PriceTable::set is what rejects them); the
        // codec must carry the exact bits either way.
        for price in [0.0, -1.5, f64::NAN, f64::INFINITY, 1e-308, 20.25] {
            let event = Event::feed_price(TokenId::new(7), price);
            let mut buf = BytesMut::new();
            event.encode(&mut buf);
            let mut bytes = buf.freeze();
            let decoded = Event::decode(&mut bytes).expect("decodes");
            assert_eq!(decoded, event);
            let (token, got) = decoded.as_feed_price().expect("is a feed price");
            assert_eq!(token, TokenId::new(7));
            assert_eq!(got.to_bits(), price.to_bits(), "bit-exact, NaN included");
        }
        assert_eq!(sample_events()[0].as_feed_price(), None);
    }

    #[test]
    fn encode_decode_round_trip() {
        for event in sample_events() {
            let mut buf = BytesMut::new();
            event.encode(&mut buf);
            let mut bytes = buf.freeze();
            assert_eq!(Event::decode(&mut bytes), Some(event));
            assert!(bytes.is_empty(), "decoder must consume the frame exactly");
        }
    }

    #[test]
    fn log_round_trip_preserves_order() {
        let mut log = EventLog::new();
        let events = sample_events();
        for e in &events {
            log.push(*e);
        }
        assert_eq!(log.len(), events.len());
        assert_eq!(log.decode_all(), events);
    }

    #[test]
    fn truncated_frame_returns_none() {
        let mut buf = BytesMut::new();
        sample_events()[0].encode(&mut buf);
        let mut truncated = buf.freeze().slice(0..10);
        assert_eq!(Event::decode(&mut truncated), None);
    }

    #[test]
    fn unknown_tag_returns_none() {
        let mut bytes = Bytes::from_static(&[0xFFu8, 1, 2, 3]);
        assert_eq!(Event::decode(&mut bytes), None);
    }

    #[test]
    fn empty_log() {
        let log = EventLog::new();
        assert!(log.is_empty());
        assert_eq!(log.decode_all(), vec![]);
        assert_eq!(log.decode_from(0), vec![]);
    }

    #[test]
    fn decode_from_resumes_mid_log() {
        let mut log = EventLog::new();
        let events = sample_events();
        for e in &events {
            log.push(*e);
        }
        for from in 0..=events.len() {
            assert_eq!(log.decode_from(from), events[from..], "from={from}");
        }
        assert_eq!(log.decode_from(events.len() + 10), vec![]);
    }

    #[test]
    fn get_is_bounds_checked_random_access() {
        let mut log = EventLog::new();
        let events = sample_events();
        for e in &events {
            log.push(*e);
        }
        for (offset, expected) in events.iter().enumerate() {
            assert_eq!(log.get(offset), Some(*expected), "offset={offset}");
        }
        assert_eq!(log.get(events.len()), None);
        assert_eq!(log.get(usize::MAX), None);
        assert_eq!(EventLog::new().get(0), None);
    }

    /// Builds the event variant selected by `tag` from raw field material.
    /// `a`/`b` carry the u128 payloads so every variant exercises wide
    /// words, including the exact `u128::MAX` boundary via `flip`.
    fn build_event(tag: u8, pool: u32, idx: u32, a: u128, b: u128) -> Event {
        let pool = PoolId::new(pool);
        match tag {
            0 => Event::Sync {
                pool,
                reserve_a: a,
                reserve_b: b,
            },
            1 => Event::Swap {
                pool,
                token_in: TokenId::new(idx),
                amount_in: a,
                amount_out: b,
            },
            2 => Event::Mint {
                pool,
                account: account_from_index(idx),
                shares: a,
            },
            3 => Event::Burn {
                pool,
                account: account_from_index(idx),
                shares: b,
            },
            4 => Event::PoolCreated {
                pool,
                token_a: TokenId::new(idx),
                token_b: TokenId::new(idx ^ 1),
                reserve_a: a,
                reserve_b: b,
                fee: FeeRate::from_ppm(idx % arb_amm::fee::PPM).unwrap(),
            },
            _ => Event::FeedPrice {
                token: TokenId::new(idx),
                price_bits: a as u64,
            },
        }
    }

    proptest! {
        #[test]
        fn codec_round_trips_every_variant(
            tag in 0u8..6,
            pool in 0u32..u32::MAX,
            idx in 0u32..u32::MAX,
            a in 0u128..u128::MAX,
            b in 0u128..u128::MAX,
            flip in 0u8..4,
        ) {
            // Push the wide words to the exact boundaries in a quarter of
            // the cases: the codec must survive u128::MAX and 0.
            let (a, b) = match flip {
                0 => (u128::MAX, b),
                1 => (a, u128::MAX),
                2 => (0, 0),
                _ => (a, b),
            };
            let event = build_event(tag, pool, idx, a, b);
            let mut buf = BytesMut::new();
            event.encode(&mut buf);
            let mut bytes = buf.freeze();
            prop_assert_eq!(Event::decode(&mut bytes), Some(event));
            prop_assert!(bytes.is_empty(), "decoder must consume the frame exactly");
        }

        #[test]
        fn log_round_trips_random_sequences(
            tags in proptest::collection::vec(0u8..6, 0..32),
            seed in 0u128..u128::MAX,
        ) {
            let events: Vec<Event> = tags
                .iter()
                .enumerate()
                .map(|(i, &tag)| {
                    build_event(tag, i as u32, i as u32, seed, seed.rotate_left(i as u32))
                })
                .collect();
            let mut log = EventLog::new();
            for e in &events {
                log.push(*e);
            }
            prop_assert_eq!(log.len(), events.len());
            prop_assert_eq!(log.decode_all(), events.clone());
            let mid = events.len() / 2;
            prop_assert_eq!(log.decode_from(mid), events[mid..].to_vec());
        }
    }
}
