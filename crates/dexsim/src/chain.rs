//! The chain: mempool, gas-limited blocks, receipts, digests.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use arb_amm::fee::FeeRate;
use arb_amm::pool::PoolId;
use arb_amm::token::TokenId;

use crate::error::TxError;
use crate::events::{Event, EventLog};
use crate::executor;
use crate::state::{AccountId, ChainState};
use crate::tx::Transaction;

/// Block production parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockConfig {
    /// Gas budget per block (default: Ethereum's 30M).
    pub gas_limit: u64,
}

impl Default for BlockConfig {
    fn default() -> Self {
        BlockConfig {
            gas_limit: 30_000_000,
        }
    }
}

/// The outcome of one transaction inside a block.
#[derive(Debug, Clone, PartialEq)]
pub struct Receipt {
    /// Position within the block.
    pub index: usize,
    /// Whether the transaction succeeded (reverted txs still consume gas).
    pub success: bool,
    /// Gas consumed.
    pub gas_used: u64,
    /// Revert reason, when `success` is false.
    pub error: Option<TxError>,
    /// Events emitted (empty for reverted txs).
    pub events: Vec<Event>,
}

/// A mined block.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Height (genesis state is height 0; the first block is 1).
    pub height: u64,
    /// Per-transaction outcomes in execution order.
    pub receipts: Vec<Receipt>,
    /// Total gas consumed.
    pub gas_used: u64,
    /// Deterministic digest of post-block state.
    pub state_digest: u64,
}

/// A subscriber's position in the chain's event log. Create one with
/// [`Chain::subscribe`] (from "now"), [`EventCursor::genesis`] (replay
/// everything), or [`EventCursor::at`] (resume from a recovered offset),
/// then advance it with [`Chain::drain_events`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EventCursor {
    next: usize,
}

impl EventCursor {
    /// A cursor that replays the log from the very first event.
    pub const fn genesis() -> Self {
        EventCursor { next: 0 }
    }

    /// A cursor positioned at an explicit sequence number — the resume
    /// point of a consumer that already recovered the log prefix from a
    /// durable journal.
    pub const fn at(position: usize) -> Self {
        EventCursor { next: position }
    }

    /// The sequence number of the next event this cursor will yield.
    pub const fn position(self) -> usize {
        self.next
    }
}

/// A durable destination for chain events, fed as they are appended to
/// the in-memory [`EventLog`]. `arb-journal`'s `JournalWriter` is the
/// canonical implementation; [`EventSink::record`] is called once per
/// event and [`EventSink::commit`] once per batch boundary (end of a
/// mined block, or a genesis-style operation), which is where a durable
/// sink should flush and fsync.
pub trait EventSink: std::fmt::Debug + Send {
    /// Records one event. Called in log order, before `commit`.
    fn record(&mut self, event: &Event);

    /// Marks a batch boundary: everything recorded so far should be made
    /// durable. The default does nothing (an in-memory sink needs no
    /// flushing).
    fn commit(&mut self) {}
}

/// A shared, lockable event sink handle ([`Chain::attach_sink`]).
pub type SharedEventSink = Arc<Mutex<dyn EventSink>>;

/// The simulated chain: state + mempool + history.
#[derive(Debug, Clone, Default)]
pub struct Chain {
    state: ChainState,
    mempool: VecDeque<Transaction>,
    blocks: Vec<Block>,
    log: EventLog,
    config: BlockConfig,
    /// Optional durable event sink, mirroring every appended event.
    /// Shared (`Arc`) so the attaching side keeps a handle for
    /// checkpointing; cloning the chain shares the sink.
    sink: Option<SharedEventSink>,
}

impl Chain {
    /// A chain with default block parameters.
    pub fn new() -> Self {
        Self::default()
    }

    /// A chain with custom block parameters.
    pub fn with_config(config: BlockConfig) -> Self {
        Chain {
            config,
            ..Self::default()
        }
    }

    /// Read access to current state.
    pub fn state(&self) -> &ChainState {
        &self.state
    }

    /// Current block height.
    pub fn height(&self) -> u64 {
        self.blocks.len() as u64
    }

    /// All mined blocks.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// The global event log across all blocks.
    pub fn event_log(&self) -> &EventLog {
        &self.log
    }

    /// A cursor positioned at the *current* end of the event log: it will
    /// yield only events emitted after this call. Use
    /// [`EventCursor::genesis`] to replay history instead.
    pub fn subscribe(&self) -> EventCursor {
        EventCursor {
            next: self.log.len(),
        }
    }

    /// Attaches a durable event sink: every event appended to the log
    /// from now on is also [`EventSink::record`]ed, with a
    /// [`EventSink::commit`] at each batch boundary. Replaces any
    /// previously attached sink. The sink sees only *new* events — a
    /// journaling consumer backfills history via [`EventLog::get`] before
    /// attaching.
    pub fn attach_sink(&mut self, sink: SharedEventSink) {
        self.sink = Some(sink);
    }

    /// Detaches the current sink, if any, returning it.
    pub fn detach_sink(&mut self) -> Option<SharedEventSink> {
        self.sink.take()
    }

    /// Whether a sink is currently attached.
    pub fn has_sink(&self) -> bool {
        self.sink.is_some()
    }

    /// Appends an event to the log and mirrors it to the sink.
    fn emit(&mut self, event: Event) {
        self.log.push(event);
        if let Some(sink) = &self.sink {
            sink.lock().expect("event sink poisoned").record(&event);
        }
    }

    /// Signals a batch boundary to the sink (no-op without one).
    fn commit_sink(&self) {
        if let Some(sink) = &self.sink {
            sink.lock().expect("event sink poisoned").commit();
        }
    }

    /// Decodes and returns every event the cursor has not yet seen,
    /// advancing it to the end of the log. Streaming consumers call this
    /// once per block (or batch of blocks) and apply the deltas.
    pub fn drain_events(&self, cursor: &mut EventCursor) -> Vec<Event> {
        let events = self.log.decode_from(cursor.next);
        cursor.next = self.log.len();
        events
    }

    /// Number of pending transactions.
    pub fn pending(&self) -> usize {
        self.mempool.len()
    }

    /// Deploys a pool directly into state (genesis-style, not a tx) and
    /// logs a [`Event::PoolCreated`] so streaming subscribers can extend
    /// their graph without re-snapshotting the chain.
    ///
    /// # Errors
    ///
    /// Forwards validation failures from the state layer.
    pub fn add_pool(
        &mut self,
        token_a: TokenId,
        token_b: TokenId,
        reserve_a: u128,
        reserve_b: u128,
        fee: FeeRate,
    ) -> Result<PoolId, TxError> {
        let pool = self
            .state
            .add_pool(token_a, token_b, reserve_a, reserve_b, fee)?;
        self.emit(Event::PoolCreated {
            pool,
            token_a,
            token_b,
            reserve_a,
            reserve_b,
            fee,
        });
        self.commit_sink();
        Ok(pool)
    }

    /// Registers an account.
    pub fn create_account(&mut self) -> AccountId {
        self.state.create_account()
    }

    /// Faucet-credits a balance (genesis-style, not a tx).
    pub fn mint(&mut self, account: AccountId, token: TokenId, amount: u128) {
        self.state.mint(account, token, amount);
    }

    /// Queues a transaction.
    pub fn submit(&mut self, tx: Transaction) {
        self.mempool.push_back(tx);
    }

    /// Mines the next block: executes pending transactions FIFO until the
    /// gas limit is reached (remaining txs stay pending). Reverted
    /// transactions consume their gas and record their revert reason.
    pub fn mine_block(&mut self) -> &Block {
        let mut receipts = Vec::new();
        let mut gas_used: u64 = 0;
        while let Some(tx) = self.mempool.front() {
            let gas = tx.gas();
            if gas_used + gas > self.config.gas_limit {
                break;
            }
            let tx = self.mempool.pop_front().expect("front checked");
            let index = receipts.len();
            match executor::execute(&mut self.state, &tx) {
                Ok(events) => {
                    for e in &events {
                        self.emit(*e);
                    }
                    receipts.push(Receipt {
                        index,
                        success: true,
                        gas_used: gas,
                        error: None,
                        events,
                    });
                }
                Err(e) => receipts.push(Receipt {
                    index,
                    success: false,
                    gas_used: gas,
                    error: Some(e),
                    events: Vec::new(),
                }),
            }
            gas_used += gas;
        }
        self.commit_sink();
        let block = Block {
            height: self.blocks.len() as u64 + 1,
            receipts,
            gas_used,
            state_digest: self.state.digest(),
        };
        self.blocks.push(block);
        self.blocks.last().expect("just pushed")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::to_raw;

    fn t(i: u32) -> TokenId {
        TokenId::new(i)
    }

    fn setup() -> (Chain, AccountId, PoolId) {
        let mut chain = Chain::new();
        let pool = chain
            .add_pool(
                t(0),
                t(1),
                to_raw(1_000.0),
                to_raw(1_000.0),
                FeeRate::UNISWAP_V2,
            )
            .unwrap();
        let alice = chain.create_account();
        chain.mint(alice, t(0), to_raw(100.0));
        (chain, alice, pool)
    }

    #[test]
    fn mining_executes_fifo_and_records_receipts() {
        let (mut chain, alice, pool) = setup();
        chain.submit(Transaction::Swap {
            account: alice,
            pool,
            token_in: t(0),
            amount_in: to_raw(1.0),
            min_out: 0,
        });
        chain.submit(Transaction::Swap {
            account: alice,
            pool,
            token_in: t(0),
            amount_in: to_raw(1.0),
            min_out: u128::MAX, // will revert
        });
        let block = chain.mine_block();
        assert_eq!(block.height, 1);
        assert_eq!(block.receipts.len(), 2);
        assert!(block.receipts[0].success);
        assert!(!block.receipts[1].success);
        assert_eq!(block.receipts[1].error, Some(TxError::SlippageExceeded));
        assert!(block.gas_used > 0);
        assert_eq!(chain.pending(), 0);
    }

    #[test]
    fn gas_limit_defers_transactions() {
        let mut chain = Chain::with_config(BlockConfig { gas_limit: 100_000 });
        let pool = chain
            .add_pool(t(0), t(1), to_raw(10.0), to_raw(10.0), FeeRate::UNISWAP_V2)
            .unwrap();
        let alice = chain.create_account();
        chain.mint(alice, t(0), to_raw(5.0));
        for _ in 0..3 {
            chain.submit(Transaction::Swap {
                account: alice,
                pool,
                token_in: t(0),
                amount_in: to_raw(0.1),
                min_out: 0,
            });
        }
        // Each swap = 81k gas; only one fits per 100k block.
        let block = chain.mine_block();
        assert_eq!(block.receipts.len(), 1);
        assert_eq!(chain.pending(), 2);
        chain.mine_block();
        chain.mine_block();
        assert_eq!(chain.pending(), 0);
        assert_eq!(chain.height(), 3);
    }

    #[test]
    fn digests_are_deterministic_across_runs() {
        let run = || {
            let (mut chain, alice, pool) = setup();
            chain.submit(Transaction::Swap {
                account: alice,
                pool,
                token_in: t(0),
                amount_in: to_raw(2.5),
                min_out: 0,
            });
            chain.mine_block().state_digest
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn event_log_accumulates_across_blocks() {
        let (mut chain, alice, pool) = setup();
        for _ in 0..3 {
            chain.submit(Transaction::Swap {
                account: alice,
                pool,
                token_in: t(0),
                amount_in: to_raw(0.5),
                min_out: 0,
            });
            chain.mine_block();
        }
        // Genesis PoolCreated + (Swap + Sync) per successful swap.
        assert_eq!(chain.event_log().len(), 7);
        assert_eq!(chain.event_log().decode_all().len(), 7);
    }

    #[test]
    fn add_pool_logs_pool_created() {
        let (chain, _, pool) = setup();
        let events = chain.event_log().decode_all();
        assert_eq!(events.len(), 1);
        let Event::PoolCreated {
            pool: created,
            token_a,
            reserve_a,
            ..
        } = events[0]
        else {
            panic!("expected PoolCreated, got {:?}", events[0]);
        };
        assert_eq!(created, pool);
        assert_eq!(token_a, t(0));
        assert_eq!(reserve_a, to_raw(1_000.0));
    }

    #[test]
    fn subscribe_and_drain_sees_only_new_events() {
        let (mut chain, alice, pool) = setup();
        // A subscription opened now skips the genesis PoolCreated…
        let mut cursor = chain.subscribe();
        assert!(chain.drain_events(&mut cursor).is_empty());

        chain.submit(Transaction::Swap {
            account: alice,
            pool,
            token_in: t(0),
            amount_in: to_raw(1.0),
            min_out: 0,
        });
        chain.mine_block();
        let events = chain.drain_events(&mut cursor);
        assert_eq!(events.len(), 2, "Swap + Sync");
        assert!(matches!(events[0], Event::Swap { .. }));
        assert!(matches!(events[1], Event::Sync { .. }));
        // Draining again yields nothing until new blocks land.
        assert!(chain.drain_events(&mut cursor).is_empty());

        // …while a genesis cursor replays everything, including setup.
        let mut replay = EventCursor::genesis();
        let all = chain.drain_events(&mut replay);
        assert_eq!(all.len(), 3);
        assert!(matches!(all[0], Event::PoolCreated { .. }));
        assert_eq!(replay.position(), chain.event_log().len());
    }

    /// A sink that copies every recorded event and counts batch commits.
    #[derive(Debug, Default)]
    struct RecordingSink {
        events: Vec<Event>,
        commits: usize,
    }

    impl EventSink for RecordingSink {
        fn record(&mut self, event: &Event) {
            self.events.push(*event);
        }

        fn commit(&mut self) {
            self.commits += 1;
        }
    }

    #[test]
    fn attached_sink_mirrors_log_with_batch_commits() {
        let mut chain = Chain::new();
        let sink = Arc::new(Mutex::new(RecordingSink::default()));
        chain.attach_sink(sink.clone());
        assert!(chain.has_sink());

        let pool = chain
            .add_pool(
                t(0),
                t(1),
                to_raw(1_000.0),
                to_raw(1_000.0),
                FeeRate::UNISWAP_V2,
            )
            .unwrap();
        let alice = chain.create_account();
        chain.mint(alice, t(0), to_raw(10.0));
        chain.submit(Transaction::Swap {
            account: alice,
            pool,
            token_in: t(0),
            amount_in: to_raw(1.0),
            min_out: 0,
        });
        chain.mine_block();

        let recorded = sink.lock().unwrap();
        assert_eq!(recorded.events, chain.event_log().decode_all());
        // One commit per add_pool, one per mined block.
        assert_eq!(recorded.commits, 2);
        drop(recorded);

        // Detach: later events reach only the in-memory log.
        assert!(chain.detach_sink().is_some());
        assert!(!chain.has_sink());
        chain.mine_block();
        chain
            .add_pool(t(1), t(2), to_raw(5.0), to_raw(5.0), FeeRate::UNISWAP_V2)
            .unwrap();
        assert!(sink.lock().unwrap().events.len() < chain.event_log().len());
    }

    #[test]
    fn cursor_at_resumes_from_explicit_offset() {
        let (mut chain, alice, pool) = setup();
        chain.submit(Transaction::Swap {
            account: alice,
            pool,
            token_in: t(0),
            amount_in: to_raw(1.0),
            min_out: 0,
        });
        chain.mine_block();
        let all = chain.event_log().len();
        // Resume one event before the end: exactly that suffix drains.
        let mut cursor = EventCursor::at(all - 1);
        assert_eq!(cursor.position(), all - 1);
        let events = chain.drain_events(&mut cursor);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0], chain.event_log().get(all - 1).unwrap());
    }

    #[test]
    fn empty_block_is_fine() {
        let (mut chain, _, _) = setup();
        let digest_before = chain.state().digest();
        let block = chain.mine_block();
        assert!(block.receipts.is_empty());
        assert_eq!(block.state_digest, digest_before);
    }
}
