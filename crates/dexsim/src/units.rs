//! Fixed-point unit conversions.
//!
//! The simulator uses one global scale: 10⁶ raw units per display unit
//! (6 decimals, USDC-style) for every token. A single scale keeps the
//! f64 ↔ u128 bridge trivial while leaving ample headroom: display
//! reserves up to 10¹² become raw 10¹⁸, whose product 10³⁶ fits u128.

/// Raw units per display unit.
pub const UNIT: u128 = 1_000_000;

/// Converts a display amount to raw units (rounds to nearest; saturates
/// negatives and non-finite values to 0).
pub fn to_raw(display: f64) -> u128 {
    if !display.is_finite() || display <= 0.0 {
        return 0;
    }
    (display * UNIT as f64).round() as u128
}

/// Converts raw units to a display amount.
pub fn to_display(raw: u128) -> f64 {
    raw as f64 / UNIT as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn basic_conversions() {
        assert_eq!(to_raw(1.0), UNIT);
        assert_eq!(to_raw(0.5), UNIT / 2);
        assert_eq!(to_raw(-3.0), 0);
        assert_eq!(to_raw(f64::NAN), 0);
        assert_eq!(to_display(UNIT), 1.0);
    }

    proptest! {
        #[test]
        fn round_trip_within_tick_or_ulp(x in 0.0..1e12f64) {
            let back = to_display(to_raw(x));
            // Half a tick of absolute error, or a few ulps once the raw
            // value exceeds f64's 2^53 integer-exact range.
            let bound = (0.5 / UNIT as f64).max(4.0 * f64::EPSILON * x);
            prop_assert!((back - x).abs() <= bound, "x={x} back={back}");
        }
    }
}
