//! The serving wrapper: a [`ShardedRuntime`] that publishes every
//! ranking change.
//!
//! `ServeRuntime` forwards the event path verbatim and, after each
//! tick, calls [`Publisher::publish_if_changed`] keyed on the runtime's
//! `standing_revision` — so quiet ticks (nothing re-ranked) cost one
//! integer compare, and every ranking the event path ever produced is
//! observable by readers at some serve revision.

use arb_cex::feed::PriceFeed;
use arb_dexsim::events::Event;
use arb_engine::{EngineError, RuntimeReport, ShardedRuntime};

use crate::governor::{ClientClass, GovernorConfig, GovernorStats};
use crate::publish::{PublishStats, Publisher, ServeHandle, Subscription};

/// A sharded runtime with a serving side-car.
#[derive(Debug)]
pub struct ServeRuntime {
    runtime: ShardedRuntime,
    publisher: Publisher,
}

impl ServeRuntime {
    /// Wraps a runtime; readers see the empty revision-0 snapshot until
    /// the first refresh.
    #[must_use]
    pub fn new(runtime: ShardedRuntime, governor: GovernorConfig) -> Self {
        Self::with_publisher(runtime, Publisher::new(governor))
    }

    /// Wraps a runtime with a caller-built publisher. The publisher is
    /// re-anchored, so existing handles and subscriptions stay valid
    /// and the next tick re-publishes — the checkpoint/restore path:
    /// restore the runtime, then hand the old publisher back in.
    #[must_use]
    pub fn with_publisher(runtime: ShardedRuntime, mut publisher: Publisher) -> Self {
        publisher.reanchor();
        Self { runtime, publisher }
    }

    /// Attaches observability to both halves: the wrapped runtime
    /// ([`ShardedRuntime::set_obs`] — `runtime.*` and `engine.*`) and
    /// the publisher ([`Publisher::set_obs`] — `serve.*`), all into one
    /// registry.
    pub fn set_obs(&mut self, obs: &arb_obs::Obs) {
        self.runtime.set_obs(obs);
        self.publisher.set_obs(obs);
    }

    /// Applies one event batch and publishes the ranking if it moved.
    ///
    /// # Errors
    ///
    /// Propagates [`EngineError`] from the wrapped runtime; nothing is
    /// published on error.
    pub fn apply_events<F: PriceFeed + Sync>(
        &mut self,
        events: &[Event],
        feed: &F,
    ) -> Result<RuntimeReport, EngineError> {
        let report = self.runtime.apply_events(events, feed)?;
        self.publisher
            .publish_if_changed(self.runtime.standing_revision(), &report.opportunities);
        Ok(report)
    }

    /// Brings the standing set current without events (cold start).
    ///
    /// # Errors
    ///
    /// See [`ServeRuntime::apply_events`].
    pub fn refresh<F: PriceFeed + Sync>(&mut self, feed: &F) -> Result<RuntimeReport, EngineError> {
        self.apply_events(&[], feed)
    }

    /// A reader handle in `class` (see [`Publisher::handle`]).
    #[must_use]
    pub fn handle(&self, class: ClientClass) -> ServeHandle {
        self.publisher.handle(class)
    }

    /// A delta subscription (see [`Publisher::subscribe`]).
    #[must_use]
    pub fn subscribe(&self) -> Subscription {
        self.publisher.subscribe()
    }

    /// The wrapped runtime (checkpointing, telemetry).
    #[must_use]
    pub fn runtime(&self) -> &ShardedRuntime {
        &self.runtime
    }

    /// The serve revision of the currently published snapshot.
    #[must_use]
    pub fn published_revision(&self) -> u64 {
        self.publisher.revision()
    }

    /// Publisher counters.
    #[must_use]
    pub fn publish_stats(&self) -> PublishStats {
        self.publisher.stats()
    }

    /// Admission counters.
    #[must_use]
    pub fn governor_stats(&self) -> GovernorStats {
        self.publisher.governor_stats()
    }

    /// Splits the wrapper back into runtime + publisher (checkpoint
    /// path: checkpoint the runtime, keep the publisher for
    /// [`ServeRuntime::with_publisher`] after restore).
    #[must_use]
    pub fn into_parts(self) -> (ShardedRuntime, Publisher) {
        (self.runtime, self.publisher)
    }
}
