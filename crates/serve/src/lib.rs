//! # arb-serve — lock-free ranked-snapshot serving
//!
//! The paper's output is a ranked list of profitable arbitrage loops;
//! this crate is how consumers read it at scale without ever touching
//! the event path. The design splits serving from compute:
//!
//! * **Publish** ([`Publisher`], [`ServeRuntime`]): on every
//!   `standing_revision` change the runtime's merged ranking is frozen
//!   into an immutable [`RankedSnapshot`] — entries in execution
//!   priority order plus by-token / by-pool / net-profit-floor indexes
//!   built once — and swapped in behind an atomic pointer with
//!   epoch-based reclamation (see [`mod@publish`] for the safety
//!   argument).
//! * **Read** ([`ServeHandle`]): wait-free, zero-copy loads; point
//!   queries ([`RankedSnapshot::top_k`], [`RankedSnapshot::by_token`],
//!   [`RankedSnapshot::by_pool`], [`RankedSnapshot::min_net_profit`])
//!   are slice walks over the frozen indexes. Any number of reader
//!   threads, no reader ever blocks the writer, the writer never waits
//!   on a reader.
//! * **Subscribe** ([`Subscription`]): a pull-based stream of
//!   [`RankingDelta`]s — only what changed between revisions, lossless
//!   under the pipeline's total ranking order ([`mod@diff`]).
//! * **Admit** ([`Governor`]): per-class token buckets
//!   ([`ClientClass`]) plus a global concurrency budget, all lock-free,
//!   so a synthetic read storm degrades into cheap denials instead of
//!   starving the event path.

#![forbid(unsafe_op_in_unsafe_fn)]

pub mod diff;
pub mod error;
pub mod governor;
pub mod publish;
pub mod serve_runtime;
pub mod snapshot;

pub use diff::{apply, diff, ApplyError, RankingDelta};
pub use error::ServeError;
pub use governor::{
    ClassLimit, ClientClass, Clock, Governor, GovernorConfig, GovernorStats, ManualClock,
    MonotonicClock, Permit,
};
pub use publish::{
    PublishStats, Publisher, ReadGuard, ServeHandle, Subscription, SubscriptionUpdate,
};
pub use serve_runtime::ServeRuntime;
pub use snapshot::RankedSnapshot;
