//! Ranking deltas: what changed between two published snapshots.
//!
//! The pipeline's comparator is a **total** order (score, then hops,
//! then token ids, then pool ids — no two distinct opportunities ever
//! compare equal), and it is a pure function of an entry's value. So
//! between two revisions, every entry whose evaluation is bit-unchanged
//! keeps its relative order against every other unchanged entry. That
//! makes a compact delta lossless:
//!
//! * `removed` — cycles ranked in the base but absent from the target
//!   (retired, repriced below the floor, or pushed out of the `top_k`
//!   cut);
//! * `upserts` — `(rank, entry)` pairs for cycles that are new to the
//!   ranking *or* whose evaluation changed bitwise;
//! * `len` — the target ranking's length.
//!
//! [`apply`] rebuilds the target exactly: place the upserts at their
//! ranks, then fill the remaining slots with the surviving unchanged
//! entries **in base order**. Correctness of the fill is exactly the
//! relative-order-preservation argument above.

use arb_engine::ArbitrageOpportunity;
use arb_graph::Cycle;

/// The change set between two consecutive published revisions.
#[derive(Debug, Clone)]
pub struct RankingDelta {
    /// Revision the delta applies on top of.
    pub from_revision: u64,
    /// Revision the delta produces.
    pub to_revision: u64,
    /// Length of the target ranking.
    pub len: usize,
    /// Cycles present in the base ranking but not the target.
    pub removed: Vec<Cycle>,
    /// New or re-evaluated entries with their target ranks, ascending.
    pub upserts: Vec<(u32, ArbitrageOpportunity)>,
}

impl RankingDelta {
    /// Whether the delta carries no change (revision advanced with an
    /// identical ranking — e.g. a rebalance that reshuffled shards but
    /// not priorities).
    #[must_use]
    pub fn is_noop(&self) -> bool {
        self.removed.is_empty() && self.upserts.is_empty()
    }
}

/// Errors from [`apply`]: the delta does not fit the base it was handed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ApplyError {
    /// A removed cycle was not present in the base ranking.
    RemovedMissing,
    /// An upsert rank falls outside the target length.
    RankOutOfBounds,
    /// Survivor count does not match the non-upsert slots.
    SurvivorMismatch,
}

impl std::fmt::Display for ApplyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::RemovedMissing => write!(f, "delta removes a cycle the base does not rank"),
            Self::RankOutOfBounds => write!(f, "delta upsert rank exceeds the target length"),
            Self::SurvivorMismatch => {
                write!(f, "survivors do not fill the delta's non-upsert slots")
            }
        }
    }
}

impl std::error::Error for ApplyError {}

/// True when two evaluations of the same cycle are bitwise identical —
/// the condition under which an entry may ride along implicitly instead
/// of being re-shipped as an upsert.
fn same_eval(a: &ArbitrageOpportunity, b: &ArbitrageOpportunity) -> bool {
    let bits = |xs: &[f64]| xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    a.strategy == b.strategy
        && a.gross_profit.value().to_bits() == b.gross_profit.value().to_bits()
        && a.net_profit.value().to_bits() == b.net_profit.value().to_bits()
        && bits(&a.prices) == bits(&b.prices)
        && bits(&a.optimal_inputs) == bits(&b.optimal_inputs)
        && bits(&a.token_profits) == bits(&b.token_profits)
}

/// Computes the delta turning `base` into `next`.
#[must_use]
pub fn diff(
    from_revision: u64,
    base: &[ArbitrageOpportunity],
    to_revision: u64,
    next: &[ArbitrageOpportunity],
) -> RankingDelta {
    let base_by_cycle: std::collections::HashMap<&Cycle, &ArbitrageOpportunity> =
        base.iter().map(|opp| (&opp.cycle, opp)).collect();
    let next_cycles: std::collections::HashSet<&Cycle> =
        next.iter().map(|opp| &opp.cycle).collect();
    let removed = base
        .iter()
        .filter(|opp| !next_cycles.contains(&opp.cycle))
        .map(|opp| opp.cycle.clone())
        .collect();
    let upserts = next
        .iter()
        .enumerate()
        .filter(|(_, opp)| {
            base_by_cycle
                .get(&opp.cycle)
                .is_none_or(|prev| !same_eval(prev, opp))
        })
        .map(|(rank, opp)| (rank as u32, opp.clone()))
        .collect();
    RankingDelta {
        from_revision,
        to_revision,
        len: next.len(),
        removed,
        upserts,
    }
}

/// Applies a delta to the base ranking it was diffed against,
/// reconstructing the target ranking exactly (bit-identical entries in
/// identical order).
///
/// # Errors
///
/// [`ApplyError`] when the delta is inconsistent with `base` — the
/// subscription layer treats that as a broken chain and resyncs.
pub fn apply(
    base: &[ArbitrageOpportunity],
    delta: &RankingDelta,
) -> Result<Vec<ArbitrageOpportunity>, ApplyError> {
    let removed: std::collections::HashSet<&Cycle> = delta.removed.iter().collect();
    if removed.len() != delta.removed.len() {
        return Err(ApplyError::RemovedMissing);
    }
    let base_cycles: std::collections::HashSet<&Cycle> =
        base.iter().map(|opp| &opp.cycle).collect();
    if removed.iter().any(|cycle| !base_cycles.contains(*cycle)) {
        return Err(ApplyError::RemovedMissing);
    }
    let upserted: std::collections::HashSet<&Cycle> =
        delta.upserts.iter().map(|(_, opp)| &opp.cycle).collect();

    let mut slots: Vec<Option<ArbitrageOpportunity>> = vec![None; delta.len];
    for (rank, opp) in &delta.upserts {
        let slot = slots
            .get_mut(*rank as usize)
            .ok_or(ApplyError::RankOutOfBounds)?;
        if slot.is_some() {
            return Err(ApplyError::RankOutOfBounds);
        }
        *slot = Some(opp.clone());
    }

    // Unchanged survivors keep their relative order under the total
    // comparator, so base order fills the remaining slots exactly.
    let mut survivors = base
        .iter()
        .filter(|opp| !removed.contains(&opp.cycle) && !upserted.contains(&opp.cycle));
    for slot in &mut slots {
        if slot.is_none() {
            *slot = Some(
                survivors
                    .next()
                    .ok_or(ApplyError::SurvivorMismatch)?
                    .clone(),
            );
        }
    }
    if survivors.next().is_some() {
        return Err(ApplyError::SurvivorMismatch);
    }
    Ok(slots
        .into_iter()
        .map(|slot| slot.expect("filled"))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    // Delta round-trips over real rankings are exercised end-to-end in
    // `tests/serve_diff.rs`; here we only pin the degenerate shapes.
    #[test]
    fn empty_to_empty_is_noop() {
        let delta = diff(3, &[], 4, &[]);
        assert!(delta.is_noop());
        assert_eq!(delta.len, 0);
        assert!(apply(&[], &delta).unwrap().is_empty());
    }

    #[test]
    fn apply_rejects_foreign_removal() {
        let delta = RankingDelta {
            from_revision: 0,
            to_revision: 1,
            len: 0,
            removed: vec![Cycle::new(
                vec![
                    arb_amm::token::TokenId::new(0),
                    arb_amm::token::TokenId::new(1),
                ],
                vec![arb_amm::pool::PoolId::new(0), arb_amm::pool::PoolId::new(1)],
            )
            .unwrap()],
            upserts: Vec::new(),
        };
        assert_eq!(apply(&[], &delta).unwrap_err(), ApplyError::RemovedMissing);
    }
}
