//! Admission control: per-class token buckets + a global concurrency
//! budget, all lock-free.
//!
//! The serving path must never let a read storm starve the event path,
//! so every query passes two gates before touching a snapshot:
//!
//! 1. a **token bucket** for the caller's [`ClientClass`] — sustained
//!    rate plus a bounded burst, refilled lazily from a monotonic
//!    clock on each attempt (no refill thread);
//! 2. a **global concurrency budget** — a saturating in-flight gauge
//!    released by RAII [`Permit`] drop.
//!
//! Both gates are single atomic read-modify-write operations in the
//! admit path; denial returns immediately with a retry hint instead of
//! blocking, so a well-behaved reader sleeps in its own thread and the
//! engine never waits on a reader.

use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use crate::error::ServeError;

/// Micro-tokens per admission token: buckets account in millionths so
/// fractional per-nanosecond refill never rounds to zero.
const MICRO: i64 = 1_000_000;

/// The monotonic nanosecond source the buckets refill from — the shared
/// injectable-clock types from `arb-core` (the same ones the
/// deterministic [`arb_core::backoff::Backoff`] schedules run on),
/// re-exported so the governor's public API is unchanged.
pub use arb_core::backoff::{Clock, ManualClock, MonotonicClock};

/// Reader classes with independent rate envelopes, priority-ordered:
/// interactive dashboards, analytical scans, bulk exports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClientClass {
    /// Latency-sensitive point queries (`top_k`, single-token lookups).
    Interactive,
    /// Medium-rate scanning (profit-floor sweeps, per-pool audits).
    Analytics,
    /// Best-effort full-ranking pulls.
    Bulk,
}

impl ClientClass {
    /// All classes, index-aligned with the governor's bucket array.
    pub const ALL: [ClientClass; 3] = [
        ClientClass::Interactive,
        ClientClass::Analytics,
        ClientClass::Bulk,
    ];

    fn index(self) -> usize {
        match self {
            ClientClass::Interactive => 0,
            ClientClass::Analytics => 1,
            ClientClass::Bulk => 2,
        }
    }

    /// Stable lowercase label (telemetry keys, bench JSON).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ClientClass::Interactive => "interactive",
            ClientClass::Analytics => "analytics",
            ClientClass::Bulk => "bulk",
        }
    }
}

impl std::fmt::Display for ClientClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One class's rate envelope.
#[derive(Debug, Clone, Copy)]
pub struct ClassLimit {
    /// Sustained admissions per second.
    pub rate_per_sec: f64,
    /// Bucket capacity: how far ahead of the sustained rate a burst may
    /// run.
    pub burst: f64,
}

/// Governor-wide configuration.
#[derive(Debug, Clone, Copy)]
pub struct GovernorConfig {
    /// Envelopes indexed by [`ClientClass::ALL`].
    pub limits: [ClassLimit; 3],
    /// Global in-flight query budget across every class.
    pub max_concurrent: usize,
}

impl Default for GovernorConfig {
    fn default() -> Self {
        Self {
            limits: [
                ClassLimit {
                    rate_per_sec: 100_000.0,
                    burst: 1_000.0,
                },
                ClassLimit {
                    rate_per_sec: 20_000.0,
                    burst: 200.0,
                },
                ClassLimit {
                    rate_per_sec: 5_000.0,
                    burst: 50.0,
                },
            ],
            max_concurrent: 1_024,
        }
    }
}

/// Lazy-refill token bucket in micro-token atomics.
#[derive(Debug)]
struct TokenBucket {
    /// Available micro-tokens; may transiently dip negative between a
    /// speculative take and its rollback.
    micro: AtomicI64,
    /// Clock reading of the last refill that was accounted.
    refilled_at: AtomicU64,
    /// Micro-tokens added per second of elapsed clock.
    rate_micro_per_sec: u64,
    /// Capacity in micro-tokens.
    burst_micro: i64,
}

impl TokenBucket {
    fn new(limit: ClassLimit) -> Self {
        let burst_micro = ((limit.burst.max(1.0)) * MICRO as f64) as i64;
        Self {
            micro: AtomicI64::new(burst_micro),
            refilled_at: AtomicU64::new(0),
            rate_micro_per_sec: (limit.rate_per_sec.max(0.0) * MICRO as f64) as u64,
            burst_micro,
        }
    }

    /// Credits elapsed time exactly once per interval: whichever thread
    /// wins the CAS on `refilled_at` owns that interval's credit.
    fn refill(&self, now: u64) {
        let last = self.refilled_at.load(Ordering::SeqCst);
        if now <= last {
            return;
        }
        if self
            .refilled_at
            .compare_exchange(last, now, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            return;
        }
        let credit =
            ((now - last) as u128 * self.rate_micro_per_sec as u128 / 1_000_000_000) as i64;
        if credit == 0 {
            return;
        }
        let _ = self
            .micro
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |m| {
                Some((m + credit).min(self.burst_micro))
            });
    }

    /// Takes one token, or reports how long until one accrues.
    fn try_take(&self, now: u64) -> Result<(), u64> {
        self.refill(now);
        let before = self.micro.fetch_sub(MICRO, Ordering::SeqCst);
        if before >= MICRO {
            return Ok(());
        }
        self.micro.fetch_add(MICRO, Ordering::SeqCst);
        let deficit_micro = (MICRO - before.max(0)) as u128;
        let retry_nanos = if self.rate_micro_per_sec == 0 {
            u64::MAX
        } else {
            (deficit_micro * 1_000_000_000 / self.rate_micro_per_sec as u128) as u64
        };
        Err(retry_nanos.max(1))
    }
}

/// Admission counters, per class plus global.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GovernorStats {
    /// Queries admitted, indexed by [`ClientClass::ALL`].
    pub admitted: [u64; 3],
    /// Queries denied by the class rate limit.
    pub denied_rate: [u64; 3],
    /// Queries denied by the global concurrency budget.
    pub denied_saturated: u64,
}

impl GovernorStats {
    /// Total admissions across classes.
    #[must_use]
    pub fn total_admitted(&self) -> u64 {
        self.admitted.iter().sum()
    }

    /// Total rate denials across classes.
    #[must_use]
    pub fn total_denied_rate(&self) -> u64 {
        self.denied_rate.iter().sum()
    }
}

impl std::fmt::Display for GovernorStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "admitted={} (interactive={} analytics={} bulk={}) denied_rate={} denied_saturated={}",
            self.total_admitted(),
            self.admitted[0],
            self.admitted[1],
            self.admitted[2],
            self.total_denied_rate(),
            self.denied_saturated
        )
    }
}

/// The admission controller. One per publisher; shared by every handle.
#[derive(Debug)]
pub struct Governor {
    buckets: [TokenBucket; 3],
    inflight: AtomicUsize,
    max_concurrent: usize,
    clock: Arc<dyn Clock>,
    admitted: [AtomicU64; 3],
    denied_rate: [AtomicU64; 3],
    denied_saturated: AtomicU64,
}

impl Governor {
    /// Builds a governor on the real monotonic clock.
    #[must_use]
    pub fn new(config: GovernorConfig) -> Self {
        Self::with_clock(config, Arc::new(MonotonicClock::new()))
    }

    /// Builds a governor on an injected clock (deterministic tests).
    #[must_use]
    pub fn with_clock(config: GovernorConfig, clock: Arc<dyn Clock>) -> Self {
        Self {
            buckets: config.limits.map(TokenBucket::new),
            inflight: AtomicUsize::new(0),
            max_concurrent: config.max_concurrent.max(1),
            clock,
            admitted: [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)],
            denied_rate: [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)],
            denied_saturated: AtomicU64::new(0),
        }
    }

    /// Admits one query for `class` or explains the denial. The
    /// returned [`Permit`] releases the concurrency budget on drop.
    ///
    /// # Errors
    ///
    /// [`ServeError::RateLimited`] with a retry hint when the class
    /// bucket is dry; [`ServeError::Saturated`] when the global
    /// in-flight budget is exhausted.
    pub fn admit(self: &Arc<Self>, class: ClientClass) -> Result<Permit, ServeError> {
        let idx = class.index();
        if let Err(retry_nanos) = self.buckets[idx].try_take(self.clock.now_nanos()) {
            self.denied_rate[idx].fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::RateLimited { class, retry_nanos });
        }
        if self.inflight.fetch_add(1, Ordering::SeqCst) >= self.max_concurrent {
            self.inflight.fetch_sub(1, Ordering::SeqCst);
            self.denied_saturated.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::Saturated {
                max_concurrent: self.max_concurrent,
            });
        }
        self.admitted[idx].fetch_add(1, Ordering::Relaxed);
        Ok(Permit {
            governor: Arc::clone(self),
        })
    }

    /// Queries currently in flight.
    #[must_use]
    pub fn inflight(&self) -> usize {
        self.inflight.load(Ordering::SeqCst)
    }

    /// A consistent-enough copy of the counters (relaxed reads; exact
    /// once concurrent readers quiesce).
    #[must_use]
    pub fn stats(&self) -> GovernorStats {
        let load = |xs: &[AtomicU64; 3]| {
            [
                xs[0].load(Ordering::Relaxed),
                xs[1].load(Ordering::Relaxed),
                xs[2].load(Ordering::Relaxed),
            ]
        };
        GovernorStats {
            admitted: load(&self.admitted),
            denied_rate: load(&self.denied_rate),
            denied_saturated: self.denied_saturated.load(Ordering::Relaxed),
        }
    }
}

/// RAII share of the global concurrency budget.
#[derive(Debug)]
pub struct Permit {
    governor: Arc<Governor>,
}

impl Drop for Permit {
    fn drop(&mut self) {
        self.governor.inflight.fetch_sub(1, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn governor(
        limits: [ClassLimit; 3],
        max_concurrent: usize,
    ) -> (Arc<Governor>, Arc<ManualClock>) {
        let clock = Arc::new(ManualClock::new());
        let governor = Arc::new(Governor::with_clock(
            GovernorConfig {
                limits,
                max_concurrent,
            },
            Arc::clone(&clock) as Arc<dyn Clock>,
        ));
        (governor, clock)
    }

    fn tight() -> [ClassLimit; 3] {
        [
            ClassLimit {
                rate_per_sec: 10.0,
                burst: 2.0,
            },
            ClassLimit {
                rate_per_sec: 1.0,
                burst: 1.0,
            },
            ClassLimit {
                rate_per_sec: 1.0,
                burst: 1.0,
            },
        ]
    }

    #[test]
    fn burst_then_rate_limited_then_refilled() {
        let (governor, clock) = governor(tight(), 8);
        assert!(governor.admit(ClientClass::Interactive).is_ok());
        assert!(governor.admit(ClientClass::Interactive).is_ok());
        let denied = governor.admit(ClientClass::Interactive);
        let Err(ServeError::RateLimited { retry_nanos, .. }) = denied else {
            panic!("expected rate denial, got {denied:?}");
        };
        // 10/s → one token per 100ms; the hint must not overshoot it.
        assert!(retry_nanos <= 100_000_000, "retry hint {retry_nanos}");
        clock.advance(100_000_000);
        assert!(governor.admit(ClientClass::Interactive).is_ok());
        let stats = governor.stats();
        assert_eq!(stats.admitted[0], 3);
        assert_eq!(stats.denied_rate[0], 1);
    }

    #[test]
    fn classes_meter_independently() {
        let (governor, _clock) = governor(tight(), 8);
        assert!(governor.admit(ClientClass::Bulk).is_ok());
        assert!(matches!(
            governor.admit(ClientClass::Bulk),
            Err(ServeError::RateLimited {
                class: ClientClass::Bulk,
                ..
            })
        ));
        // Interactive's bucket is untouched by bulk exhaustion.
        assert!(governor.admit(ClientClass::Interactive).is_ok());
    }

    #[test]
    fn concurrency_budget_releases_on_drop() {
        let (governor, clock) = governor(
            [ClassLimit {
                rate_per_sec: 1_000_000.0,
                burst: 1_000_000.0,
            }; 3],
            2,
        );
        let a = governor.admit(ClientClass::Interactive).unwrap();
        let _b = governor.admit(ClientClass::Analytics).unwrap();
        assert!(matches!(
            governor.admit(ClientClass::Bulk),
            Err(ServeError::Saturated { max_concurrent: 2 })
        ));
        assert_eq!(governor.inflight(), 2);
        drop(a);
        clock.advance(1);
        assert!(governor.admit(ClientClass::Bulk).is_ok());
        assert_eq!(governor.stats().denied_saturated, 1);
    }

    #[test]
    fn refill_caps_at_burst() {
        let (governor, clock) = governor(tight(), 8);
        clock.advance(60_000_000_000); // a minute of idle credit
        let mut admitted = 0;
        while governor.admit(ClientClass::Interactive).is_ok() {
            admitted += 1;
        }
        assert_eq!(admitted, 2, "burst capacity bounds idle accrual");
    }
}
