//! Lock-free snapshot publication: one writer, any number of wait-free
//! readers.
//!
//! The cell holds the current [`RankedSnapshot`] behind a raw
//! [`AtomicPtr`]. Publishing swaps the pointer; reading loads it and
//! bumps the underlying `Arc`'s strong count. The only hazard is the
//! window between a reader's pointer load and its refcount bump — the
//! writer must not release its own reference in that window. We close
//! it with epoch-based reclamation:
//!
//! * the cell carries a global epoch counter, bumped once per publish;
//! * each reader handle owns a **pin slot** (one per handle, and a
//!   handle is `Send + !Sync`, so one per thread of use): before
//!   loading the pointer it stores the epoch it observed, after the
//!   refcount bump it stores the `UNPINNED` sentinel;
//! * the writer retires the swapped-out pointer tagged with the
//!   **post-bump** epoch, and only releases retired references whose
//!   tag is `<=` the minimum pinned epoch across all slots.
//!
//! Safety argument (everything is `SeqCst`, so one total order): a
//! reader pinned at epoch `e` loads the pointer *after* its pin store.
//! A retired pointer tagged `r <= e` was swapped out *before* the epoch
//! reached `r`, hence before the reader's epoch load that returned
//! `e >= r`, hence before the reader's pointer load — the reader cannot
//! have loaded it. Conversely a reader whose pin was not yet visible to
//! the writer's scan stored its pin after the scan's read, hence loaded
//! the pointer after the writer's swap — it holds the new snapshot, not
//! the retired one. Either way releasing tagged-`<= min` retirees never
//! frees a pointer a reader is between loading and retaining.
//!
//! "Release" here only drops the cell's own `Arc` reference: a reader
//! that already bumped the count keeps its snapshot alive arbitrarily
//! long without ever blocking the writer.

use std::collections::VecDeque;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use arb_engine::ArbitrageOpportunity;
use arb_obs::{Counter, Gauge, Obs, SpanTimer};

use crate::diff::{diff, RankingDelta};
use crate::error::ServeError;
use crate::governor::{ClientClass, Governor, GovernorConfig, GovernorStats, Permit};
use crate::snapshot::RankedSnapshot;

/// Slot value meaning "not inside a read": also the identity of `min`,
/// so unpinned slots never hold back reclamation.
const UNPINNED: u64 = u64::MAX;

/// Published deltas retained for subscribers before they must resync.
const DELTA_RING: usize = 64;

/// A reader's pin slot. Owned by exactly one [`ServeHandle`]; the cell
/// keeps a second `Arc` to scan it.
#[derive(Debug)]
struct ReaderSlot {
    pinned: AtomicU64,
}

/// A swapped-out snapshot pointer awaiting release. The pointer came
/// from `Arc::into_raw` and is released with `Arc::from_raw` exactly
/// once, on the writer thread — sending the bare pointer is safe
/// because `RankedSnapshot` is `Send + Sync`.
#[derive(Debug)]
struct RetiredPtr(*const RankedSnapshot);

// SAFETY: see `RetiredPtr` — ownership of one strong count moves with
// the struct; the pointee is `Send + Sync`.
unsafe impl Send for RetiredPtr {}

#[derive(Debug, Default)]
struct WriterState {
    /// `(retire_epoch, pointer)` pairs not yet proven unreachable.
    retired: Vec<(u64, RetiredPtr)>,
}

#[derive(Debug, Default)]
struct DeltaRing {
    deltas: VecDeque<Arc<RankingDelta>>,
}

/// The shared publication cell. Readers touch only `current`, `epoch`,
/// and their own slot — never a lock.
#[derive(Debug)]
pub(crate) struct SnapshotCell {
    current: AtomicPtr<RankedSnapshot>,
    epoch: AtomicU64,
    readers: Mutex<Vec<Arc<ReaderSlot>>>,
    writer: Mutex<WriterState>,
    /// Recent deltas for subscribers. Only subscribers lock this; the
    /// point-query path never does.
    ring: Mutex<DeltaRing>,
}

impl SnapshotCell {
    fn new(initial: Arc<RankedSnapshot>) -> Self {
        Self {
            current: AtomicPtr::new(Arc::into_raw(initial).cast_mut()),
            epoch: AtomicU64::new(0),
            readers: Mutex::new(Vec::new()),
            writer: Mutex::new(WriterState::default()),
            ring: Mutex::new(DeltaRing::default()),
        }
    }

    fn register(&self) -> Arc<ReaderSlot> {
        let slot = Arc::new(ReaderSlot {
            pinned: AtomicU64::new(UNPINNED),
        });
        self.readers
            .lock()
            .expect("reader registry lock")
            .push(Arc::clone(&slot));
        slot
    }

    /// The wait-free read: pin, load, retain, unpin. See the module
    /// docs for why the pin makes the load-to-retain window safe.
    fn load(&self, slot: &ReaderSlot) -> Arc<RankedSnapshot> {
        slot.pinned
            .store(self.epoch.load(Ordering::SeqCst), Ordering::SeqCst);
        let ptr = self.current.load(Ordering::SeqCst);
        // SAFETY: `ptr` came from `Arc::into_raw` and the pin protocol
        // guarantees the writer has not released its reference between
        // our load and this bump (module-level argument).
        let snapshot = unsafe {
            Arc::increment_strong_count(ptr);
            Arc::from_raw(ptr)
        };
        slot.pinned.store(UNPINNED, Ordering::SeqCst);
        snapshot
    }

    /// Writer side: swap in `next`, retire the old pointer, release
    /// every retiree no pinned reader can still reach.
    fn install(&self, next: Arc<RankedSnapshot>) {
        let old = self
            .current
            .swap(Arc::into_raw(next).cast_mut(), Ordering::SeqCst);
        let retire_epoch = self.epoch.fetch_add(1, Ordering::SeqCst) + 1;
        let min_pinned = self
            .readers
            .lock()
            .expect("reader registry lock")
            .iter()
            .map(|slot| slot.pinned.load(Ordering::SeqCst))
            .min()
            .unwrap_or(UNPINNED);
        let mut writer = self.writer.lock().expect("writer state lock");
        writer.retired.push((retire_epoch, RetiredPtr(old)));
        writer.retired.retain(|(tag, ptr)| {
            if *tag <= min_pinned {
                // SAFETY: releases the single strong count carried by
                // the `RetiredPtr`; no reader can be mid-retain on it
                // (module-level argument).
                unsafe { drop(Arc::from_raw(ptr.0)) };
                false
            } else {
                true
            }
        });
    }

    fn push_delta(&self, delta: RankingDelta) {
        let mut ring = self.ring.lock().expect("delta ring lock");
        if ring.deltas.len() == DELTA_RING {
            ring.deltas.pop_front();
        }
        ring.deltas.push_back(Arc::new(delta));
    }
}

impl Drop for SnapshotCell {
    fn drop(&mut self) {
        // SAFETY: no readers remain (dropping the cell requires every
        // handle's `Arc<SnapshotCell>` to be gone); release the current
        // pointer and every still-retired one exactly once each.
        unsafe {
            drop(Arc::from_raw(self.current.load(Ordering::SeqCst)));
            for (_, ptr) in self
                .writer
                .lock()
                .expect("writer state lock")
                .retired
                .drain(..)
            {
                drop(Arc::from_raw(ptr.0));
            }
        }
    }
}

/// Cumulative publisher counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PublishStats {
    /// Snapshots actually published (source revision moved).
    pub publishes: u64,
    /// `publish_if_changed` calls skipped because the source revision
    /// had not moved.
    pub skipped: u64,
    /// Published deltas that carried no ranking change (revision moved
    /// but the merged order was bit-identical, e.g. after a rebalance).
    pub noop_deltas: u64,
}

/// Pre-resolved registry instruments for the publisher (see
/// [`Publisher::set_obs`]). The publisher is the single writer, so the
/// counters are absolute mirrors (`set_at_least`), not deltas.
#[derive(Debug)]
struct PublishObs {
    /// Wraps snapshot build + diff + pointer install.
    publish: SpanTimer,
    publishes: Counter,
    skipped: Counter,
    noop_deltas: Counter,
    revision: Gauge,
    admitted: Counter,
    denied_rate: Counter,
    denied_saturated: Counter,
}

impl PublishObs {
    fn new(obs: &Obs) -> Self {
        let registry = obs.registry();
        PublishObs {
            publish: obs.span("serve.publish_ns"),
            publishes: registry.counter("serve.publishes"),
            skipped: registry.counter("serve.skipped"),
            noop_deltas: registry.counter("serve.noop_deltas"),
            revision: registry.gauge("serve.revision"),
            admitted: registry.counter("serve.admitted"),
            denied_rate: registry.counter("serve.denied_rate"),
            denied_saturated: registry.counter("serve.denied_saturated"),
        }
    }

    fn sync(&self, stats: &PublishStats, revision: u64, governor: &GovernorStats) {
        self.publishes.set_at_least(stats.publishes);
        self.skipped.set_at_least(stats.skipped);
        self.noop_deltas.set_at_least(stats.noop_deltas);
        self.revision.set(revision as f64);
        self.admitted.set_at_least(governor.total_admitted());
        self.denied_rate.set_at_least(governor.total_denied_rate());
        self.denied_saturated
            .set_at_least(governor.denied_saturated);
    }
}

/// The single writer: owns revision numbering, diffing, and the cell.
///
/// Exactly one `Publisher` exists per serving runtime; it is `Send` but
/// deliberately not `Clone`. Readers attach through
/// [`Publisher::handle`] / [`Publisher::subscribe`] and stay valid for
/// the cell's lifetime, across rebalances and checkpoint/restore.
#[derive(Debug)]
pub struct Publisher {
    cell: Arc<SnapshotCell>,
    governor: Arc<Governor>,
    /// Serve-side monotone revision (never resets, unlike the source
    /// runtime's counter across a restore).
    revision: u64,
    /// Last published ranking, kept for diffing.
    last: Arc<RankedSnapshot>,
    /// Source (`standing_revision`) value behind the last publish;
    /// `None` forces the next `publish_if_changed` through (fresh
    /// publisher, or re-anchored after a restore).
    last_source: Option<u64>,
    stats: PublishStats,
    obs: Option<PublishObs>,
}

impl Publisher {
    /// A publisher holding the empty revision-0 snapshot.
    #[must_use]
    pub fn new(governor: GovernorConfig) -> Self {
        Self::with_governor(Arc::new(Governor::new(governor)))
    }

    /// A publisher over a caller-built governor (injected clocks).
    #[must_use]
    pub fn with_governor(governor: Arc<Governor>) -> Self {
        let initial = Arc::new(RankedSnapshot::empty());
        Self {
            cell: Arc::new(SnapshotCell::new(Arc::clone(&initial))),
            governor,
            revision: 0,
            last: initial,
            last_source: None,
            stats: PublishStats::default(),
            obs: None,
        }
    }

    /// Attaches observability: a `serve.publish_ns` span per publish,
    /// `serve.*` counters mirroring [`PublishStats`] and the governor's
    /// admission totals, and a `serve.revision` gauge.
    pub fn set_obs(&mut self, obs: &Obs) {
        let publish_obs = PublishObs::new(obs);
        publish_obs.sync(&self.stats, self.revision, &self.governor.stats());
        self.obs = Some(publish_obs);
    }

    /// Publishes a new ranking unconditionally: builds the snapshot and
    /// its indexes, diffs against the previous revision, pushes the
    /// delta, and swaps the pointer. Returns the new serve revision.
    pub fn publish(&mut self, ranked: Vec<ArbitrageOpportunity>) -> u64 {
        let span = self.obs.as_ref().map(|o| o.publish.start());
        self.revision += 1;
        let next = Arc::new(RankedSnapshot::build(self.revision, ranked));
        let delta = diff(
            self.last.revision(),
            self.last.entries(),
            next.revision(),
            next.entries(),
        );
        if delta.is_noop() {
            self.stats.noop_deltas += 1;
        }
        self.cell.push_delta(delta);
        self.cell.install(Arc::clone(&next));
        self.last = next;
        self.stats.publishes += 1;
        drop(span);
        if let Some(obs) = &self.obs {
            obs.sync(&self.stats, self.revision, &self.governor.stats());
        }
        self.revision
    }

    /// Publishes only when the source revision moved since the last
    /// publish; the common per-tick call. Returns the serve revision
    /// when a publish happened.
    pub fn publish_if_changed(
        &mut self,
        source_revision: u64,
        ranked: &[ArbitrageOpportunity],
    ) -> Option<u64> {
        if self.last_source == Some(source_revision) {
            self.stats.skipped += 1;
            if let Some(obs) = &self.obs {
                obs.sync(&self.stats, self.revision, &self.governor.stats());
            }
            return None;
        }
        self.last_source = Some(source_revision);
        Some(self.publish(ranked.to_vec()))
    }

    /// Forgets the source anchor so the next `publish_if_changed` goes
    /// through regardless of the revision it reports. Call after
    /// swapping the underlying runtime (checkpoint/restore), whose
    /// revision counter restarts.
    pub fn reanchor(&mut self) {
        self.last_source = None;
    }

    /// The serve revision of the currently published snapshot.
    #[must_use]
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// Cumulative publish counters.
    #[must_use]
    pub fn stats(&self) -> PublishStats {
        self.stats
    }

    /// Admission counters from the shared governor.
    #[must_use]
    pub fn governor_stats(&self) -> GovernorStats {
        self.governor.stats()
    }

    /// A new reader handle in `class`. Cheap; create one per reader
    /// thread (the handle is `Send` but not `Sync`).
    #[must_use]
    pub fn handle(&self, class: ClientClass) -> ServeHandle {
        ServeHandle {
            cell: Arc::clone(&self.cell),
            slot: self.cell.register(),
            governor: Arc::clone(&self.governor),
            class,
            _not_sync: PhantomData,
        }
    }

    /// A delta subscription. The first [`Subscription::poll`] resyncs
    /// to the current snapshot; later polls return contiguous deltas.
    #[must_use]
    pub fn subscribe(&self) -> Subscription {
        Subscription {
            cell: Arc::clone(&self.cell),
            slot: self.cell.register(),
            seen: None,
        }
    }
}

/// A per-thread reader endpoint: wait-free loads, governed queries.
///
/// `Send` (move it into a reader thread) but **not** `Sync` — the pin
/// protocol requires the slot to be used from one thread at a time, so
/// sharing a handle is rejected at compile time. [`ServeHandle::clone`]
/// registers a fresh slot for the new owner.
#[derive(Debug)]
pub struct ServeHandle {
    cell: Arc<SnapshotCell>,
    slot: Arc<ReaderSlot>,
    governor: Arc<Governor>,
    class: ClientClass,
    /// `Cell<()>` is `Send + !Sync`; inherit exactly that.
    _not_sync: PhantomData<std::cell::Cell<()>>,
}

impl Clone for ServeHandle {
    fn clone(&self) -> Self {
        Self {
            cell: Arc::clone(&self.cell),
            slot: self.cell.register(),
            governor: Arc::clone(&self.governor),
            class: self.class,
            _not_sync: PhantomData,
        }
    }
}

impl ServeHandle {
    /// The reader's class.
    #[must_use]
    pub fn class(&self) -> ClientClass {
        self.class
    }

    /// Wait-free, ungoverned load of the current snapshot — no locks,
    /// no allocation beyond the `Arc` bump. Telemetry and internal
    /// consumers; external readers should go through
    /// [`ServeHandle::query`].
    #[must_use]
    pub fn load(&self) -> Arc<RankedSnapshot> {
        self.cell.load(&self.slot)
    }

    /// The governed read: admission first (token bucket + concurrency
    /// budget), then the same wait-free load. The returned guard pins
    /// the concurrency budget until dropped.
    ///
    /// # Errors
    ///
    /// [`ServeError`] when admission is denied; the snapshot is not
    /// loaded in that case.
    pub fn query(&self) -> Result<ReadGuard, ServeError> {
        let permit = self.governor.admit(self.class)?;
        Ok(ReadGuard {
            snapshot: self.cell.load(&self.slot),
            _permit: permit,
        })
    }
}

/// An admitted read: the snapshot plus the concurrency permit keeping
/// the budget honest while the caller holds results.
#[derive(Debug)]
pub struct ReadGuard {
    snapshot: Arc<RankedSnapshot>,
    _permit: Permit,
}

impl ReadGuard {
    /// The snapshot, detached from the permit (drops the budget hold).
    #[must_use]
    pub fn into_snapshot(self) -> Arc<RankedSnapshot> {
        self.snapshot
    }
}

impl std::ops::Deref for ReadGuard {
    type Target = RankedSnapshot;

    fn deref(&self) -> &RankedSnapshot {
        &self.snapshot
    }
}

/// What a [`Subscription::poll`] observed.
#[derive(Debug)]
pub enum SubscriptionUpdate {
    /// Nothing published since the last poll.
    Current,
    /// Contiguous deltas from the subscriber's revision to the latest.
    Deltas(Vec<Arc<RankingDelta>>),
    /// The chain broke (first poll, or the ring outran the subscriber):
    /// adopt this snapshot wholesale and continue from its revision.
    Resync(Arc<RankedSnapshot>),
}

/// A pull-based delta stream over the publisher's ring.
#[derive(Debug)]
pub struct Subscription {
    cell: Arc<SnapshotCell>,
    slot: Arc<ReaderSlot>,
    /// Last revision the subscriber has fully applied; `None` before
    /// the first resync.
    seen: Option<u64>,
}

impl Subscription {
    /// Drains everything published since the last poll. Locks only the
    /// delta ring (never the snapshot path) for the copy-out.
    pub fn poll(&mut self) -> SubscriptionUpdate {
        let Some(seen) = self.seen else {
            return self.resync();
        };
        let pending: Vec<Arc<RankingDelta>> = {
            let ring = self.cell.ring.lock().expect("delta ring lock");
            ring.deltas
                .iter()
                .filter(|delta| delta.from_revision >= seen)
                .cloned()
                .collect()
        };
        match pending.first() {
            None => {
                // Nothing newer in the ring; confirm we are current.
                if self.cell.load(&self.slot).revision() == seen {
                    SubscriptionUpdate::Current
                } else {
                    self.resync()
                }
            }
            Some(first) if first.from_revision == seen => {
                let mut chain = Vec::with_capacity(pending.len());
                let mut at = seen;
                for delta in pending {
                    if delta.from_revision != at {
                        return self.resync();
                    }
                    at = delta.to_revision;
                    chain.push(delta);
                }
                self.seen = Some(at);
                SubscriptionUpdate::Deltas(chain)
            }
            Some(_) => self.resync(),
        }
    }

    /// The revision the subscriber has applied up to, if anchored.
    #[must_use]
    pub fn seen_revision(&self) -> Option<u64> {
        self.seen
    }

    fn resync(&mut self) -> SubscriptionUpdate {
        let snapshot = self.cell.load(&self.slot);
        self.seen = Some(snapshot.revision());
        SubscriptionUpdate::Resync(snapshot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_send<T: Send>() {}

    #[test]
    fn handle_is_send() {
        assert_send::<ServeHandle>();
        assert_send::<Subscription>();
        assert_send::<Publisher>();
    }

    #[test]
    fn publish_skip_and_reanchor() {
        let mut publisher = Publisher::new(GovernorConfig::default());
        assert_eq!(publisher.publish_if_changed(5, &[]), Some(1));
        assert_eq!(publisher.publish_if_changed(5, &[]), None);
        assert_eq!(publisher.publish_if_changed(6, &[]), Some(2));
        publisher.reanchor();
        assert_eq!(publisher.publish_if_changed(6, &[]), Some(3));
        let stats = publisher.stats();
        assert_eq!(stats.publishes, 3);
        assert_eq!(stats.skipped, 1);
        assert_eq!(stats.noop_deltas, 3, "empty rankings diff to noops");
    }

    #[test]
    fn obs_mirrors_publish_stats() {
        let obs = Obs::default();
        let mut publisher = Publisher::new(GovernorConfig::default());
        publisher.set_obs(&obs);
        publisher.publish_if_changed(5, &[]);
        publisher.publish_if_changed(5, &[]);
        publisher.publish_if_changed(6, &[]);
        let snapshot = obs.snapshot();
        assert_eq!(snapshot.counter("serve.publishes"), Some(2));
        assert_eq!(snapshot.counter("serve.skipped"), Some(1));
        assert_eq!(snapshot.gauge("serve.revision"), Some(2.0));
        let publish_ns = snapshot
            .histogram("serve.publish_ns")
            .expect("publish span registered");
        assert_eq!(publish_ns.count, 2);
    }

    #[test]
    fn subscription_resyncs_then_streams() {
        let mut publisher = Publisher::new(GovernorConfig::default());
        publisher.publish(Vec::new());
        let mut sub = publisher.subscribe();
        let SubscriptionUpdate::Resync(snap) = sub.poll() else {
            panic!("first poll must resync");
        };
        assert_eq!(snap.revision(), 1);
        assert!(matches!(sub.poll(), SubscriptionUpdate::Current));
        publisher.publish(Vec::new());
        publisher.publish(Vec::new());
        let SubscriptionUpdate::Deltas(chain) = sub.poll() else {
            panic!("expected deltas");
        };
        assert_eq!(chain.len(), 2);
        assert_eq!(chain[0].from_revision, 1);
        assert_eq!(chain[1].to_revision, 3);
        assert_eq!(sub.seen_revision(), Some(3));
    }

    #[test]
    fn subscription_resyncs_after_ring_overflow() {
        let mut publisher = Publisher::new(GovernorConfig::default());
        publisher.publish(Vec::new());
        let mut sub = publisher.subscribe();
        sub.poll();
        for _ in 0..(DELTA_RING + 8) {
            publisher.publish(Vec::new());
        }
        assert!(matches!(sub.poll(), SubscriptionUpdate::Resync(_)));
        assert!(matches!(sub.poll(), SubscriptionUpdate::Current));
    }

    #[test]
    fn load_tracks_latest_publish() {
        let mut publisher = Publisher::new(GovernorConfig::default());
        let handle = publisher.handle(ClientClass::Interactive);
        assert_eq!(handle.load().revision(), 0);
        publisher.publish(Vec::new());
        assert_eq!(handle.load().revision(), 1);
        let held = handle.load();
        for _ in 0..100 {
            publisher.publish(Vec::new());
        }
        // The held snapshot outlives any number of later publishes.
        assert_eq!(held.revision(), 1);
        assert_eq!(handle.load().revision(), 101);
    }
}
