//! Immutable ranked snapshots: the unit of publication.
//!
//! A [`RankedSnapshot`] freezes one merged ranking (the exact
//! `Vec<ArbitrageOpportunity>` the runtime produced at a
//! `standing_revision`) together with every secondary index a reader
//! might want — by token, by pool, and by net-profit floor — all built
//! **once** at publish time. Readers then answer point queries with
//! slice walks over immutable data: no sorting, no hashing, no
//! allocation beyond the caller's own collection.

use std::collections::BTreeMap;

use arb_amm::pool::PoolId;
use arb_amm::token::TokenId;
use arb_engine::ArbitrageOpportunity;

/// An immutable ranking at a single serve revision, plus query indexes.
///
/// `entries` is stored in execution-priority order — bit-identical to
/// what [`arb_engine::ShardedRuntime::apply_events`] returned — so every
/// query is a view over the oracle ranking, never a recomputation.
#[derive(Debug)]
pub struct RankedSnapshot {
    revision: u64,
    entries: Vec<ArbitrageOpportunity>,
    /// Rank indexes of every entry whose cycle touches the token,
    /// ascending (i.e. best-first).
    by_token: BTreeMap<TokenId, Vec<u32>>,
    /// Rank indexes of every entry whose cycle crosses the pool,
    /// ascending.
    by_pool: BTreeMap<PoolId, Vec<u32>>,
    /// Entry indexes ordered by descending net profit (rank breaks
    /// ties), so any profit floor selects a prefix.
    net_desc: Vec<u32>,
}

impl RankedSnapshot {
    /// Freezes a ranking and builds its indexes. `entries` must already
    /// be in execution-priority order; the snapshot never reorders it.
    #[must_use]
    pub fn build(revision: u64, entries: Vec<ArbitrageOpportunity>) -> Self {
        let mut by_token: BTreeMap<TokenId, Vec<u32>> = BTreeMap::new();
        let mut by_pool: BTreeMap<PoolId, Vec<u32>> = BTreeMap::new();
        for (rank, opp) in entries.iter().enumerate() {
            let rank = rank as u32;
            for &token in opp.cycle.tokens() {
                let ranks = by_token.entry(token).or_default();
                // A cycle visits each token once, but stay safe if that
                // invariant ever relaxes: ranks must be strictly
                // ascending for the best-first guarantee.
                if ranks.last() != Some(&rank) {
                    ranks.push(rank);
                }
            }
            for &pool in opp.cycle.pools() {
                let ranks = by_pool.entry(pool).or_default();
                if ranks.last() != Some(&rank) {
                    ranks.push(rank);
                }
            }
        }
        let mut net_desc: Vec<u32> = (0..entries.len() as u32).collect();
        net_desc.sort_by(|&a, &b| {
            entries[b as usize]
                .net_profit
                .value()
                .total_cmp(&entries[a as usize].net_profit.value())
                .then(a.cmp(&b))
        });
        Self {
            revision,
            entries,
            by_token,
            by_pool,
            net_desc,
        }
    }

    /// The zero-entry snapshot published before the first refresh.
    #[must_use]
    pub fn empty() -> Self {
        Self::build(0, Vec::new())
    }

    /// The serve-side revision this ranking was published at (monotone
    /// across the publisher's lifetime, including checkpoint/restore).
    #[must_use]
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// Number of ranked opportunities.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the ranking is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The full ranking in execution-priority order.
    #[must_use]
    pub fn entries(&self) -> &[ArbitrageOpportunity] {
        &self.entries
    }

    /// The best `k` opportunities (the whole ranking when `k` exceeds
    /// it) — a prefix slice, zero copies.
    #[must_use]
    pub fn top_k(&self, k: usize) -> &[ArbitrageOpportunity] {
        &self.entries[..k.min(self.entries.len())]
    }

    /// Every ranked opportunity whose cycle trades through `token`,
    /// best-first.
    pub fn by_token(&self, token: TokenId) -> impl Iterator<Item = &ArbitrageOpportunity> + '_ {
        self.by_token
            .get(&token)
            .map(Vec::as_slice)
            .unwrap_or_default()
            .iter()
            .map(|&rank| &self.entries[rank as usize])
    }

    /// Every ranked opportunity whose cycle crosses `pool`, best-first.
    pub fn by_pool(&self, pool: PoolId) -> impl Iterator<Item = &ArbitrageOpportunity> + '_ {
        self.by_pool
            .get(&pool)
            .map(Vec::as_slice)
            .unwrap_or_default()
            .iter()
            .map(|&rank| &self.entries[rank as usize])
    }

    /// Every ranked opportunity clearing the net-profit floor, in
    /// descending net profit. A prefix walk of the prebuilt profit
    /// index: `O(log n)` to locate the cut, `O(matches)` to yield.
    pub fn min_net_profit(
        &self,
        floor_usd: f64,
    ) -> impl Iterator<Item = &ArbitrageOpportunity> + '_ {
        let cut = self
            .net_desc
            .partition_point(|&rank| self.entries[rank as usize].net_profit.value() >= floor_usd);
        self.net_desc[..cut]
            .iter()
            .map(|&rank| &self.entries[rank as usize])
    }

    /// Panics unless every index is coherent with `entries` (ascending
    /// rank lists covering exactly the cycles that reference each key;
    /// `net_desc` a permutation in descending net order). Test support —
    /// the serving path never needs it.
    pub fn assert_coherent(&self) {
        for (token, ranks) in &self.by_token {
            assert!(
                ranks.windows(2).all(|w| w[0] < w[1]),
                "by_token ranks not strictly ascending"
            );
            for &rank in ranks {
                assert!(
                    self.entries[rank as usize].cycle.tokens().contains(token),
                    "by_token index points at a cycle missing the token"
                );
            }
        }
        for (pool, ranks) in &self.by_pool {
            assert!(
                ranks.windows(2).all(|w| w[0] < w[1]),
                "by_pool ranks not strictly ascending"
            );
            for &rank in ranks {
                assert!(
                    self.entries[rank as usize].cycle.pools().contains(pool),
                    "by_pool index points at a cycle missing the pool"
                );
            }
        }
        assert_eq!(self.net_desc.len(), self.entries.len());
        let mut seen = vec![false; self.entries.len()];
        for w in self.net_desc.windows(2) {
            let (a, b) = (
                self.entries[w[0] as usize].net_profit.value(),
                self.entries[w[1] as usize].net_profit.value(),
            );
            assert!(
                a > b || (a.total_cmp(&b).is_eq() && w[0] < w[1]),
                "net_desc out of order"
            );
        }
        for &rank in &self.net_desc {
            assert!(!seen[rank as usize], "net_desc repeats a rank");
            seen[rank as usize] = true;
        }
    }
}
