//! Serving-layer errors: admission denials with actionable hints.

use crate::governor::ClientClass;

/// Why a query was not admitted. Denials are cheap and immediate —
/// the governor never blocks a caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeError {
    /// The caller's class bucket is dry; retry after the hinted delay.
    RateLimited {
        /// The class whose envelope was exceeded.
        class: ClientClass,
        /// Nanoseconds until one token accrues at the sustained rate.
        retry_nanos: u64,
    },
    /// The global in-flight budget is exhausted.
    Saturated {
        /// The configured concurrency ceiling.
        max_concurrent: usize,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::RateLimited { class, retry_nanos } => write!(
                f,
                "rate limited: {class} class dry, retry in {retry_nanos}ns"
            ),
            Self::Saturated { max_concurrent } => {
                write!(f, "saturated: {max_concurrent} queries already in flight")
            }
        }
    }
}

impl std::error::Error for ServeError {}
