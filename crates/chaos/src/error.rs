//! Errors surfaced by the chaos-soak harness.

use std::error::Error;
use std::fmt;

use arb_engine::EngineError;
use arb_ingest::IngestError;
use arb_journal::JournalError;
use arb_workloads::WorkloadError;

/// A chaos-soak run failed for a reason the harness does not treat as
/// an injected, recoverable fault.
#[derive(Debug)]
pub enum ChaosError {
    /// Scenario construction or replay failed.
    Workload(String),
    /// The ingest pipeline failed outside the planned fault surface.
    Ingest(IngestError),
    /// Journal plumbing (open, snapshot, recovery) failed.
    Journal(JournalError),
    /// The oracle leg's engine failed (never fault-injected, so this is
    /// always a genuine bug).
    Engine(EngineError),
    /// A shard panicked more times than the supervisor's recovery
    /// budget allows.
    RecoveryExhausted {
        /// Recoveries performed before giving up.
        recoveries: u32,
    },
}

impl fmt::Display for ChaosError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChaosError::Workload(msg) => write!(f, "workload error: {msg}"),
            ChaosError::Ingest(e) => write!(f, "ingest error: {e}"),
            ChaosError::Journal(e) => write!(f, "journal error: {e}"),
            ChaosError::Engine(e) => write!(f, "engine error: {e}"),
            ChaosError::RecoveryExhausted { recoveries } => write!(
                f,
                "recovery budget exhausted after {recoveries} supervised recoveries"
            ),
        }
    }
}

impl Error for ChaosError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ChaosError::Ingest(e) => Some(e),
            ChaosError::Journal(e) => Some(e),
            ChaosError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<IngestError> for ChaosError {
    fn from(e: IngestError) -> Self {
        ChaosError::Ingest(e)
    }
}

impl From<JournalError> for ChaosError {
    fn from(e: JournalError) -> Self {
        ChaosError::Journal(e)
    }
}

impl From<EngineError> for ChaosError {
    fn from(e: EngineError) -> Self {
        ChaosError::Engine(e)
    }
}

impl From<WorkloadError> for ChaosError {
    fn from(e: WorkloadError) -> Self {
        ChaosError::Workload(e.to_string())
    }
}
