//! The chaos-soak harness: drive a workload through the full journaled
//! ingest pipeline under a [`FaultPlan`], supervise panics, and prove
//! the run reconverges to a never-faulted oracle.
//!
//! Layout of one soak:
//!
//! * **Oracle leg** — the scenario fed straight into a plain
//!   [`ShardedRuntime`], no ingest, no journal, no faults. Its final
//!   ranking is the ground truth.
//! * **Faulted leg** — the same scenario through [`Ingestor`] →
//!   journal (with a [`ChaosIo`] shim) → [`IngestDriver`] (with a
//!   [`ChaosTickHook`]), each source's stream first passed through a
//!   [`SourceChaos`] lens. A supervisor catches mid-tick panics, dumps
//!   the flight recorder, recovers the runtime and price table from
//!   the journal via [`Recovery::recover_journaled`], and resumes the
//!   stream at the recovered positions.
//! * **Quiet tail** — fault-free idle seals that let the lenses release
//!   held/repaired events and the journal health machine recommit any
//!   backlog, after which the final rankings are fingerprinted and
//!   compared bit-for-bit.
//!
//! Everything that decides *what happens* is a pure function of the
//! plan seed and deterministic counters, so a same-seed rerun
//! reproduces the identical fault log and the identical final
//! fingerprint — wall clock is only ever *measured* (recovery timing),
//! never consulted.

use std::panic::{self, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use arb_amm::token::TokenId;
use arb_cex::feed::PriceTable;
use arb_dexsim::events::Event;
use arb_engine::{
    ArbitrageOpportunity, OpportunityPipeline, PipelineConfig, RuntimeReport, ShardedRuntime,
};
use arb_ingest::{
    IngestConfig, IngestDriver, IngestError, IngestStats, Ingestor, LagPolicy, SourceId,
};
use arb_journal::{JournalConfig, JournalError, JournalWriter, Recovery, SnapshotStore};
use arb_obs::Obs;
use arb_workloads::{Scenario, ScenarioConfig, WorkloadSpec};

use crate::error::ChaosError;
use crate::injector::{ChaosInjector, InjectedFault};
use crate::journal_chaos::ChaosIo;
use crate::plan::{FaultKind, FaultPlan};
use crate::site;
use crate::source_chaos::SourceChaos;
use crate::tick_chaos::ChaosTickHook;

/// Name of the flight-recorder dump the supervisor writes into the
/// soak directory on every recovery.
pub const FLIGHT_DUMP: &str = "chaos-flight.log";

/// Bound on commit retries while flushing the journal backlog during a
/// recovery. Each attempt advances the `journal.io` coordinate, so any
/// finite plan window is outrun long before this.
const MAX_FLUSH_ATTEMPTS: u32 = 4096;

/// Sizing and placement for one soak run.
#[derive(Debug, Clone)]
pub struct SoakConfig {
    /// Scenario sizing (seed, universe, tick count).
    pub scenario: ScenarioConfig,
    /// Engine shard budget (both legs).
    pub shards: usize,
    /// Write a snapshot every this many ticks when the journal backlog
    /// is clear (`0` = never; recovery then replays from genesis).
    pub checkpoint_every: u64,
    /// Fault-free idle seals after the last scenario tick. Must cover
    /// the journal health machine's worst-case backoff so a degraded
    /// journal recommits before the final fingerprint.
    pub quiet_tail: usize,
    /// Journal/snapshot directory. Must be empty or absent — the soak
    /// owns its contents.
    pub dir: PathBuf,
    /// Supervised recoveries allowed before the soak gives up.
    pub max_recoveries: u32,
}

impl SoakConfig {
    /// Defaults sized like the equivalence suite (48 pools, 32 ticks),
    /// journaling into `dir`.
    #[must_use]
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        SoakConfig {
            scenario: ScenarioConfig::default(),
            shards: 4,
            checkpoint_every: 8,
            quiet_tail: 24,
            dir: dir.into(),
            max_recoveries: 8,
        }
    }
}

/// What one soak run produced.
#[derive(Debug)]
pub struct SoakOutcome {
    /// The workload that ran.
    pub workload: &'static str,
    /// Every fault that actually fired, in fire order.
    pub faults: Vec<InjectedFault>,
    /// Fingerprint of the faulted leg's final ranking.
    pub fingerprint: u64,
    /// Fingerprint of the oracle leg's final ranking.
    pub oracle_fingerprint: u64,
    /// Supervised panic recoveries performed.
    pub recoveries: u32,
    /// Wall time of each recovery (journal flush + restore + replay +
    /// rewire), in nanoseconds.
    pub recovery_wall_ns: Vec<u64>,
    /// The faulted leg's ingest counters at the end of the run.
    pub stats: IngestStats,
    /// Size of the final ranking (guards against vacuous equality).
    pub final_opportunities: usize,
    /// Journal events still uncommitted at the end (should be zero —
    /// the quiet tail exists to drain this).
    pub journal_pending_at_end: u64,
}

impl SoakOutcome {
    /// Whether the faulted leg's final ranking is bit-identical to the
    /// never-faulted oracle's.
    #[must_use]
    pub fn reconverged(&self) -> bool {
        self.fingerprint == self.oracle_fingerprint
    }

    /// p99 of recovery wall times, in nanoseconds (0 when no recovery
    /// happened).
    #[must_use]
    pub fn recovery_p99_ns(&self) -> u64 {
        percentile(&self.recovery_wall_ns, 99)
    }
}

/// Nearest-rank percentile over unsorted samples.
#[must_use]
pub fn percentile(samples: &[u64], pct: u32) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = (sorted.len() as u64 * u64::from(pct)).div_ceil(100);
    let index = ((rank.max(1) - 1) as usize).min(sorted.len() - 1);
    sorted[index]
}

/// Order-sensitive fingerprint of a ranking: folds every field the
/// equivalence suite compares bit-for-bit (cycle tokens/pools, strategy,
/// gross and net profit bits, input-vector shape).
#[must_use]
pub fn fingerprint(opportunities: &[ArbitrageOpportunity]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    let mut fold = |value: u64| {
        hash = mix(hash ^ value);
    };
    fold(opportunities.len() as u64);
    for opportunity in opportunities {
        for token in opportunity.cycle.tokens() {
            fold(token.index() as u64);
        }
        for pool in opportunity.cycle.pools() {
            fold(pool.index() as u64 | 1 << 32);
        }
        for byte in format!("{:?}", opportunity.strategy).bytes() {
            fold(u64::from(byte) | 1 << 33);
        }
        fold(opportunity.gross_profit.value().to_bits());
        fold(opportunity.net_profit.value().to_bits());
        fold(opportunity.optimal_inputs.len() as u64);
    }
    hash
}

fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The canonical all-sites plan for a run of `ticks` scenario ticks:
/// bad-data and outage windows on both sources, every journal fault
/// kind, a slow-shard window, and one mid-tick panic at the
/// three-quarter mark. Tick 0 is left clean so the genesis feed prefix
/// lands before the first fault.
#[must_use]
pub fn standard_plan(seed: u64, ticks: u64) -> FaultPlan {
    let t = ticks.max(16);
    let feed = site::source("feed");
    let chain = site::source("chain");
    FaultPlan::new(seed)
        // Feed source: bad data.
        .with_window(&feed, t / 8..t / 4, FaultKind::GarbagePrice, 400_000)
        .with_window(&feed, t / 4..t * 3 / 8, FaultKind::DropEvents, 400_000)
        .with_window(&feed, t / 2..t * 5 / 8, FaultKind::DuplicateEvents, 500_000)
        // Chain source: outages and replays.
        .with_window(&chain, t / 6..t / 6 + 2, FaultKind::DelayEvents, 1_000_000)
        .with_window(
            &chain,
            t * 3 / 8..t * 3 / 8 + 2,
            FaultKind::StallSource,
            1_000_000,
        )
        .with_window(&chain, t * 5 / 8..t * 3 / 4, FaultKind::DropEvents, 300_000)
        // Journal I/O (commit-index coordinates track seal ticks).
        .with_window(
            site::JOURNAL_IO,
            t / 3..t / 3 + 2,
            FaultKind::WriteError,
            1_000_000,
        )
        .with_window(
            site::JOURNAL_IO,
            t / 2..t / 2 + 1,
            FaultKind::TornWrite,
            1_000_000,
        )
        .with_window(
            site::JOURNAL_IO,
            t * 2 / 3..t * 2 / 3 + 1,
            FaultKind::FsyncError,
            1_000_000,
        )
        .with_window(
            site::JOURNAL_IO,
            t * 7 / 8..t * 7 / 8 + 1,
            FaultKind::DiskFull,
            1_000_000,
        )
        // Shards: one slow window, one mid-tick panic.
        .with_window(
            site::shard(0),
            t / 3..t / 3 + 2,
            FaultKind::SlowTick,
            1_000_000,
        )
        .with_window(
            site::shard(0),
            t * 3 / 4..t * 3 / 4 + 1,
            FaultKind::PanicTick,
            1_000_000,
        )
}

/// Runs one workload under `plan` and compares against the oracle.
///
/// # Errors
///
/// [`ChaosError`] when the scenario cannot be built, the pipeline fails
/// outside the planned fault surface, or the recovery budget runs out.
pub fn run_soak(
    spec: &WorkloadSpec,
    config: &SoakConfig,
    plan: FaultPlan,
    obs: Option<&Obs>,
) -> Result<SoakOutcome, ChaosError> {
    let scenario = spec.scenario(&config.scenario)?;
    let pipeline = OpportunityPipeline::new(PipelineConfig::default());

    // Oracle leg: the never-faulted ground truth.
    let mut oracle_feed = scenario.feed.clone();
    let mut oracle = ShardedRuntime::new(pipeline.clone(), scenario.pools.clone(), config.shards)?;
    for batch in &scenario.ticks {
        batch.apply_feed(&mut oracle_feed);
        oracle.apply_events(&batch.events, &oracle_feed)?;
    }
    let oracle_final = oracle.apply_events(&[], &oracle_feed)?;
    let oracle_fingerprint = fingerprint(&oracle_final.opportunities);

    // Faulted leg.
    std::fs::create_dir_all(&config.dir).map_err(|e| ChaosError::Journal(JournalError::from(e)))?;
    let injector = Arc::new(ChaosInjector::new(plan));
    if let Some(obs) = obs {
        injector.set_obs(obs);
    }
    let mut rig = SoakRig::build(&scenario, config, &pipeline, &injector, obs)?;

    let mut feed_chaos = SourceChaos::new(Arc::clone(&injector), site::source("feed"));
    let mut chain_chaos = SourceChaos::new(Arc::clone(&injector), site::source("chain"));

    // The faulted leg starts with an *empty* price table and learns the
    // genesis prices from the stream itself, so the journal alone can
    // rebuild the feed on recovery. Sorted for a deterministic stream.
    let mut genesis_feed: Vec<(TokenId, f64)> = scenario.feed.iter().collect();
    genesis_feed.sort_by_key(|&(token, _)| token.index());

    for (tick_index, batch) in scenario.ticks.iter().enumerate() {
        let tick = tick_index as u64;
        let mut feed_events: Vec<Event> = Vec::new();
        if tick_index == 0 {
            feed_events.extend(
                genesis_feed
                    .iter()
                    .map(|&(token, price)| Event::feed_price(token, price)),
            );
        }
        feed_events.extend(
            batch
                .feed_moves
                .iter()
                .map(|&(token, price)| Event::feed_price(token, price)),
        );
        rig.offer_feed(feed_chaos.transform(tick, feed_events))?;
        rig.offer_chain(chain_chaos.transform(tick, batch.events.clone()))?;
        rig.seal_and_drain()?;
        if config.checkpoint_every > 0 && (tick + 1).is_multiple_of(config.checkpoint_every) {
            rig.maybe_checkpoint()?;
        }
    }

    // Quiet tail: release lens backlogs, then idle seals until the
    // journal backlog drains and health machines walk back to normal.
    rig.offer_feed(feed_chaos.flush())?;
    rig.offer_chain(chain_chaos.flush())?;
    for _ in 0..config.quiet_tail.max(1) {
        rig.seal_and_drain()?;
    }

    let final_report = rig
        .last_report
        .as_ref()
        .expect("at least one batch was sealed and applied");
    let soak_fingerprint = fingerprint(&final_report.opportunities);
    let final_opportunities = final_report.opportunities.len();
    let stats = rig.ingestor.stats();
    let journal_pending_at_end = rig
        .writer
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .pending_events();

    if let Some(obs) = obs {
        let reconverged = u64::from(soak_fingerprint == oracle_fingerprint);
        obs.registry()
            .gauge("chaos.reconverged")
            .set(reconverged as f64);
    }

    Ok(SoakOutcome {
        workload: scenario.name,
        faults: injector.log(),
        fingerprint: soak_fingerprint,
        oracle_fingerprint,
        recoveries: rig.recoveries,
        recovery_wall_ns: rig.recovery_wall_ns,
        stats,
        final_opportunities,
        journal_pending_at_end,
    })
}

/// The faulted leg's moving parts, rebuilt wholesale on every
/// supervised recovery.
struct SoakRig<'a> {
    config: &'a SoakConfig,
    pipeline: OpportunityPipeline,
    scenario: &'a Scenario,
    injector: Arc<ChaosInjector>,
    obs: Option<Obs>,
    writer: Arc<Mutex<JournalWriter>>,
    store: SnapshotStore,
    ingestor: Ingestor,
    driver: IngestDriver,
    feed_source: SourceId,
    chain_source: SourceId,
    /// Full transformed per-source streams (feed, chain) — the replay
    /// source for delivered-but-not-yet-durable suffixes on recovery.
    history: [Vec<Event>; 2],
    recoveries: u32,
    recovery_wall_ns: Vec<u64>,
    last_report: Option<RuntimeReport>,
}

impl<'a> SoakRig<'a> {
    fn ingest_config() -> IngestConfig {
        IngestConfig {
            queue_capacity: 8,
            lag_policy: LagPolicy::BlockSource,
            coalesce: true,
            max_stall: Some(Duration::from_millis(50)),
            ..IngestConfig::default()
        }
    }

    fn build(
        scenario: &'a Scenario,
        config: &'a SoakConfig,
        pipeline: &OpportunityPipeline,
        injector: &Arc<ChaosInjector>,
        obs: Option<&Obs>,
    ) -> Result<Self, ChaosError> {
        let mut writer = JournalWriter::open(&config.dir, JournalConfig::default())
            .map_err(|e| ChaosError::Journal(JournalError::from(e)))?;
        writer.set_io_shim(Box::new(ChaosIo::new(Arc::clone(injector))));
        let writer = Arc::new(Mutex::new(writer));
        let store = SnapshotStore::new(&config.dir)?;

        let mut ingestor = Ingestor::new(Self::ingest_config()).with_journal(Arc::clone(&writer));
        let feed_source = ingestor.register_source("feed");
        let chain_source = ingestor.register_source("chain");
        if let Some(obs) = obs {
            ingestor.set_obs(obs);
        }
        let runtime = ShardedRuntime::new(pipeline.clone(), scenario.pools.clone(), config.shards)?;
        let mut driver = IngestDriver::new(runtime, PriceTable::new(), ingestor.handle());
        if let Some(obs) = obs {
            driver.set_obs(obs);
        }
        driver
            .runtime_mut()
            .set_tick_hook(Arc::new(ChaosTickHook::new(Arc::clone(injector))));

        Ok(SoakRig {
            config,
            pipeline: pipeline.clone(),
            scenario,
            injector: Arc::clone(injector),
            obs: obs.cloned(),
            writer,
            store,
            ingestor,
            driver,
            feed_source,
            chain_source,
            history: [Vec::new(), Vec::new()],
            recoveries: 0,
            recovery_wall_ns: Vec::new(),
            last_report: None,
        })
    }

    fn offer_feed(&mut self, events: Vec<Event>) -> Result<(), ChaosError> {
        self.history[0].extend(events.iter().copied());
        self.ingestor.offer(self.feed_source, events)?;
        Ok(())
    }

    fn offer_chain(&mut self, events: Vec<Event>) -> Result<(), ChaosError> {
        self.history[1].extend(events.iter().copied());
        self.ingestor.offer(self.chain_source, events)?;
        Ok(())
    }

    /// Seals the staged block and drains it into the runtime,
    /// supervising the drain: a panicked tick triggers journal-based
    /// recovery and a retry of the same coordinate (the injector's
    /// fire-once latch guarantees the retry can pass).
    fn seal_and_drain(&mut self) -> Result<(), ChaosError> {
        loop {
            match self.ingestor.seal_block() {
                // A stall timeout merged the block into the queue tail;
                // nothing is lost and the drain below clears the queue.
                Ok(_) | Err(IngestError::StallTimeout { .. }) => {}
                Err(error) => return Err(error.into()),
            }
            match panic::catch_unwind(AssertUnwindSafe(|| self.driver.drain())) {
                Ok(Ok(report)) => {
                    if let Some(report) = report {
                        self.last_report = Some(report);
                    }
                    return Ok(());
                }
                Ok(Err(error)) => return Err(error.into()),
                Err(_panic_payload) => self.recover()?,
            }
        }
    }

    /// The supervisor: flight-dump, flush the journal backlog, rebuild
    /// runtime + feed from disk, rewire the ingest front-end at the
    /// recovered stream positions, and re-offer anything delivered but
    /// not yet durable.
    fn recover(&mut self) -> Result<(), ChaosError> {
        self.recoveries += 1;
        if self.recoveries > self.config.max_recoveries {
            return Err(ChaosError::RecoveryExhausted {
                recoveries: self.recoveries - 1,
            });
        }
        let started = Instant::now();
        if let Some(obs) = &self.obs {
            let _ = obs.dump_flight_to(&self.config.dir.join(FLIGHT_DUMP));
            obs.registry().counter("chaos.recoveries").inc();
        }

        // Make everything the dead runtime had applied durable, so the
        // journal replay reaches the exact pre-panic stream position.
        // Each attempt advances the chaos commit index, so finite fault
        // windows cannot pin this loop.
        {
            let mut writer = self.writer.lock().unwrap_or_else(PoisonError::into_inner);
            let mut attempts = 0u32;
            while writer.pending_events() > 0 {
                if writer.commit().is_ok() {
                    break;
                }
                attempts += 1;
                if attempts > MAX_FLUSH_ATTEMPTS {
                    return Err(ChaosError::Journal(JournalError::from(
                        std::io::Error::other("journal backlog would not flush during recovery"),
                    )));
                }
            }
        }

        let recovered = Recovery::new(&self.config.dir, self.pipeline.clone(), self.config.shards)
            .with_genesis_pools(self.scenario.pools.clone())
            .recover_journaled()?;
        let feed_pos = recovered.source_positions.first().copied().unwrap_or(0)
            + recovered.feed_events_replayed as u64;
        let chain_pos = recovered.source_positions.get(1).copied().unwrap_or(0)
            + (recovered.genesis_bootstrap_events + recovered.chain_events_replayed) as u64;

        let mut ingestor =
            Ingestor::new(Self::ingest_config()).with_journal(Arc::clone(&self.writer));
        let feed_source = ingestor.register_source("feed");
        let chain_source = ingestor.register_source("chain");
        ingestor.restore_positions(&[feed_pos, chain_pos])?;
        if let Some(obs) = &self.obs {
            ingestor.set_obs(obs);
        }
        let mut driver = IngestDriver::new(recovered.runtime, recovered.feed, ingestor.handle());
        if let Some(obs) = &self.obs {
            driver.set_obs(obs);
        }
        driver
            .runtime_mut()
            .set_tick_hook(Arc::new(ChaosTickHook::new(Arc::clone(&self.injector))));

        // Replay the delivered-but-not-durable suffix (empty whenever
        // the backlog flush above succeeded, which it must have to get
        // here — kept for positions recorded by an older snapshot).
        let feed_suffix: Vec<Event> = self.history[0]
            .get(feed_pos as usize..)
            .unwrap_or_default()
            .to_vec();
        let chain_suffix: Vec<Event> = self.history[1]
            .get(chain_pos as usize..)
            .unwrap_or_default()
            .to_vec();
        ingestor.offer(feed_source, feed_suffix)?;
        ingestor.offer(chain_source, chain_suffix)?;

        self.ingestor = ingestor;
        self.driver = driver;
        self.feed_source = feed_source;
        self.chain_source = chain_source;

        let wall = started.elapsed().as_nanos() as u64;
        if let Some(obs) = &self.obs {
            obs.registry().histogram("chaos.recovery_ns").record(wall);
        }
        self.recovery_wall_ns.push(wall);
        Ok(())
    }

    /// Writes a snapshot if (and only if) the journal backlog is clear —
    /// a snapshot taken over undurable state would lie about its offset.
    fn maybe_checkpoint(&mut self) -> Result<(), ChaosError> {
        let durable_offset = {
            let writer = self.writer.lock().unwrap_or_else(PoisonError::into_inner);
            if writer.pending_events() > 0 {
                return Ok(());
            }
            writer.durable_offset()
        };
        let mut checkpoint = self.driver.checkpoint();
        checkpoint.source_positions = self.ingestor.source_positions();
        self.store.write(durable_offset, &checkpoint)?;
        Ok(())
    }
}
