//! Seeded fault plans: *which* fault fires *where* and *when*, as a
//! pure function of `(seed, site, tick)`.
//!
//! No wall clock, no global RNG state: whether a window fires at a
//! given coordinate is decided by hashing the plan seed with the site
//! name and the tick, so the same plan over the same run produces the
//! exact same fault schedule every time — the property the chaos soak's
//! same-seed-rerun assertion rests on. "Tick" is whatever monotone
//! counter the injected site naturally has: the scenario tick for
//! sources, the commit index for journal I/O, the runtime tick for
//! shards.

use std::fmt;
use std::ops::Range;

/// One kind of injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum FaultKind {
    /// Hold a source's events one-plus ticks, then release in order.
    DelayEvents,
    /// Hold a source's events for the whole window (a feed/chain
    /// outage); released when the window clears.
    StallSource,
    /// Emit an idempotent event twice, back to back.
    DuplicateEvents,
    /// Swallow an idempotent event (repaired after the window closes
    /// unless a later genuine event superseded it).
    DropEvents,
    /// Replace a feed price with NaN garbage (the price table rejects
    /// it; the genuine price is repaired after the window).
    GarbagePrice,
    /// Fail a journal batch write outright.
    WriteError,
    /// Land the batch but fail the fsync.
    FsyncError,
    /// Land a deterministic prefix of the batch, then fail (a torn
    /// tail for reopen-healing to cut back).
    TornWrite,
    /// Fail the write with `StorageFull` (ENOSPC).
    DiskFull,
    /// Busy-spin a shard's tick (a slow worker, not a dead one).
    SlowTick,
    /// Panic mid-tick on a shard's flush path.
    PanicTick,
}

impl FaultKind {
    /// Stable kebab-case label (metric suffixes, logs).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::DelayEvents => "delay-events",
            FaultKind::StallSource => "stall-source",
            FaultKind::DuplicateEvents => "duplicate-events",
            FaultKind::DropEvents => "drop-events",
            FaultKind::GarbagePrice => "garbage-price",
            FaultKind::WriteError => "write-error",
            FaultKind::FsyncError => "fsync-error",
            FaultKind::TornWrite => "torn-write",
            FaultKind::DiskFull => "disk-full",
            FaultKind::SlowTick => "slow-tick",
            FaultKind::PanicTick => "panic-tick",
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One scheduled fault: `kind` fires at `site` on each tick in `ticks`
/// with probability `rate_ppm` / 1 000 000 (deterministically hashed,
/// not sampled — `1_000_000` fires every tick of the window).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultWindow {
    /// Target site (see [`crate::site`]).
    pub site: String,
    /// Half-open tick range the window covers.
    pub ticks: Range<u64>,
    /// What to inject.
    pub kind: FaultKind,
    /// Fire rate in parts per million of the window's ticks.
    pub rate_ppm: u32,
}

/// A seeded schedule of [`FaultWindow`]s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    windows: Vec<FaultWindow>,
}

impl FaultPlan {
    /// An empty plan under `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            windows: Vec::new(),
        }
    }

    /// Adds a window (builder style).
    #[must_use]
    pub fn with_window(
        mut self,
        site: impl Into<String>,
        ticks: Range<u64>,
        kind: FaultKind,
        rate_ppm: u32,
    ) -> Self {
        self.windows.push(FaultWindow {
            site: site.into(),
            ticks,
            kind,
            rate_ppm: rate_ppm.min(1_000_000),
        });
        self
    }

    /// The plan seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The scheduled windows.
    #[must_use]
    pub fn windows(&self) -> &[FaultWindow] {
        &self.windows
    }

    /// Whether any window covers `(site, tick)` — firing or not. Used
    /// to decide when dropped-event repairs may be released.
    #[must_use]
    pub fn window_active(&self, site: &str, tick: u64) -> bool {
        self.windows
            .iter()
            .any(|w| w.site == site && w.ticks.contains(&tick))
    }

    /// The fault (if any) that fires at `(site, tick)`: the first
    /// covering window whose hash draw lands under its rate. Pure — two
    /// calls with the same arguments always agree.
    #[must_use]
    pub fn fault_at(&self, site: &str, tick: u64) -> Option<FaultKind> {
        self.windows
            .iter()
            .filter(|w| w.site == site && w.ticks.contains(&tick))
            .find(|w| self.draw(site, tick, w.kind.label()) % 1_000_000 < u64::from(w.rate_ppm))
            .map(|w| w.kind)
    }

    /// Deterministic auxiliary randomness for a firing fault's
    /// parameters (e.g. where a torn write cuts). Vary `salt` for
    /// independent draws at one coordinate.
    #[must_use]
    pub fn aux(&self, site: &str, tick: u64, salt: u64) -> u64 {
        self.draw(site, tick, "aux").wrapping_add(splitmix64(salt))
    }

    fn draw(&self, site: &str, tick: u64, label: &str) -> u64 {
        splitmix64(
            self.seed
                ^ fnv1a(site)
                ^ fnv1a(label).rotate_left(17)
                ^ tick.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        )
    }
}

/// FNV-1a over a string — a stable, dependency-free site hash.
fn fnv1a(s: &str) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for byte in s.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// `splitmix64` finalizer — a cheap, well-mixed pure hash.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> FaultPlan {
        FaultPlan::new(42)
            .with_window("ingest.source.feed", 10..20, FaultKind::DropEvents, 500_000)
            .with_window("journal.io", 5..8, FaultKind::WriteError, 1_000_000)
    }

    #[test]
    fn full_rate_windows_fire_every_covered_tick() {
        let plan = plan();
        for tick in 5..8 {
            assert_eq!(
                plan.fault_at("journal.io", tick),
                Some(FaultKind::WriteError)
            );
        }
        assert_eq!(plan.fault_at("journal.io", 4), None);
        assert_eq!(plan.fault_at("journal.io", 8), None);
        assert_eq!(plan.fault_at("engine.shard.0", 6), None);
    }

    #[test]
    fn partial_rates_fire_deterministically_and_partially() {
        let plan = plan();
        let fired: Vec<u64> = (10..20)
            .filter(|&t| plan.fault_at("ingest.source.feed", t).is_some())
            .collect();
        let again: Vec<u64> = (10..20)
            .filter(|&t| plan.fault_at("ingest.source.feed", t).is_some())
            .collect();
        assert_eq!(fired, again, "pure function of (seed, site, tick)");
        assert!(
            !fired.is_empty() && fired.len() < 10,
            "a 50% window should fire some but not all of 10 ticks: {fired:?}"
        );
    }

    #[test]
    fn different_seeds_shuffle_the_schedule() {
        let a = plan();
        let b = FaultPlan::new(43).with_window(
            "ingest.source.feed",
            10..20,
            FaultKind::DropEvents,
            500_000,
        );
        let fired = |p: &FaultPlan| -> Vec<u64> {
            (10..20)
                .filter(|&t| p.fault_at("ingest.source.feed", t).is_some())
                .collect()
        };
        assert_ne!(fired(&a), fired(&b), "seed must matter");
    }

    #[test]
    fn window_active_ignores_the_rate() {
        let plan = plan();
        for tick in 10..20 {
            assert!(plan.window_active("ingest.source.feed", tick));
        }
        assert!(!plan.window_active("ingest.source.feed", 20));
    }

    #[test]
    fn aux_is_stable_per_salt() {
        let plan = plan();
        assert_eq!(plan.aux("journal.io", 5, 1), plan.aux("journal.io", 5, 1));
        assert_ne!(plan.aux("journal.io", 5, 1), plan.aux("journal.io", 5, 2));
    }
}
