//! The shared injector: plan consultation + fire-once latching + the
//! injected-fault log.

use std::collections::HashSet;
use std::sync::Mutex;

use arb_obs::Obs;

use crate::plan::{FaultKind, FaultPlan};

/// One fault that actually fired.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedFault {
    /// The site's tick coordinate when it fired.
    pub tick: u64,
    /// Target site.
    pub site: String,
    /// What was injected.
    pub kind: FaultKind,
}

#[derive(Debug, Default)]
struct Inner {
    /// Coordinates that already fired. A fault fires **once** per
    /// `(site, tick)`: when a supervisor recovers and re-drives the
    /// same coordinate, the retry must be allowed to succeed —
    /// otherwise a panic window would wedge recovery forever.
    fired: HashSet<(String, u64)>,
    log: Vec<InjectedFault>,
}

/// Shared decision point consulted by every chaos shim
/// ([`crate::SourceChaos`], [`crate::ChaosIo`], [`crate::ChaosTickHook`]).
/// Wrap it in an `Arc` and hand clones to each seam.
#[derive(Debug)]
pub struct ChaosInjector {
    plan: FaultPlan,
    inner: Mutex<Inner>,
    obs: Mutex<Option<Obs>>,
}

impl ChaosInjector {
    /// An injector over `plan` with an empty log.
    #[must_use]
    pub fn new(plan: FaultPlan) -> Self {
        ChaosInjector {
            plan,
            inner: Mutex::new(Inner::default()),
            obs: Mutex::new(None),
        }
    }

    /// Mirrors injections to `obs`: `chaos.injected` (+ a per-kind
    /// `chaos.injected.<kind>`) counters and a `chaos.<site>` flight
    /// mark carrying the tick.
    pub fn set_obs(&self, obs: &Obs) {
        *self.obs.lock().unwrap_or_else(|e| e.into_inner()) = Some(obs.clone());
    }

    /// The plan this injector executes.
    #[must_use]
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Decides whether a fault fires at `(site, tick)`, latching the
    /// coordinate: the first call returns the planned fault (logged and
    /// counted), every later call for the same coordinate returns
    /// `None` — the fire-once latch that lets a supervised retry of
    /// the same coordinate pass.
    pub fn decide(&self, site: &str, tick: u64) -> Option<FaultKind> {
        let kind = self.plan.fault_at(site, tick)?;
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if !inner.fired.insert((site.to_string(), tick)) {
            return None;
        }
        inner.log.push(InjectedFault {
            tick,
            site: site.to_string(),
            kind,
        });
        drop(inner);
        if let Some(obs) = &*self.obs.lock().unwrap_or_else(|e| e.into_inner()) {
            obs.registry().counter("chaos.injected").inc();
            obs.registry()
                .counter(&format!("chaos.injected.{}", kind.label()))
                .inc();
            obs.marker(&format!("chaos.{site}")).mark(tick);
        }
        Some(kind)
    }

    /// Whether any plan window covers `(site, tick)` (regardless of
    /// rate or latching).
    #[must_use]
    pub fn window_active(&self, site: &str, tick: u64) -> bool {
        self.plan.window_active(site, tick)
    }

    /// Deterministic parameter randomness ([`FaultPlan::aux`]).
    #[must_use]
    pub fn aux(&self, site: &str, tick: u64, salt: u64) -> u64 {
        self.plan.aux(site, tick, salt)
    }

    /// Everything injected so far, in fire order.
    #[must_use]
    pub fn log(&self) -> Vec<InjectedFault> {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .log
            .clone()
    }

    /// Count of injected faults.
    #[must_use]
    pub fn injected(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .log
            .len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decide_latches_each_coordinate_once() {
        let injector = ChaosInjector::new(FaultPlan::new(7).with_window(
            "journal.io",
            0..4,
            FaultKind::WriteError,
            1_000_000,
        ));
        assert_eq!(
            injector.decide("journal.io", 2),
            Some(FaultKind::WriteError)
        );
        assert_eq!(injector.decide("journal.io", 2), None, "latched");
        assert_eq!(
            injector.decide("journal.io", 3),
            Some(FaultKind::WriteError)
        );
        assert_eq!(injector.injected(), 2);
        let log = injector.log();
        assert_eq!(log[0].tick, 2);
        assert_eq!(log[1].tick, 3);
    }

    #[test]
    fn obs_mirrors_injections() {
        let obs = Obs::default();
        let injector = ChaosInjector::new(FaultPlan::new(7).with_window(
            "engine.shard.0",
            0..1,
            FaultKind::PanicTick,
            1_000_000,
        ));
        injector.set_obs(&obs);
        injector.decide("engine.shard.0", 0);
        let snap = obs.registry().snapshot();
        assert_eq!(snap.counter("chaos.injected"), Some(1));
        assert_eq!(snap.counter("chaos.injected.panic-tick"), Some(1));
    }
}
