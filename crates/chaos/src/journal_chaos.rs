//! Journal I/O faults through the [`arb_journal::IoShim`] seam.
//!
//! The shim's tick coordinate is the **commit index**: each
//! `before_write` call advances it by one, so a plan window like
//! `journal.io @ 12..15` means "the 12th through 14th commit attempts
//! fail". That keeps the schedule deterministic without a wall clock —
//! and because the ingestor's seal loop retries the same backlog on
//! later seals, one failed commit never loses data, it only delays
//! durability.

use std::io;
use std::sync::Arc;

use arb_journal::{IoShim, WriteVerdict};

use crate::injector::ChaosInjector;
use crate::plan::FaultKind;
use crate::site;

/// A chaos [`IoShim`] for [`arb_journal::JournalWriter::set_io_shim`].
#[derive(Debug)]
pub struct ChaosIo {
    injector: Arc<ChaosInjector>,
    /// Commit-attempt index — the `journal.io` tick coordinate.
    commits: u64,
    /// Armed by a `FsyncError` fault: the write lands, the sync fails.
    fail_sync_next: bool,
}

impl ChaosIo {
    /// A shim consulting `injector` at [`site::JOURNAL_IO`].
    #[must_use]
    pub fn new(injector: Arc<ChaosInjector>) -> Self {
        ChaosIo {
            injector,
            commits: 0,
            fail_sync_next: false,
        }
    }

    /// Commit attempts seen so far.
    #[must_use]
    pub fn commits(&self) -> u64 {
        self.commits
    }
}

impl IoShim for ChaosIo {
    fn before_write(&mut self, bytes: usize) -> WriteVerdict {
        let tick = self.commits;
        self.commits += 1;
        match self.injector.decide(site::JOURNAL_IO, tick) {
            Some(FaultKind::WriteError) => {
                WriteVerdict::Fail(io::Error::other("chaos: injected write error"))
            }
            Some(FaultKind::DiskFull) => WriteVerdict::Fail(io::Error::new(
                io::ErrorKind::StorageFull,
                "chaos: injected disk-full",
            )),
            Some(FaultKind::TornWrite) => WriteVerdict::Torn {
                keep: self.injector.aux(site::JOURNAL_IO, tick, 1) as usize % bytes.max(1),
            },
            Some(FaultKind::FsyncError) => {
                self.fail_sync_next = true;
                WriteVerdict::Proceed
            }
            _ => WriteVerdict::Proceed,
        }
    }

    fn before_sync(&mut self) -> Option<io::Error> {
        std::mem::take(&mut self.fail_sync_next)
            .then(|| io::Error::other("chaos: injected fsync failure"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultPlan;

    #[test]
    fn commit_index_is_the_tick_coordinate() {
        let injector = Arc::new(ChaosInjector::new(FaultPlan::new(3).with_window(
            site::JOURNAL_IO,
            1..2,
            FaultKind::WriteError,
            1_000_000,
        )));
        let mut shim = ChaosIo::new(injector);
        assert!(matches!(shim.before_write(64), WriteVerdict::Proceed));
        assert!(matches!(shim.before_write(64), WriteVerdict::Fail(_)));
        assert!(matches!(shim.before_write(64), WriteVerdict::Proceed));
        assert_eq!(shim.commits(), 3);
    }

    #[test]
    fn torn_writes_keep_a_deterministic_proper_prefix() {
        let injector = Arc::new(ChaosInjector::new(FaultPlan::new(3).with_window(
            site::JOURNAL_IO,
            0..1,
            FaultKind::TornWrite,
            1_000_000,
        )));
        let keep_a = match ChaosIo::new(Arc::clone(&injector)).before_write(100) {
            WriteVerdict::Torn { keep } => keep,
            other => panic!("expected a torn verdict, got {other:?}"),
        };
        assert!(keep_a < 100, "a torn write keeps a proper prefix");
        // Same plan, fresh injector: same cut point.
        let fresh = Arc::new(ChaosInjector::new(injector.plan().clone()));
        let keep_b = match ChaosIo::new(fresh).before_write(100) {
            WriteVerdict::Torn { keep } => keep,
            other => panic!("expected a torn verdict, got {other:?}"),
        };
        assert_eq!(keep_a, keep_b);
    }

    #[test]
    fn fsync_faults_land_the_write_then_fail_the_sync() {
        let injector = Arc::new(ChaosInjector::new(FaultPlan::new(3).with_window(
            site::JOURNAL_IO,
            0..1,
            FaultKind::FsyncError,
            1_000_000,
        )));
        let mut shim = ChaosIo::new(injector);
        assert!(matches!(shim.before_write(64), WriteVerdict::Proceed));
        assert!(shim.before_sync().is_some(), "armed by the write fault");
        assert!(shim.before_sync().is_none(), "one-shot");
    }
}
