//! Fault-site naming: the dotted coordinates a [`crate::FaultPlan`]
//! aims at.
//!
//! A *site* is a place in the pipeline where faults can be injected,
//! named with the same dotted scheme the metrics registry uses
//! (`layer.component`), so a plan window, the `chaos.<site>` flight
//! marks, and the `health.<site>.state` gauges all speak one
//! vocabulary:
//!
//! | site                    | faults it accepts                      |
//! |-------------------------|----------------------------------------|
//! | `ingest.source.<name>`  | delay / stall / duplicate / drop /     |
//! |                         | garbage-price                          |
//! | `ingest.consumer`       | (health only — driven by backpressure) |
//! | `journal.io`            | write-error / fsync-error / torn-write |
//! |                         | / disk-full                            |
//! | `engine.shard.<i>`      | slow-tick / panic-tick                 |

/// The journal commit path ([`arb_journal::IoShim`] seam).
pub const JOURNAL_IO: &str = "journal.io";

/// The downstream consumer of the ingest queue (health-tracked via
/// backpressure; not directly injectable).
pub const CONSUMER: &str = "ingest.consumer";

/// The site name of a registered ingest source.
#[must_use]
pub fn source(name: &str) -> String {
    format!("ingest.source.{name}")
}

/// The site name of one engine shard's tick path.
#[must_use]
pub fn shard(index: usize) -> String {
    format!("engine.shard.{index}")
}

#[cfg(test)]
mod tests {
    #[test]
    fn sites_follow_the_dotted_scheme() {
        assert_eq!(super::source("feed"), "ingest.source.feed");
        assert_eq!(super::shard(3), "engine.shard.3");
        assert_eq!(super::JOURNAL_IO, "journal.io");
    }
}
