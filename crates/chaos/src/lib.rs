//! Deterministic fault injection and graceful-degradation proofs for
//! the arbitrage pipeline.
//!
//! A [`FaultPlan`] is a seeded schedule of fault windows over named
//! *sites* ([`site`]) — ingest sources, the journal commit path, shard
//! tick paths. Whether a window fires at a coordinate is a pure
//! function of `(seed, site, tick)`, so the same plan replays the exact
//! same fault schedule every run; there is no wall clock and no global
//! RNG anywhere in the decision path.
//!
//! One [`ChaosInjector`] executes the plan for all seams:
//!
//! * [`SourceChaos`] — a lens over a source's event stream (delays,
//!   outages, duplicates, drops, garbage prices) with the repair
//!   bookkeeping that makes every fault *recoverable*.
//! * [`ChaosIo`] — an [`arb_journal::IoShim`] injecting write errors,
//!   fsync failures, torn tails, and ENOSPC at commit-index
//!   coordinates.
//! * [`ChaosTickHook`] — an [`arb_engine::TickHook`] injecting slow
//!   ticks and mid-tick panics per shard.
//!
//! The [`harness`] ties them together: [`run_soak`] drives a workload
//! through the full journaled ingest pipeline under a plan, supervises
//! panics (flight-dump → journal recovery → resume), and proves the
//! post-fault rankings reconverge **bit-identical** to a never-faulted
//! oracle.

pub mod error;
pub mod harness;
pub mod injector;
pub mod journal_chaos;
pub mod plan;
pub mod site;
pub mod source_chaos;
pub mod tick_chaos;

pub use error::ChaosError;
pub use harness::{
    fingerprint, percentile, run_soak, standard_plan, SoakConfig, SoakOutcome, FLIGHT_DUMP,
};
pub use injector::{ChaosInjector, InjectedFault};
pub use journal_chaos::ChaosIo;
pub use plan::{FaultKind, FaultPlan, FaultWindow};
pub use source_chaos::SourceChaos;
pub use tick_chaos::ChaosTickHook;
