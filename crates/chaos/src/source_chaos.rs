//! Per-source event-stream faults, with the repair bookkeeping that
//! makes them *recoverable* rather than silently lossy.
//!
//! The transformations lean on the same algebra the coalescer proves
//! sound: `Sync` and `FeedPrice` are **absolute** (idempotent,
//! last-write-wins per pool / per token), so
//!
//! * *duplicates* of them are no-ops,
//! * a *dropped* one is fully repaired by re-emitting the lost value
//!   later — unless a later genuine event for the same key already
//!   superseded it, in which case nothing was lost at all,
//! * *delay/stall* just moves events later while preserving per-source
//!   FIFO order, which is all the final state depends on.
//!
//! Non-idempotent events (`PoolCreated` barriers, `Swap`s) are never
//! dropped, duplicated, or garbled — only delayed — so slot-order
//! invariants hold under any plan.

use std::collections::BTreeMap;
use std::sync::Arc;

use arb_dexsim::events::Event;

use crate::injector::ChaosInjector;
use crate::plan::FaultKind;

/// The last-write-wins key of a repairable (absolute) event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum RepairKey {
    Pool(u32),
    Token(u32),
}

fn repair_key(event: &Event) -> Option<RepairKey> {
    match event {
        Event::Sync { pool, .. } => Some(RepairKey::Pool(pool.index() as u32)),
        Event::FeedPrice { token, .. } => Some(RepairKey::Token(token.index() as u32)),
        _ => None,
    }
}

/// A fault lens over one source's event stream: feed each tick's
/// events through [`SourceChaos::transform`] before offering them to
/// the ingestor.
#[derive(Debug)]
pub struct SourceChaos {
    injector: Arc<ChaosInjector>,
    site: String,
    /// Events held back by delay/stall faults, in arrival order.
    held: Vec<Event>,
    /// Last genuine value per key that a drop/garbage fault swallowed,
    /// pending re-emission once the window clears. A later genuine
    /// event for the key cancels the repair (it superseded the loss).
    repairs: BTreeMap<RepairKey, Event>,
}

impl SourceChaos {
    /// A lens for `site` (use [`crate::site::source`]).
    #[must_use]
    pub fn new(injector: Arc<ChaosInjector>, site: impl Into<String>) -> Self {
        SourceChaos {
            injector,
            site: site.into(),
            held: Vec::new(),
            repairs: BTreeMap::new(),
        }
    }

    /// The site this lens injects at.
    #[must_use]
    pub fn site(&self) -> &str {
        &self.site
    }

    /// Events currently held back (delay/stall backlog).
    #[must_use]
    pub fn held(&self) -> usize {
        self.held.len()
    }

    /// Pending drop/garbage repairs.
    #[must_use]
    pub fn pending_repairs(&self) -> usize {
        self.repairs.len()
    }

    /// Applies the tick's planned fault (if any) to `events`, returning
    /// what the source actually delivers this tick. Deterministic:
    /// decided entirely by the plan at `(site, tick)`.
    pub fn transform(&mut self, tick: u64, events: Vec<Event>) -> Vec<Event> {
        let fault = self.injector.decide(&self.site, tick);
        if matches!(fault, Some(FaultKind::DelayEvents | FaultKind::StallSource)) {
            self.held.extend(events);
            return Vec::new();
        }

        let mut out = Vec::new();
        // Oldest first: repairs carry values dropped before anything in
        // `held`, and both precede the current tick, so last-write-wins
        // resolves every key to the newest genuine value.
        if !self.injector.window_active(&self.site, tick) && !self.repairs.is_empty() {
            out.extend(std::mem::take(&mut self.repairs).into_values());
        }
        out.append(&mut self.held);
        for event in events {
            match (fault, repair_key(&event)) {
                (Some(FaultKind::DropEvents), Some(key)) => {
                    self.repairs.insert(key, event);
                    continue;
                }
                (Some(FaultKind::GarbagePrice), Some(key)) => {
                    if let Some((token, _)) = event.as_feed_price() {
                        self.repairs.insert(key, event);
                        // The table rejects NaN, so the garbage is
                        // harmless downstream — but the genuine price it
                        // displaced must be repaired like a drop.
                        out.push(Event::feed_price(token, f64::NAN));
                        continue;
                    }
                }
                _ => {}
            }
            if let Some(key) = repair_key(&event) {
                // A genuine pass for this key supersedes any earlier
                // swallowed value.
                self.repairs.remove(&key);
            }
            let duplicate =
                matches!(fault, Some(FaultKind::DuplicateEvents)) && repair_key(&event).is_some();
            out.push(event);
            if duplicate {
                // Immediately after the original, so nothing can
                // interleave between copy and original and per-key
                // last-write-wins is untouched.
                out.push(event);
            }
        }
        out
    }

    /// Releases everything still buffered (end-of-run): repairs first
    /// (oldest), then the held backlog in order.
    pub fn flush(&mut self) -> Vec<Event> {
        let mut out: Vec<Event> = std::mem::take(&mut self.repairs).into_values().collect();
        out.append(&mut self.held);
        out
    }
}

#[cfg(test)]
mod tests {
    use arb_amm::pool::PoolId;
    use arb_amm::token::TokenId;

    use super::*;
    use crate::plan::FaultPlan;

    fn sync(pool: u32, r: u128) -> Event {
        Event::Sync {
            pool: PoolId::new(pool),
            reserve_a: r,
            reserve_b: r + 1,
        }
    }

    fn lens(plan: FaultPlan) -> SourceChaos {
        SourceChaos::new(Arc::new(ChaosInjector::new(plan)), "ingest.source.chain")
    }

    #[test]
    fn stall_holds_and_releases_in_order() {
        let mut lens = lens(FaultPlan::new(1).with_window(
            "ingest.source.chain",
            0..2,
            FaultKind::StallSource,
            1_000_000,
        ));
        assert!(lens.transform(0, vec![sync(0, 1), sync(1, 1)]).is_empty());
        assert!(lens.transform(1, vec![sync(0, 2)]).is_empty());
        assert_eq!(lens.held(), 3);
        let released = lens.transform(2, vec![sync(2, 9)]);
        assert_eq!(
            released,
            vec![sync(0, 1), sync(1, 1), sync(0, 2), sync(2, 9)]
        );
        assert_eq!(lens.held(), 0);
    }

    #[test]
    fn drops_are_repaired_unless_superseded() {
        let mut lens = lens(FaultPlan::new(1).with_window(
            "ingest.source.chain",
            0..2,
            FaultKind::DropEvents,
            1_000_000,
        ));
        // Tick 0: both pools' syncs swallowed.
        assert!(lens.transform(0, vec![sync(0, 1), sync(1, 1)]).is_empty());
        assert_eq!(lens.pending_repairs(), 2);
        // Tick 1: pool 0 gets a *newer* value, also swallowed — the
        // repair map keeps the newest loss per key.
        assert!(lens.transform(1, vec![sync(0, 5)]).is_empty());
        assert_eq!(lens.pending_repairs(), 2);
        // Tick 2 (window over): a genuine pool-1 event supersedes its
        // repair; pool 0's lost value is re-emitted first.
        let out = lens.transform(2, vec![sync(1, 7)]);
        assert_eq!(out, vec![sync(0, 5), sync(1, 1), sync(1, 7)]);
        assert_eq!(lens.pending_repairs(), 0);
    }

    #[test]
    fn duplicates_sit_right_after_their_original() {
        let mut lens = lens(FaultPlan::new(1).with_window(
            "ingest.source.chain",
            0..1,
            FaultKind::DuplicateEvents,
            1_000_000,
        ));
        let out = lens.transform(0, vec![sync(0, 1), sync(1, 2)]);
        assert_eq!(out, vec![sync(0, 1), sync(0, 1), sync(1, 2), sync(1, 2)]);
    }

    #[test]
    fn garbage_prices_are_nan_and_repaired() {
        let mut lens = SourceChaos::new(
            Arc::new(ChaosInjector::new(FaultPlan::new(1).with_window(
                "ingest.source.feed",
                0..1,
                FaultKind::GarbagePrice,
                1_000_000,
            ))),
            "ingest.source.feed",
        );
        let genuine = Event::feed_price(TokenId::new(3), 42.5);
        let out = lens.transform(0, vec![genuine]);
        assert_eq!(out.len(), 1);
        let (token, price) = out[0].as_feed_price().expect("still a feed event");
        assert_eq!(token, TokenId::new(3));
        assert!(price.is_nan(), "garbage in place of the real price");
        let repaired = lens.transform(1, Vec::new());
        assert_eq!(repaired, vec![genuine]);
    }

    #[test]
    fn barriers_pass_untouched_through_drop_windows() {
        let mut lens = lens(FaultPlan::new(1).with_window(
            "ingest.source.chain",
            0..1,
            FaultKind::DropEvents,
            1_000_000,
        ));
        let created = Event::PoolCreated {
            pool: PoolId::new(9),
            token_a: TokenId::new(0),
            token_b: TokenId::new(1),
            reserve_a: 100,
            reserve_b: 100,
            fee: arb_amm::fee::FeeRate::UNISWAP_V2,
        };
        let out = lens.transform(0, vec![created, sync(9, 1)]);
        assert_eq!(out, vec![created], "barrier passes, sync is repairable");
        assert_eq!(lens.pending_repairs(), 1);
    }
}
