//! Shard-tick faults through the engine's [`TickHook`] seam: slow
//! workers and mid-tick panics, keyed on `engine.shard.<i>` sites at
//! the runtime's own tick counter.

use std::hint::black_box;
use std::sync::Arc;

use arb_engine::TickHook;

use crate::injector::ChaosInjector;
use crate::plan::FaultKind;
use crate::site;

/// Iterations of the slow-tick busy spin — enough to register as a
/// stall in a latency histogram without moving wall-clock time into
/// the decision path.
const SLOW_TICK_SPINS: u64 = 200_000;

/// A chaos [`TickHook`] for
/// [`arb_engine::ShardedRuntime::set_tick_hook`].
#[derive(Debug)]
pub struct ChaosTickHook {
    injector: Arc<ChaosInjector>,
}

impl ChaosTickHook {
    /// A hook consulting `injector` at [`site::shard`] coordinates.
    #[must_use]
    pub fn new(injector: Arc<ChaosInjector>) -> Self {
        ChaosTickHook { injector }
    }
}

impl TickHook for ChaosTickHook {
    fn before_shard_tick(&self, shard: usize, tick: u64) {
        match self.injector.decide(&site::shard(shard), tick) {
            Some(FaultKind::SlowTick) => {
                let mut acc = 0u64;
                for i in 0..SLOW_TICK_SPINS {
                    acc = black_box(acc.wrapping_add(splat(i)));
                }
                black_box(acc);
            }
            Some(FaultKind::PanicTick) => {
                panic!("chaos: injected mid-tick panic at shard {shard}, tick {tick}")
            }
            _ => {}
        }
    }
}

fn splat(x: u64) -> u64 {
    x.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultPlan;

    #[test]
    fn panic_windows_panic_exactly_once_per_coordinate() {
        let injector = Arc::new(ChaosInjector::new(FaultPlan::new(9).with_window(
            site::shard(0),
            4..5,
            FaultKind::PanicTick,
            1_000_000,
        )));
        let hook = ChaosTickHook::new(Arc::clone(&injector));
        hook.before_shard_tick(0, 3); // outside the window: quiet
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            hook.before_shard_tick(0, 4)
        }));
        assert!(caught.is_err(), "window coordinate must panic");
        // A supervisor retrying the same tick must get through.
        hook.before_shard_tick(0, 4);
        assert_eq!(injector.injected(), 1);
    }
}
