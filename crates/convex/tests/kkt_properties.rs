//! KKT certification of solver outputs on random problems.

use arb_amm::curve::SwapCurve;
use arb_amm::fee::FeeRate;
use arb_convex::kkt;
use arb_convex::{LoopProblem, SolverOptions};
use arb_numerics::barrier::BarrierConfig;
use proptest::prelude::*;

fn problem(reserves: &[f64], prices: Vec<f64>) -> LoopProblem {
    let fee = FeeRate::UNISWAP_V2;
    let hops = reserves
        .chunks_exact(2)
        .map(|c| SwapCurve::new(c[0], c[1], fee).unwrap())
        .collect();
    LoopProblem::new(hops, prices).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Barrier solutions of profitable loops certify as KKT points.
    ///
    /// Certification quality depends on the final barrier weight being
    /// appropriate for the problem's magnitude: pushing the duality gap
    /// many orders below the objective scale exhausts f64 centering
    /// precision and inflates the gradient residual without improving the
    /// (already converged) primal value. So the certificate is taken at a
    /// gap tolerance *relative* to the profit scale.
    #[test]
    fn solutions_certify(
        r in proptest::collection::vec(200.0..20_000.0f64, 6),
        prices in proptest::collection::vec(0.5..50.0f64, 3),
    ) {
        let p = problem(&r, prices);
        if p.round_trip_rate() <= 1.0 + 1e-6 {
            return Ok(());
        }
        // Profit scale from the closed-form rotation optima (free).
        let scale: f64 = (0..p.len())
            .map(|s| p.rotation_chain(s).max_profit() * p.prices()[s])
            .fold(1.0, f64::max);
        let config = BarrierConfig {
            gap_tol: 1e-7 * scale,
            ..BarrierConfig::default()
        };
        let (sol, report) = kkt::solve_and_verify(&p, &config).unwrap();
        prop_assert!(sol.converged);
        prop_assert!(report.primal_violation <= 1e-10, "{report:?}");
        prop_assert!(report.dual_violation <= 1e-10, "{report:?}");
        prop_assert!(report.complementarity < 1e-4 * scale, "{report:?} scale {scale}");
        // Stationarity: a tight gradient residual certifies optimality
        // directly. On ill-conditioned problems (reserve ratios of 100×,
        // price ratios of 100×) the barrier iterate can sit within the
        // duality-gap tolerance of the optimal *value* while the gradient
        // residual stays loose — for those, verify near-optimality by
        // value instead: the solution must dominate the best closed-form
        // rotation (which is exact). A genuinely wrong solution fails
        // both checks.
        let grad_scale = prices_scale(&p)
            * p.hops().iter().map(|h| h.spot_rate()).fold(1.0f64, f64::max);
        let certificate_tight = report.stationarity < 0.02 * grad_scale + 1e-6;
        if !certificate_tight {
            prop_assert!(
                sol.objective >= scale - 1e-5 * scale,
                "loose certificate AND objective {} below best rotation {scale}",
                sol.objective
            );
        }
    }

    /// The plan built from the certified solution is feasible and its
    /// objective equals the solver's.
    #[test]
    fn plan_consistent_with_certificate(
        r in proptest::collection::vec(200.0..20_000.0f64, 6),
        prices in proptest::collection::vec(0.5..50.0f64, 3),
    ) {
        let p = problem(&r, prices);
        let plan = p.solve(&SolverOptions::default()).unwrap();
        prop_assert!(plan.max_violation(p.hops()) < 1e-6);
        // Monetized profit recomputed from token profits and prices agrees.
        let recomputed: f64 = plan
            .token_profits()
            .iter()
            .zip(plan.prices())
            .map(|(a, b)| a * b)
            .sum();
        prop_assert!((recomputed - plan.monetized_profit()).abs() < 1e-9);
    }
}

fn prices_scale(p: &LoopProblem) -> f64 {
    p.prices().iter().fold(1.0f64, |a, b| a.max(*b))
}
