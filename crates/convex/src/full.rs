//! The full `2n`-variable formulation of paper eq. 8.
//!
//! Variables are `z = (a_0…a_{n−1}, b_0…b_{n−1})`: `a_j` the input of hop
//! `j`'s pool and `b_j` its output. The paper's product constraints
//! `(x_j + γ_j·a_j)(y_j − b_j) ≥ x_j·y_j` are bilinear (not concave) as
//! written, but taking logarithms gives the equivalent concave form used
//! here:
//!
//! ```text
//! h_j(z) = log(x_j + γ_j·a_j) + log(y_j − b_j) − log(x_j·y_j) ≥ 0
//! ```
//!
//! together with the linear linking constraints `b_{j−1} − a_j ≥ 0` and the
//! bounds `a_j ≥ 0`, `b_j ≥ 0`. The objective
//! `Σ_j (P_{j+1}·b_j − P_j·a_j)` is linear. This formulation exists as an
//! independent cross-check of [`crate::reduced`]; tests assert the two
//! agree to solver tolerance.

use arb_amm::curve::SwapCurve;
use arb_numerics::barrier::{solve_barrier, BarrierConfig, BarrierProblem};
use arb_numerics::linalg::Matrix;

use crate::error::ConvexError;
use crate::problem::LoopProblem;
use crate::solution::LoopPlan;

/// The full barrier problem over `(a, b)`.
pub(crate) struct FullProblem<'a> {
    hops: &'a [SwapCurve],
    prices: &'a [f64],
}

impl<'a> FullProblem<'a> {
    pub(crate) fn new(hops: &'a [SwapCurve], prices: &'a [f64]) -> Self {
        debug_assert_eq!(hops.len(), prices.len());
        FullProblem { hops, prices }
    }

    fn n(&self) -> usize {
        self.hops.len()
    }
}

impl BarrierProblem for FullProblem<'_> {
    fn dim(&self) -> usize {
        2 * self.n()
    }

    fn num_constraints(&self) -> usize {
        4 * self.n()
    }

    fn objective(&self, z: &[f64]) -> f64 {
        let n = self.n();
        (0..n)
            .map(|j| self.prices[(j + 1) % n] * z[n + j] - self.prices[j] * z[j])
            .sum()
    }

    fn objective_grad(&self, _z: &[f64], grad: &mut [f64]) {
        let n = self.n();
        for j in 0..n {
            grad[j] = -self.prices[j];
            grad[n + j] = self.prices[(j + 1) % n];
        }
    }

    fn objective_hess(&self, _z: &[f64], hess: &mut Matrix) {
        hess.clear();
    }

    fn constraint(&self, i: usize, z: &[f64]) -> f64 {
        let n = self.n();
        if i < n {
            // Product constraint in log form for hop i.
            let h = &self.hops[i];
            let (a, b) = (z[i], z[n + i]);
            let xin = h.reserve_in() + h.gamma() * a;
            let yout = h.reserve_out() - b;
            if xin <= 0.0 || yout <= 0.0 {
                return f64::NEG_INFINITY;
            }
            xin.ln() + yout.ln() - (h.reserve_in() * h.reserve_out()).ln()
        } else if i < 2 * n {
            // Linking: b_{j−1} − a_j ≥ 0 for j = i − n.
            let j = i - n;
            let prev = (j + n - 1) % n;
            z[n + prev] - z[j]
        } else if i < 3 * n {
            // Bound a_j ≥ 0.
            z[i - 2 * n]
        } else {
            // Bound b_j ≥ 0.
            z[n + (i - 3 * n)]
        }
    }

    fn constraint_grad(&self, i: usize, z: &[f64], grad: &mut [f64]) {
        grad.iter_mut().for_each(|v| *v = 0.0);
        let n = self.n();
        if i < n {
            let h = &self.hops[i];
            let (a, b) = (z[i], z[n + i]);
            grad[i] = h.gamma() / (h.reserve_in() + h.gamma() * a);
            grad[n + i] = -1.0 / (h.reserve_out() - b);
        } else if i < 2 * n {
            let j = i - n;
            let prev = (j + n - 1) % n;
            grad[n + prev] = 1.0;
            grad[j] -= 1.0;
        } else if i < 3 * n {
            grad[i - 2 * n] = 1.0;
        } else {
            grad[n + (i - 3 * n)] = 1.0;
        }
    }

    fn constraint_hess(&self, i: usize, z: &[f64], hess: &mut Matrix) {
        hess.clear();
        let n = self.n();
        if i < n {
            let h = &self.hops[i];
            let (a, b) = (z[i], z[n + i]);
            let da = h.reserve_in() + h.gamma() * a;
            let db = h.reserve_out() - b;
            hess[(i, i)] = -(h.gamma() * h.gamma()) / (da * da);
            hess[(n + i, n + i)] = -1.0 / (db * db);
        }
    }
}

/// Solves the full formulation from a strictly feasible reduced start
/// (outputs are interpolated strictly between the linking floor and the
/// pool ceiling).
pub(crate) fn solve(
    problem: &LoopProblem,
    start_inputs: &[f64],
    config: &BarrierConfig,
) -> Result<LoopPlan, ConvexError> {
    let n = problem.len();
    let hops = problem.hops();
    let mut z = vec![0.0; 2 * n];
    z[..n].copy_from_slice(start_inputs);
    for j in 0..n {
        // b_j strictly between a_{j+1} (linking floor) and F_j(a_j) (pool
        // ceiling); both are satisfiable because the start is strictly
        // feasible for the reduced problem.
        let ceil = hops[j].amount_out(start_inputs[j]);
        let floor = start_inputs[(j + 1) % n];
        debug_assert!(ceil > floor);
        z[n + j] = 0.5 * (ceil + floor);
    }
    let full = FullProblem::new(hops, problem.prices());
    let sol = solve_barrier(&full, &z, config)?;
    // Canonicalize: report exact pool outputs for the solved inputs.
    Ok(LoopPlan::from_inputs(
        hops,
        problem.prices(),
        &sol.x[..n],
        sol.converged,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Formulation, SolverOptions};
    use arb_amm::fee::FeeRate;
    use proptest::prelude::*;

    fn paper_problem() -> LoopProblem {
        let fee = FeeRate::UNISWAP_V2;
        LoopProblem::new(
            vec![
                SwapCurve::new(100.0, 200.0, fee).unwrap(),
                SwapCurve::new(300.0, 200.0, fee).unwrap(),
                SwapCurve::new(200.0, 400.0, fee).unwrap(),
            ],
            vec![2.0, 10.2, 20.0],
        )
        .unwrap()
    }

    fn full_opts() -> SolverOptions {
        SolverOptions {
            formulation: Formulation::Full,
            ..SolverOptions::default()
        }
    }

    #[test]
    fn paper_example_matches_reduced() {
        let p = paper_problem();
        let full = p.solve(&full_opts()).unwrap();
        let reduced = p.solve(&SolverOptions::default()).unwrap();
        assert!(
            (full.monetized_profit() - reduced.monetized_profit()).abs()
                < 1e-3 * (1.0 + reduced.monetized_profit()),
            "full={} reduced={}",
            full.monetized_profit(),
            reduced.monetized_profit()
        );
        assert!(full.max_violation(p.hops()) < 1e-6);
    }

    #[test]
    fn unprofitable_zero_plan() {
        let fee = FeeRate::UNISWAP_V2;
        let p = LoopProblem::new(
            vec![
                SwapCurve::new(500.0, 500.0, fee).unwrap(),
                SwapCurve::new(500.0, 500.0, fee).unwrap(),
            ],
            vec![1.0, 1.0],
        )
        .unwrap();
        assert!(p.solve(&full_opts()).unwrap().is_zero());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn full_and_reduced_agree(
            r in proptest::collection::vec(100.0..2_000.0f64, 6),
            prices in proptest::collection::vec(0.5..50.0f64, 3),
        ) {
            let fee = FeeRate::UNISWAP_V2;
            let hops = vec![
                SwapCurve::new(r[0], r[1], fee).unwrap(),
                SwapCurve::new(r[2], r[3], fee).unwrap(),
                SwapCurve::new(r[4], r[5], fee).unwrap(),
            ];
            let p = LoopProblem::new(hops, prices).unwrap();
            let full = p.solve(&full_opts()).unwrap();
            let reduced = p.solve(&SolverOptions::default()).unwrap();
            let scale = 1.0 + reduced.monetized_profit().abs();
            prop_assert!(
                (full.monetized_profit() - reduced.monetized_profit()).abs() < 5e-3 * scale,
                "full={} reduced={}", full.monetized_profit(), reduced.monetized_profit()
            );
        }
    }
}
