//! Loop problem definition, validation, and solver entry point.

use arb_amm::curve::SwapCurve;
use arb_amm::mobius::Mobius;
use arb_numerics::barrier::BarrierConfig;

use crate::error::ConvexError;
use crate::full;
use crate::reduced;
use crate::solution::LoopPlan;

/// Which mathematical formulation of eq. 8 to solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Formulation {
    /// `n`-variable problem with outputs eliminated (`b_j = F_j(a_j)`).
    /// Faster and the default.
    #[default]
    Reduced,
    /// `2n`-variable problem keeping the product constraints in concave
    /// log form, faithful to the paper's eq. 8. Used as a cross-check.
    Full,
}

/// Solver options for [`LoopProblem::solve`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolverOptions {
    /// Formulation to use.
    pub formulation: Formulation,
    /// Barrier method configuration.
    pub barrier: BarrierConfig,
    /// Round-trip rates within `1 + rate_tolerance` are treated as
    /// unprofitable (paper Theorem: no-arb ⇒ the zero plan is optimal).
    pub rate_tolerance: f64,
}

impl Default for SolverOptions {
    fn default() -> Self {
        SolverOptions {
            formulation: Formulation::Reduced,
            barrier: BarrierConfig::default(),
            rate_tolerance: 1e-10,
        }
    }
}

/// An arbitrage loop ready for convex optimization.
///
/// Hop `j` swaps token `t_j` into token `t_{j+1 mod n}`; `prices[j]` is the
/// CEX (USD) price of `t_j`. The struct owns plain curves and prices, so it
/// is decoupled from pool identity — build it from any pool source.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopProblem {
    hops: Vec<SwapCurve>,
    prices: Vec<f64>,
}

impl LoopProblem {
    /// Creates a problem from per-hop curves and per-token prices.
    ///
    /// # Errors
    ///
    /// * [`ConvexError::LoopTooShort`] for fewer than 2 hops.
    /// * [`ConvexError::LengthMismatch`] when lengths differ.
    /// * [`ConvexError::InvalidPrice`] for negative or non-finite prices.
    pub fn new(hops: Vec<SwapCurve>, prices: Vec<f64>) -> Result<Self, ConvexError> {
        if hops.len() < 2 {
            return Err(ConvexError::LoopTooShort);
        }
        if hops.len() != prices.len() {
            return Err(ConvexError::LengthMismatch);
        }
        if prices.iter().any(|p| !p.is_finite() || *p < 0.0) {
            return Err(ConvexError::InvalidPrice);
        }
        Ok(LoopProblem { hops, prices })
    }

    /// Number of hops (= number of tokens) in the loop.
    pub fn len(&self) -> usize {
        self.hops.len()
    }

    /// Whether the loop is empty (never true for a constructed problem).
    pub fn is_empty(&self) -> bool {
        self.hops.is_empty()
    }

    /// The hop curves in loop order.
    pub fn hops(&self) -> &[SwapCurve] {
        &self.hops
    }

    /// The token prices in loop order.
    pub fn prices(&self) -> &[f64] {
        &self.prices
    }

    /// The multiplicative round-trip rate at zero input,
    /// `Π_j γ_j·y_j/x_j` — the loop admits arbitrage iff this exceeds 1.
    ///
    /// The rate is rotation-invariant (a cyclic product), so one check
    /// covers every possible start token.
    pub fn round_trip_rate(&self) -> f64 {
        self.hops.iter().map(|h| h.spot_rate()).product()
    }

    /// The composed Möbius transform of the rotation starting at hop
    /// `start` (the chain `F_{start+n−1} ∘ … ∘ F_{start}`).
    ///
    /// # Panics
    ///
    /// Panics if `start >= self.len()`.
    pub fn rotation_chain(&self, start: usize) -> Mobius {
        assert!(start < self.hops.len());
        let n = self.hops.len();
        let hops: Vec<Mobius> = (0..n)
            .map(|k| self.hops[(start + k) % n].to_mobius())
            .collect();
        Mobius::chain(&hops)
    }

    /// Whether the loop is profitable beyond `opts.rate_tolerance`.
    pub fn is_profitable(&self, opts: &SolverOptions) -> bool {
        self.round_trip_rate() > 1.0 + opts.rate_tolerance
    }

    /// Solves the monetized-profit maximization (paper eq. 8).
    ///
    /// For unprofitable loops this returns the zero plan without invoking
    /// the solver — the paper proves the zero solution is then optimal,
    /// and indeed no strictly feasible interior point exists.
    ///
    /// # Errors
    ///
    /// * [`ConvexError::FeasibilityConstruction`] if an interior starting
    ///   point cannot be built despite apparent profitability (only
    ///   possible within ~`rate_tolerance` of break-even).
    /// * [`ConvexError::Solver`] if the barrier method fails.
    pub fn solve(&self, opts: &SolverOptions) -> Result<LoopPlan, ConvexError> {
        if !self.is_profitable(opts) {
            return Ok(LoopPlan::zero(&self.prices));
        }
        let start = self
            .feasible_inputs()
            .ok_or(ConvexError::FeasibilityConstruction)?;
        let barrier = self.scaled_barrier(&opts.barrier);
        match opts.formulation {
            Formulation::Reduced => reduced::solve(self, &start, &barrier),
            Formulation::Full => full::solve(self, &start, &barrier),
        }
    }

    /// Scales the initial barrier weight to the problem's profit scale
    /// (estimated for free from the closed-form rotation optima). An
    /// under-weighted barrier makes the first centering problem nearly as
    /// ill-conditioned as the original boundary-kissing program and
    /// Newton stalls far from the optimum; matching scales keeps the
    /// central path tame. Every solve path must go through this.
    pub(crate) fn scaled_barrier(
        &self,
        config: &arb_numerics::barrier::BarrierConfig,
    ) -> arb_numerics::barrier::BarrierConfig {
        let scale = (0..self.len())
            .map(|s| self.rotation_chain(s).max_profit() * self.prices[s])
            .fold(0.0f64, f64::max);
        let mut barrier = *config;
        barrier.mu_initial = barrier.mu_initial.max(0.1 * scale);
        barrier
    }

    /// Constructs strictly feasible inputs `a` for the reduced problem:
    /// all `a_j > 0` and `F_{j−1}(a_{j−1}) > a_j` strictly (including the
    /// wrap-around constraint `F_{n−1}(a_{n−1}) > a_0`).
    ///
    /// Strategy: start from a fraction of the rotation-0 closed-form
    /// optimal input and chain each hop's output shrunk by a factor `s`;
    /// concavity of `F` with `F(0)=0` guarantees the interior chain
    /// constraints, and the wrap-around is verified numerically. Smaller
    /// starting fractions approach the zero corner where the round-trip
    /// multiplier tends to the (profitable) marginal rate, so the search
    /// succeeds whenever the rate strictly exceeds 1.
    pub(crate) fn feasible_inputs(&self) -> Option<Vec<f64>> {
        let n = self.hops.len();
        let chain = self.rotation_chain(0);
        let dstar = chain.optimal_input();
        if dstar <= 0.0 {
            return None;
        }
        // Shrinking each hop's output by `s` must not eat the loop's whole
        // profitability margin: the wrap constraint needs roughly
        // s^(n−1)·R > 1, so adapt s to the margin (rate − 1). This keeps
        // construction working for near-breakeven loops where a fixed
        // shrink of 0.1% would already exceed the margin.
        let rate = chain.rate_at_zero();
        let adaptive = (1.0 - (rate - 1.0) / (8.0 * n as f64)).clamp(0.9, 1.0 - 1e-12);
        for a0_frac in [0.5, 0.25, 0.1, 1e-2, 1e-3, 1e-5] {
            for s in [adaptive, 0.999, 0.99, 0.9] {
                let mut a = vec![0.0; n];
                a[0] = dstar * a0_frac;
                for j in 1..n {
                    a[j] = s * self.hops[j - 1].amount_out(a[j - 1]);
                }
                let wrap = self.hops[n - 1].amount_out(a[n - 1]) - a[0];
                if wrap > 1e-14 * (1.0 + a[0]) && a.iter().all(|v| *v > 0.0) {
                    return Some(a);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arb_amm::fee::FeeRate;

    pub(crate) fn paper_hops() -> Vec<SwapCurve> {
        let fee = FeeRate::UNISWAP_V2;
        vec![
            SwapCurve::new(100.0, 200.0, fee).unwrap(),
            SwapCurve::new(300.0, 200.0, fee).unwrap(),
            SwapCurve::new(200.0, 400.0, fee).unwrap(),
        ]
    }

    #[test]
    fn validation() {
        assert_eq!(
            LoopProblem::new(vec![], vec![]),
            Err(ConvexError::LoopTooShort)
        );
        let hops = paper_hops();
        assert_eq!(
            LoopProblem::new(hops.clone(), vec![1.0]),
            Err(ConvexError::LengthMismatch)
        );
        assert_eq!(
            LoopProblem::new(hops.clone(), vec![1.0, -1.0, 2.0]),
            Err(ConvexError::InvalidPrice)
        );
        assert!(LoopProblem::new(hops, vec![2.0, 10.2, 20.0]).is_ok());
    }

    #[test]
    fn round_trip_rate_matches_paper() {
        let p = LoopProblem::new(paper_hops(), vec![2.0, 10.2, 20.0]).unwrap();
        let expected = 0.997f64.powi(3) * 8.0 / 3.0;
        assert!((p.round_trip_rate() - expected).abs() < 1e-12);
        assert!(p.is_profitable(&SolverOptions::default()));
    }

    #[test]
    fn rate_is_rotation_invariant() {
        let p = LoopProblem::new(paper_hops(), vec![2.0, 10.2, 20.0]).unwrap();
        for start in 0..3 {
            let m = p.rotation_chain(start);
            assert!((m.rate_at_zero() - p.round_trip_rate()).abs() < 1e-9);
        }
    }

    #[test]
    fn feasible_inputs_strictly_feasible() {
        let p = LoopProblem::new(paper_hops(), vec![2.0, 10.2, 20.0]).unwrap();
        let a = p.feasible_inputs().unwrap();
        let n = a.len();
        for j in 0..n {
            assert!(a[j] > 0.0);
            let prev = (j + n - 1) % n;
            let out = p.hops()[prev].amount_out(a[prev]);
            assert!(out > a[j], "hop {j}: out={out} a={}", a[j]);
        }
    }

    #[test]
    fn unprofitable_loop_has_no_feasible_interior() {
        let fee = FeeRate::UNISWAP_V2;
        let hops = vec![
            SwapCurve::new(100.0, 200.0, fee).unwrap(),
            SwapCurve::new(200.0, 100.0, fee).unwrap(),
        ];
        let p = LoopProblem::new(hops, vec![1.0, 1.0]).unwrap();
        assert!(!p.is_profitable(&SolverOptions::default()));
        assert!(p.feasible_inputs().is_none());
    }
}
