//! Executable arbitrage plans produced by the solvers.

use arb_amm::curve::SwapCurve;

/// The flow through one hop of a loop plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HopFlow {
    /// Amount of the hop's input token injected into the pool.
    pub amount_in: f64,
    /// Amount of the hop's output token received from the pool.
    pub amount_out: f64,
}

/// A complete arbitrage plan for one loop: per-hop flows, per-token net
/// profits, and the monetized total.
///
/// Plans are *canonicalized*: each hop's output is the exact pool output
/// `F_j(amount_in_j)`. Taking the full pool output is always weakly optimal
/// (token prices are non-negative and more output only relaxes the linking
/// constraints), so canonicalization never reduces the objective.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopPlan {
    flows: Vec<HopFlow>,
    token_profits: Vec<f64>,
    prices: Vec<f64>,
    monetized: f64,
    converged: bool,
}

impl LoopPlan {
    /// The all-zero plan (used for unprofitable loops).
    pub fn zero(prices: &[f64]) -> Self {
        let n = prices.len();
        LoopPlan {
            flows: vec![
                HopFlow {
                    amount_in: 0.0,
                    amount_out: 0.0
                };
                n
            ],
            token_profits: vec![0.0; n],
            prices: prices.to_vec(),
            monetized: 0.0,
            converged: true,
        }
    }

    /// Builds a canonical plan from hop inputs: outputs are recomputed as
    /// exact pool outputs and per-token profits derived from the flows.
    ///
    /// Token `j`'s net profit is `received − spent = out_{j−1} − in_j`
    /// (indices mod `n`).
    ///
    /// # Panics
    ///
    /// Panics if lengths disagree (internal invariant).
    pub fn from_inputs(
        hops: &[SwapCurve],
        prices: &[f64],
        inputs: &[f64],
        converged: bool,
    ) -> Self {
        let n = hops.len();
        assert_eq!(inputs.len(), n);
        assert_eq!(prices.len(), n);
        let flows: Vec<HopFlow> = hops
            .iter()
            .zip(inputs)
            .map(|(hop, &amount_in)| HopFlow {
                amount_in,
                amount_out: hop.amount_out(amount_in),
            })
            .collect();
        let token_profits: Vec<f64> = (0..n)
            .map(|j| flows[(j + n - 1) % n].amount_out - flows[j].amount_in)
            .collect();
        let monetized = token_profits.iter().zip(prices).map(|(pi, p)| pi * p).sum();
        LoopPlan {
            flows,
            token_profits,
            prices: prices.to_vec(),
            monetized,
            converged,
        }
    }

    /// Per-hop flows in loop order.
    pub fn flows(&self) -> &[HopFlow] {
        &self.flows
    }

    /// Net profit in units of each loop token (position `j` = token `t_j`).
    pub fn token_profits(&self) -> &[f64] {
        &self.token_profits
    }

    /// Prices used to monetize the plan.
    pub fn prices(&self) -> &[f64] {
        &self.prices
    }

    /// The monetized (USD) profit `Σ_j P_j·π_j`.
    pub fn monetized_profit(&self) -> f64 {
        self.monetized
    }

    /// Whether the solver met its convergence tolerance.
    pub fn converged(&self) -> bool {
        self.converged
    }

    /// Loop length.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// Whether every hop's input is zero (the null plan).
    pub fn is_zero(&self) -> bool {
        self.flows.iter().all(|f| f.amount_in == 0.0)
    }

    /// Maximum constraint violation of the plan against the given curves:
    /// checks output feasibility (`out_j ≤ F_j(in_j)`), the risk-free
    /// linking constraints (`out_{j−1} ≥ in_j`), and non-negativity.
    ///
    /// Returns a non-negative violation magnitude (0 means feasible).
    pub fn max_violation(&self, hops: &[SwapCurve]) -> f64 {
        let n = self.flows.len();
        let mut worst = 0.0f64;
        for (j, (f, hop)) in self.flows.iter().zip(hops).enumerate() {
            worst = worst.max(-f.amount_in).max(-f.amount_out);
            worst = worst.max(f.amount_out - hop.amount_out(f.amount_in));
            let prev = &self.flows[(j + n - 1) % n];
            worst = worst.max(f.amount_in - prev.amount_out);
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arb_amm::fee::FeeRate;

    fn paper_hops() -> Vec<SwapCurve> {
        let fee = FeeRate::UNISWAP_V2;
        vec![
            SwapCurve::new(100.0, 200.0, fee).unwrap(),
            SwapCurve::new(300.0, 200.0, fee).unwrap(),
            SwapCurve::new(200.0, 400.0, fee).unwrap(),
        ]
    }

    #[test]
    fn zero_plan_properties() {
        let plan = LoopPlan::zero(&[2.0, 10.2, 20.0]);
        assert!(plan.is_zero());
        assert_eq!(plan.monetized_profit(), 0.0);
        assert!(plan.converged());
        assert_eq!(plan.len(), 3);
        assert_eq!(plan.max_violation(&paper_hops()), 0.0);
    }

    #[test]
    fn from_inputs_profits_sum_up() {
        let hops = paper_hops();
        let prices = [2.0, 10.2, 20.0];
        // Chain-consistent flows: input 10 X, forward outputs through.
        let a0 = 10.0;
        let a1 = hops[0].amount_out(a0);
        let a2 = hops[1].amount_out(a1);
        let plan = LoopPlan::from_inputs(&hops, &prices, &[a0, a1, a2], true);
        // Chained flows leave zero profit in Y and Z; all profit in X.
        assert!(plan.token_profits()[1].abs() < 1e-12);
        assert!(plan.token_profits()[2].abs() < 1e-12);
        let x_profit = hops[2].amount_out(a2) - a0;
        assert!((plan.token_profits()[0] - x_profit).abs() < 1e-12);
        assert!((plan.monetized_profit() - 2.0 * x_profit).abs() < 1e-12);
        assert!(plan.max_violation(&hops) < 1e-12);
    }

    #[test]
    fn violation_detects_over_withdrawal() {
        let hops = paper_hops();
        let prices = [1.0, 1.0, 1.0];
        let mut plan = LoopPlan::from_inputs(&hops, &prices, &[10.0, 5.0, 5.0], true);
        // Tamper: claim more output than the pool can give.
        plan.flows[0].amount_out += 5.0;
        assert!(plan.max_violation(&hops) >= 5.0 - 1e-12);
    }
}
