//! KKT residual verification for solved loop problems.
//!
//! The barrier method produces approximate dual multipliers
//! `λ_i = μ / g_i(x)`. At an exact optimum of the concave program the KKT
//! conditions hold:
//!
//! * stationarity: `∇φ(x) + Σ_i λ_i ∇g_i(x) = 0`
//! * primal feasibility: `g_i(x) ≥ 0`
//! * dual feasibility: `λ_i ≥ 0`
//! * complementary slackness: `λ_i · g_i(x) = 0` (equals `μ` at the barrier
//!   central path, so the residual is bounded by the final `μ`)
//!
//! [`verify_reduced`] evaluates all four residuals for the reduced
//! formulation so tests (and cautious callers) can certify optimality
//! independently of the solver's own convergence flag.

use arb_numerics::barrier::{BarrierProblem, BarrierSolution};
use arb_numerics::linalg::Matrix;

use crate::error::ConvexError;
use crate::problem::LoopProblem;
use crate::reduced::ReducedProblem;

/// Residuals of the KKT system at a candidate solution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KktReport {
    /// `‖∇φ + Σ λ_i ∇g_i‖_∞` — stationarity residual.
    pub stationarity: f64,
    /// Most negative constraint value (0 when primal feasible).
    pub primal_violation: f64,
    /// Most negative multiplier (0 when dual feasible).
    pub dual_violation: f64,
    /// `max_i λ_i·g_i(x)` — complementary slackness residual.
    pub complementarity: f64,
}

impl KktReport {
    /// Whether all residuals are within `tol`.
    pub fn is_optimal(&self, tol: f64) -> bool {
        self.stationarity <= tol
            && self.primal_violation <= tol
            && self.dual_violation <= tol
            && self.complementarity <= tol
    }
}

/// Computes KKT residuals for the reduced formulation at a barrier
/// solution.
///
/// # Errors
///
/// Returns [`ConvexError::LengthMismatch`] if the solution dimensions do
/// not match the problem.
pub fn verify_reduced(
    problem: &LoopProblem,
    solution: &BarrierSolution,
) -> Result<KktReport, ConvexError> {
    let reduced = ReducedProblem::new(problem.hops(), problem.prices());
    let n = reduced.dim();
    let m = reduced.num_constraints();
    if solution.x.len() != n || solution.multipliers.len() != m {
        return Err(ConvexError::LengthMismatch);
    }
    let x = &solution.x;

    let mut lagr_grad = vec![0.0; n];
    reduced.objective_grad(x, &mut lagr_grad);
    let mut cgrad = vec![0.0; n];
    let mut primal = 0.0f64;
    let mut dual = 0.0f64;
    let mut comp = 0.0f64;
    for i in 0..m {
        let g = reduced.constraint(i, x);
        let lam = solution.multipliers[i];
        primal = primal.max(-g);
        dual = dual.max(-lam);
        comp = comp.max((lam * g).abs());
        reduced.constraint_grad(i, x, &mut cgrad);
        for a in 0..n {
            lagr_grad[a] += lam * cgrad[a];
        }
    }
    let stationarity = lagr_grad.iter().fold(0.0f64, |acc, v| acc.max(v.abs()));
    Ok(KktReport {
        stationarity,
        primal_violation: primal,
        dual_violation: dual,
        complementarity: comp,
    })
}

/// Replaces the raw barrier multipliers `μ/g_i` with least-squares
/// multipliers over the active set.
///
/// At very small `μ` the barrier multipliers are dominated by centering
/// noise (the Newton decrement can be tiny while `∇Φ` is still large when
/// the barrier Hessian blows up near the boundary), so certificates built
/// from them overstate the stationarity residual even when the primal
/// solution is accurate. The standard remedy: pick the active constraints
/// (those with non-vanishing barrier multipliers), solve the normal
/// equations `(AᵀA)λ = −Aᵀ∇φ` for the stacked active gradients `A`, and
/// clamp any slightly negative results to zero.
pub fn polish_multipliers(problem: &LoopProblem, solution: &BarrierSolution) -> Vec<f64> {
    let reduced = ReducedProblem::new(problem.hops(), problem.prices());
    let n = reduced.dim();
    let m = reduced.num_constraints();
    let mut grad_phi = vec![0.0; n];
    reduced.objective_grad(&solution.x, &mut grad_phi);
    let mut grad_buf = vec![0.0; n];
    let mut all_columns: Vec<Vec<f64>> = Vec::with_capacity(m);
    for i in 0..m {
        reduced.constraint_grad(i, &solution.x, &mut grad_buf);
        all_columns.push(grad_buf.clone());
    }

    // Working set: constraints the central path marks active (barrier
    // multipliers λ_i = μ/g_i vanish for inactive constraints, so a
    // relative threshold separates them cleanly). Restricting the
    // least-squares to this set keeps spurious multiplier mass off
    // far-from-binding constraints, which would otherwise pollute the
    // complementarity residual through the rank-deficient geometry.
    // Negative least-squares multipliers are then dropped iteratively
    // (plain NNLS outer loop; m ≤ 2n is tiny).
    let max_raw = solution.multipliers.iter().copied().fold(0.0f64, f64::max);
    let mut working: Vec<usize> = (0..m)
        .filter(|&i| solution.multipliers[i] >= 1e-3 * max_raw)
        .collect();
    let mut polished = vec![0.0; m];
    for _pass in 0..m {
        if working.is_empty() {
            break;
        }
        let k = working.len();
        let mut ata = Matrix::zeros(k, k);
        let mut rhs = vec![0.0; k];
        let mut trace = 0.0;
        for a in 0..k {
            for b in 0..k {
                let v: f64 = all_columns[working[a]]
                    .iter()
                    .zip(&all_columns[working[b]])
                    .map(|(x, y)| x * y)
                    .sum();
                ata[(a, b)] = v;
                if a == b {
                    trace += v;
                }
            }
            rhs[a] = -all_columns[working[a]]
                .iter()
                .zip(&grad_phi)
                .map(|(x, y)| x * y)
                .sum::<f64>();
        }
        // Regularize rank deficiency (the stacked gradients of 2n
        // constraints in n variables are necessarily dependent).
        let reg = 1e-12 * (1.0 + trace / k as f64);
        ata.add_diagonal(reg);
        let Ok(lambda) = ata.cholesky_solve(&rhs) else {
            // Degenerate geometry: keep the barrier multipliers.
            return solution.multipliers.clone();
        };
        let negatives: Vec<usize> = (0..k).filter(|&a| lambda[a] < 0.0).collect();
        if negatives.is_empty() {
            polished = vec![0.0; m];
            for (&i, l) in working.iter().zip(&lambda) {
                polished[i] = *l;
            }
            return polished;
        }
        // Drop the most negative and re-solve.
        let worst = *negatives
            .iter()
            .min_by(|&&a, &&b| lambda[a].partial_cmp(&lambda[b]).expect("finite"))
            .expect("non-empty");
        working.remove(worst);
    }
    polished
}

/// Convenience: solve the reduced problem, polish the dual multipliers,
/// and verify the KKT residuals in one call. Returns the (polished)
/// solution alongside the report.
///
/// # Errors
///
/// Forwards solver and validation errors; see [`LoopProblem::solve`].
pub fn solve_and_verify(
    problem: &LoopProblem,
    config: &arb_numerics::barrier::BarrierConfig,
) -> Result<(BarrierSolution, KktReport), ConvexError> {
    let start = problem
        .feasible_inputs()
        .ok_or(ConvexError::FeasibilityConstruction)?;
    let scaled = problem.scaled_barrier(config);
    let mut sol = crate::reduced::solve_raw(problem, &start, &scaled)?;
    sol.multipliers = polish_multipliers(problem, &sol);
    let report = verify_reduced(problem, &sol)?;
    Ok((sol, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use arb_amm::curve::SwapCurve;
    use arb_amm::fee::FeeRate;
    use arb_numerics::barrier::BarrierConfig;

    fn paper_problem() -> LoopProblem {
        let fee = FeeRate::UNISWAP_V2;
        LoopProblem::new(
            vec![
                SwapCurve::new(100.0, 200.0, fee).unwrap(),
                SwapCurve::new(300.0, 200.0, fee).unwrap(),
                SwapCurve::new(200.0, 400.0, fee).unwrap(),
            ],
            vec![2.0, 10.2, 20.0],
        )
        .unwrap()
    }

    #[test]
    fn paper_example_satisfies_kkt() {
        let p = paper_problem();
        let (sol, report) = solve_and_verify(&p, &BarrierConfig::default()).unwrap();
        assert!(sol.converged);
        // The multipliers are barrier approximations (λ_i = μ/g_i); the
        // stationarity residual scales with price magnitudes (~20 here).
        assert!(
            report.stationarity < 1e-2,
            "stationarity = {}",
            report.stationarity
        );
        assert!(report.primal_violation <= 1e-12);
        assert!(report.dual_violation <= 1e-12);
        assert!(
            report.complementarity < 1e-4,
            "complementarity = {}",
            report.complementarity
        );
        assert!(report.is_optimal(1e-2));
    }

    #[test]
    fn dimension_mismatch_detected() {
        let p = paper_problem();
        let bad = BarrierSolution {
            x: vec![1.0],
            objective: 0.0,
            multipliers: vec![],
            mu: 1.0,
            newton_iterations: 0,
            converged: false,
        };
        assert_eq!(verify_reduced(&p, &bad), Err(ConvexError::LengthMismatch));
    }
}
