//! The reduced `n`-variable formulation.
//!
//! At any optimum of eq. 8 with non-negative prices the pool constraints
//! bind (taking the full pool output is weakly optimal), so the outputs can
//! be eliminated: `b_j = F_j(a_j)`. What remains is
//!
//! ```text
//! maximize  φ(a) = Σ_j [ P_{j+1}·F_j(a_j) − P_j·a_j ]
//! subject to  g_j(a) = F_{j−1}(a_{j−1}) − a_j ≥ 0      (linking, n constraints)
//!             a_j ≥ 0                                   (bounds, n constraints)
//! ```
//!
//! `F_j` is concave increasing, so `φ` is concave and every `g_j` is
//! concave: a textbook barrier problem with analytic derivatives. The
//! objective Hessian is diagonal and each linking constraint couples only
//! `(a_{j−1}, a_j)`, so Newton systems are cyclic-tridiagonal — the dense
//! solver handles these sizes instantly.

use arb_amm::curve::SwapCurve;
use arb_numerics::barrier::{solve_barrier, BarrierConfig, BarrierProblem};
use arb_numerics::linalg::Matrix;

use crate::error::ConvexError;
use crate::problem::LoopProblem;
use crate::solution::LoopPlan;

/// The reduced barrier problem over hop inputs `a`.
pub(crate) struct ReducedProblem<'a> {
    hops: &'a [SwapCurve],
    prices: &'a [f64],
}

impl<'a> ReducedProblem<'a> {
    pub(crate) fn new(hops: &'a [SwapCurve], prices: &'a [f64]) -> Self {
        debug_assert_eq!(hops.len(), prices.len());
        ReducedProblem { hops, prices }
    }

    fn n(&self) -> usize {
        self.hops.len()
    }

    /// Price of the *output* token of hop `j`.
    fn price_out(&self, j: usize) -> f64 {
        self.prices[(j + 1) % self.n()]
    }
}

impl BarrierProblem for ReducedProblem<'_> {
    fn dim(&self) -> usize {
        self.n()
    }

    fn num_constraints(&self) -> usize {
        2 * self.n()
    }

    fn objective(&self, a: &[f64]) -> f64 {
        (0..self.n())
            .map(|j| self.price_out(j) * self.hops[j].amount_out(a[j]) - self.prices[j] * a[j])
            .sum()
    }

    fn objective_grad(&self, a: &[f64], grad: &mut [f64]) {
        for j in 0..self.n() {
            grad[j] = self.price_out(j) * self.hops[j].derivative(a[j]) - self.prices[j];
        }
    }

    fn objective_hess(&self, a: &[f64], hess: &mut Matrix) {
        hess.clear();
        for j in 0..self.n() {
            hess[(j, j)] = self.price_out(j) * self.hops[j].second_derivative(a[j]);
        }
    }

    fn constraint(&self, i: usize, a: &[f64]) -> f64 {
        let n = self.n();
        if i < n {
            // Bound: a_i ≥ 0 (checked before linking so infeasible trial
            // points are rejected before curves are probed off-domain).
            a[i]
        } else {
            // Linking: F_{j−1}(a_{j−1}) − a_j ≥ 0 for j = i − n.
            let j = i - n;
            let prev = (j + n - 1) % n;
            self.hops[prev].amount_out(a[prev]) - a[j]
        }
    }

    fn constraint_grad(&self, i: usize, a: &[f64], grad: &mut [f64]) {
        grad.iter_mut().for_each(|v| *v = 0.0);
        let n = self.n();
        if i < n {
            grad[i] = 1.0;
        } else {
            let j = i - n;
            let prev = (j + n - 1) % n;
            grad[prev] = self.hops[prev].derivative(a[prev]);
            grad[j] -= 1.0;
        }
    }

    fn constraint_hess(&self, i: usize, a: &[f64], hess: &mut Matrix) {
        hess.clear();
        let n = self.n();
        if i >= n {
            let j = i - n;
            let prev = (j + n - 1) % n;
            hess[(prev, prev)] = self.hops[prev].second_derivative(a[prev]);
        }
    }
}

/// Solves the reduced problem from a strictly feasible start.
pub(crate) fn solve(
    problem: &LoopProblem,
    start: &[f64],
    config: &BarrierConfig,
) -> Result<LoopPlan, ConvexError> {
    let reduced = ReducedProblem::new(problem.hops(), problem.prices());
    let sol = solve_barrier(&reduced, start, config)?;
    Ok(LoopPlan::from_inputs(
        problem.hops(),
        problem.prices(),
        &sol.x,
        sol.converged,
    ))
}

/// Solves and additionally returns the raw barrier solution (for KKT
/// verification in tests and diagnostics).
pub(crate) fn solve_raw(
    problem: &LoopProblem,
    start: &[f64],
    config: &BarrierConfig,
) -> Result<arb_numerics::barrier::BarrierSolution, ConvexError> {
    let reduced = ReducedProblem::new(problem.hops(), problem.prices());
    Ok(solve_barrier(&reduced, start, config)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::SolverOptions;
    use arb_amm::fee::FeeRate;
    use proptest::prelude::*;

    fn paper_problem() -> LoopProblem {
        let fee = FeeRate::UNISWAP_V2;
        LoopProblem::new(
            vec![
                SwapCurve::new(100.0, 200.0, fee).unwrap(),
                SwapCurve::new(300.0, 200.0, fee).unwrap(),
                SwapCurve::new(200.0, 400.0, fee).unwrap(),
            ],
            vec![2.0, 10.2, 20.0],
        )
        .unwrap()
    }

    /// Monetized MaxMax profit computed from the closed-form rotations.
    fn maxmax(p: &LoopProblem) -> f64 {
        (0..p.len())
            .map(|s| p.rotation_chain(s).max_profit() * p.prices()[s])
            .fold(f64::NEG_INFINITY, f64::max)
    }

    #[test]
    fn paper_example_beats_maxmax_and_matches_206() {
        let p = paper_problem();
        let plan = p.solve(&SolverOptions::default()).unwrap();
        assert!(plan.converged());
        // Paper: ConvexOptimization ≈ $206.1 vs MaxMax ≈ $205.6.
        assert!(
            (plan.monetized_profit() - 206.1).abs() < 0.5,
            "monetized = {}",
            plan.monetized_profit()
        );
        assert!(plan.monetized_profit() >= maxmax(&p) - 1e-6);
        assert!(plan.max_violation(p.hops()) < 1e-6);
    }

    #[test]
    fn paper_example_flow_amounts() {
        // Paper plan: 31.3 X → 47.6 Y; 42.6 Y → 24.8 Z; 17.1 Z → 31.3 X,
        // leaving ~5 Y and ~7.7 Z as profit.
        let p = paper_problem();
        let plan = p.solve(&SolverOptions::default()).unwrap();
        let f = plan.flows();
        assert!(
            (f[0].amount_in - 31.3).abs() < 0.3,
            "in0={}",
            f[0].amount_in
        );
        assert!(
            (f[0].amount_out - 47.6).abs() < 0.3,
            "out0={}",
            f[0].amount_out
        );
        assert!(
            (f[1].amount_in - 42.6).abs() < 0.3,
            "in1={}",
            f[1].amount_in
        );
        assert!(
            (f[1].amount_out - 24.8).abs() < 0.3,
            "out1={}",
            f[1].amount_out
        );
        assert!(
            (f[2].amount_in - 17.1).abs() < 0.3,
            "in2={}",
            f[2].amount_in
        );
        assert!(
            (f[2].amount_out - 31.3).abs() < 0.3,
            "out2={}",
            f[2].amount_out
        );
        // Profit concentrated in Y and Z.
        assert!((plan.token_profits()[1] - 5.0).abs() < 0.3);
        assert!((plan.token_profits()[2] - 7.7).abs() < 0.3);
    }

    #[test]
    fn unprofitable_returns_zero_plan() {
        let fee = FeeRate::UNISWAP_V2;
        let p = LoopProblem::new(
            vec![
                SwapCurve::new(100.0, 200.0, fee).unwrap(),
                SwapCurve::new(200.0, 100.0, fee).unwrap(),
            ],
            vec![1.0, 3.0],
        )
        .unwrap();
        let plan = p.solve(&SolverOptions::default()).unwrap();
        assert!(plan.is_zero());
        assert_eq!(plan.monetized_profit(), 0.0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn convex_dominates_maxmax_on_random_loops(
            r in proptest::collection::vec(50.0..5_000.0f64, 6),
            prices in proptest::collection::vec(0.1..100.0f64, 3),
        ) {
            let fee = FeeRate::UNISWAP_V2;
            let hops = vec![
                SwapCurve::new(r[0], r[1], fee).unwrap(),
                SwapCurve::new(r[2], r[3], fee).unwrap(),
                SwapCurve::new(r[4], r[5], fee).unwrap(),
            ];
            let p = LoopProblem::new(hops, prices).unwrap();
            let plan = p.solve(&SolverOptions::default()).unwrap();
            let mm = maxmax(&p).max(0.0);
            // Theorem T2: ConvexOpt ≥ MaxMax (up to solver tolerance).
            prop_assert!(
                plan.monetized_profit() >= mm - 1e-5 * (1.0 + mm),
                "convex={} maxmax={}", plan.monetized_profit(), mm
            );
            // Plans are feasible.
            prop_assert!(plan.max_violation(p.hops()) < 1e-6);
            // Token profits are non-negative (risk-free constraints).
            for pi in plan.token_profits() {
                prop_assert!(*pi >= -1e-8, "negative token profit {pi}");
            }
        }

        #[test]
        fn no_arb_implies_zero_everywhere(
            x in 100.0..10_000.0f64,
            y in 100.0..10_000.0f64,
            px in 0.1..50.0f64,
            py in 0.1..50.0f64,
        ) {
            // Two-pool loop with identical reserves both ways: rate = γ² < 1.
            let fee = FeeRate::UNISWAP_V2;
            let p = LoopProblem::new(
                vec![
                    SwapCurve::new(x, y, fee).unwrap(),
                    SwapCurve::new(y, x, fee).unwrap(),
                ],
                vec![px, py],
            )
            .unwrap();
            prop_assert!(p.round_trip_rate() < 1.0);
            let plan = p.solve(&SolverOptions::default()).unwrap();
            prop_assert!(plan.is_zero());
        }
    }
}
