//! Convex-optimization formulation of arbitrage-loop profit maximization.
//!
//! This crate implements the paper's *ConvexOptimization* strategy
//! (eq. 7/8): given an arbitrage loop `t0 → t1 → … → t(n−1) → t0` through
//! CPMM pools and CEX prices `P_t`, maximize the **monetized** profit
//!
//! ```text
//! maximize  Σ_j P_j · (received_j − spent_j)
//! ```
//!
//! subject to the per-pool constant-product constraints and the risk-free
//! linking constraints `received_j ≥ spent_j` for every token `j` (paper
//! eq. 8 — the relaxation of the flow-conservation equalities of eq. 7).
//!
//! Two equivalent formulations are implemented and cross-checked:
//!
//! * [`reduced`] — eliminates the output variables using the fact that the
//!   pool constraints bind at any optimum (`b_j = F_j(a_j)`), leaving an
//!   `n`-variable smooth concave program;
//! * [`full`] — keeps all `2n` variables with the product constraints in
//!   concave log form `log(x+γa) + log(y−b) ≥ log(x·y)`, faithful to
//!   eq. 8's structure.
//!
//! Both run on the damped-Newton log-barrier solver from `arb-numerics`.
//! The paper's Theorem "no MaxMax profit ⇒ no ConvexOpt profit" is applied
//! literally: when the loop's round-trip rate is ≤ 1 the zero plan is
//! returned without invoking the solver (there is no strictly feasible
//! interior point in that case).
//!
//! # Quickstart
//!
//! ```
//! use arb_amm::{fee::FeeRate, curve::SwapCurve};
//! use arb_convex::{LoopProblem, SolverOptions};
//!
//! # fn main() -> Result<(), arb_convex::ConvexError> {
//! let fee = FeeRate::UNISWAP_V2;
//! // The paper's §V example: X→Y→Z→X with prices (2, 10.2, 20).
//! let hops = vec![
//!     SwapCurve::new(100.0, 200.0, fee)?,
//!     SwapCurve::new(300.0, 200.0, fee)?,
//!     SwapCurve::new(200.0, 400.0, fee)?,
//! ];
//! let problem = LoopProblem::new(hops, vec![2.0, 10.2, 20.0])?;
//! let plan = problem.solve(&SolverOptions::default())?;
//! assert!((plan.monetized_profit() - 206.1).abs() < 1.0);
//! # Ok(())
//! # }
//! ```

pub mod error;
pub mod full;
pub mod kkt;
pub mod problem;
pub mod reduced;
pub mod solution;

pub use error::ConvexError;
pub use kkt::KktReport;
pub use problem::{Formulation, LoopProblem, SolverOptions};
pub use solution::{HopFlow, LoopPlan};
