//! Error type for convex-program construction and solving.

use arb_numerics::NumericsError;
use std::error::Error;
use std::fmt;

/// Errors from building or solving a loop optimization problem.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ConvexError {
    /// A loop needs at least two hops.
    LoopTooShort,
    /// `hops` and `prices` lengths differ.
    LengthMismatch,
    /// A price was negative, NaN, or infinite.
    InvalidPrice,
    /// Pool parameters were invalid (forwarded from `arb-amm`).
    Amm(arb_amm::AmmError),
    /// The interior-point solver failed.
    Solver(NumericsError),
    /// No strictly feasible interior point could be constructed for a loop
    /// that appeared profitable (numerically degenerate edge case).
    FeasibilityConstruction,
}

impl fmt::Display for ConvexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConvexError::LoopTooShort => write!(f, "arbitrage loop needs at least 2 hops"),
            ConvexError::LengthMismatch => {
                write!(f, "hops and prices must have the same length")
            }
            ConvexError::InvalidPrice => {
                write!(f, "token price must be non-negative and finite")
            }
            ConvexError::Amm(e) => write!(f, "amm error: {e}"),
            ConvexError::Solver(e) => write!(f, "solver error: {e}"),
            ConvexError::FeasibilityConstruction => {
                write!(f, "could not construct a strictly feasible starting point")
            }
        }
    }
}

impl Error for ConvexError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ConvexError::Amm(e) => Some(e),
            ConvexError::Solver(e) => Some(e),
            _ => None,
        }
    }
}

impl From<arb_amm::AmmError> for ConvexError {
    fn from(e: arb_amm::AmmError) -> Self {
        ConvexError::Amm(e)
    }
}

impl From<NumericsError> for ConvexError {
    fn from(e: NumericsError) -> Self {
        ConvexError::Solver(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let e = ConvexError::Amm(arb_amm::AmmError::SameToken);
        assert!(e.to_string().contains("amm error"));
        assert!(e.source().is_some());
        assert!(ConvexError::LoopTooShort.source().is_none());
    }

    #[test]
    fn conversions() {
        let _: ConvexError = arb_amm::AmmError::Overflow.into();
        let _: ConvexError = NumericsError::SingularMatrix.into();
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ConvexError>();
    }
}
