//! Workload error type.

use std::error::Error;
use std::fmt;

/// Errors from scenario generation.
#[derive(Debug)]
#[non_exhaustive]
pub enum WorkloadError {
    /// The scenario configuration is contradictory.
    InvalidConfig(&'static str),
    /// The base-universe snapshot generator failed.
    Snapshot(arb_snapshot::SnapshotError),
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::InvalidConfig(reason) => {
                write!(f, "invalid scenario config: {reason}")
            }
            WorkloadError::Snapshot(e) => write!(f, "base universe generation failed: {e}"),
        }
    }
}

impl Error for WorkloadError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            WorkloadError::InvalidConfig(_) => None,
            WorkloadError::Snapshot(e) => Some(e),
        }
    }
}

impl From<arb_snapshot::SnapshotError> for WorkloadError {
    fn from(e: arb_snapshot::SnapshotError) -> Self {
        WorkloadError::Snapshot(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = WorkloadError::InvalidConfig("boom");
        assert!(e.to_string().contains("boom"));
        assert!(e.source().is_none());
    }
}
