//! Deterministic workload scenarios for engines, benches, and the bot.
//!
//! Scale work needs scenario diversity: a runtime that only ever sees
//! steady sparse deltas looks fast until a whale burst, a fee-regime
//! shift, or a pool-churn storm hits. This crate is the catalog of those
//! shapes — a **seeded, fully deterministic** generator that materializes
//! a market (a multi-domain pool universe plus CEX prices) and a tick
//! stream of chain events + feed moves:
//!
//! * [`catalog()`](catalog::catalog) — the named workload entries
//!   ([`WorkloadSpec`]):
//!   `steady-sparse`, `whale-bursts`, `fee-regime-shift`, `pool-churn`,
//!   `degenerate-flood`. The fee-regime entry follows Milionis et
//!   al. ("Automated Market Making and Arbitrage Profits in the Presence
//!   of Fees"): profitability regimes shift with the fee tier, move size,
//!   and trade-arrival intensity, so the scenario sweeps all three.
//! * [`scenario::Scenario`] — the materialized run: initial pools, an
//!   initial price table, and per-tick [`scenario::TickBatch`]es ready to
//!   feed `arb_engine::StreamingEngine::apply_events` or
//!   `arb_engine::ShardedRuntime::apply_events`.
//!
//! Universes are generated as `domains` disconnected islands (per the
//! shared-sequencer motivation: concurrent execution domains whose pools
//! never share a cycle), which is exactly the component structure the
//! sharded runtime partitions along. Everything is a pure function of
//! [`scenario::ScenarioConfig`] — two calls with the same config produce
//! bit-identical scenarios, which is what lets
//! `tests/runtime_equivalence.rs` replay one stream into two engines and
//! demand bit-identical output.
//!
//! # Quickstart
//!
//! ```
//! use arb_workloads::{catalog, ScenarioConfig};
//!
//! let spec = arb_workloads::find("steady-sparse").expect("in catalog");
//! let scenario = spec.scenario(&ScenarioConfig::default()).expect("generates");
//! assert_eq!(scenario.ticks.len(), ScenarioConfig::default().ticks);
//! assert!(catalog().len() >= 5);
//! ```

pub mod catalog;
pub mod error;
pub mod scenario;
pub mod storm;

pub use catalog::{catalog, find, SimProfile, WorkloadKind, WorkloadSpec};
pub use error::WorkloadError;
pub use scenario::{Scenario, ScenarioConfig, TickBatch};
pub use storm::{QueryOp, ReadStormProfile, ReaderPlan};
