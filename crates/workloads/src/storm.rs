//! Read-storm profiles: deterministic query plans for serving benches.
//!
//! The serving layer is exercised by *readers* — threads firing point
//! queries at published snapshots while a market workload streams
//! underneath. Like every other shape in this crate, the storm must be
//! a pure function of its config so two runs (or a bench and the test
//! re-checking it) issue bit-identical query sequences. A
//! [`ReadStormProfile`] expands into one [`ReaderPlan`] per reader
//! thread: a client class plus a seeded cycle of [`QueryOp`]s drawn
//! from the scenario's token/pool universe.
//!
//! This crate deliberately does not depend on `arb-serve`: the class is
//! carried as an index into the serving layer's priority-ordered class
//! list (`arb_serve::ClientClass::ALL`), keeping the workload catalog
//! at the bottom of the dependency stack.

use arb_amm::pool::PoolId;
use arb_amm::token::TokenId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One point query against a published snapshot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QueryOp {
    /// The best `k` opportunities.
    TopK(usize),
    /// Every ranked opportunity trading through the token.
    ByToken(TokenId),
    /// Every ranked opportunity crossing the pool.
    ByPool(PoolId),
    /// Every ranked opportunity clearing a net-profit floor (USD).
    MinNetProfit(f64),
}

/// Sizing and seeding for one read storm.
#[derive(Debug, Clone, Copy)]
pub struct ReadStormProfile {
    /// RNG seed; plans are a pure function of the profile + universe.
    pub seed: u64,
    /// Reader threads to plan for.
    pub readers: usize,
    /// Distinct queries in each reader's cycle (readers loop it).
    pub ops_per_reader: usize,
    /// Net-profit floors sampled by `MinNetProfit` ops (USD).
    pub profit_floor_range: (f64, f64),
    /// Largest `k` sampled by `TopK` ops.
    pub max_top_k: usize,
}

impl Default for ReadStormProfile {
    fn default() -> Self {
        Self {
            seed: 0x5702_3341,
            readers: 4,
            ops_per_reader: 256,
            profit_floor_range: (1.0, 500.0),
            max_top_k: 16,
        }
    }
}

/// One reader thread's deterministic work: its class and query cycle.
#[derive(Debug, Clone)]
pub struct ReaderPlan {
    /// Index into the serving layer's priority-ordered class list
    /// (0 = interactive, 1 = analytics, 2 = bulk).
    pub class_index: usize,
    /// The query cycle, issued round-robin for the storm's duration.
    pub ops: Vec<QueryOp>,
}

impl ReadStormProfile {
    /// Expands the profile against a scenario universe of `num_tokens`
    /// tokens and `num_pools` pools. Classes round-robin across readers
    /// (reader 0 interactive, 1 analytics, 2 bulk, 3 interactive, …) so
    /// every class is represented whenever `readers >= 3`.
    #[must_use]
    pub fn plans(&self, num_tokens: usize, num_pools: usize) -> Vec<ReaderPlan> {
        (0..self.readers)
            .map(|reader| {
                let mut rng = StdRng::seed_from_u64(self.seed ^ (0x00d5_0000 + reader as u64) << 8);
                let ops = (0..self.ops_per_reader.max(1))
                    .map(|_| self.op(&mut rng, num_tokens, num_pools))
                    .collect();
                ReaderPlan {
                    class_index: reader % 3,
                    ops,
                }
            })
            .collect()
    }

    fn op(&self, rng: &mut StdRng, num_tokens: usize, num_pools: usize) -> QueryOp {
        let (floor_lo, floor_hi) = self.profit_floor_range;
        match rng.gen_range(0u32..4) {
            0 => QueryOp::TopK(rng.gen_range(1..=self.max_top_k.max(1))),
            1 if num_tokens > 0 => {
                QueryOp::ByToken(TokenId::new(rng.gen_range(0..num_tokens as u32)))
            }
            2 if num_pools > 0 => QueryOp::ByPool(PoolId::new(rng.gen_range(0..num_pools as u32))),
            _ => QueryOp::MinNetProfit(rng.gen_range(floor_lo..=floor_hi)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic() {
        let profile = ReadStormProfile::default();
        let a = profile.plans(24, 48);
        let b = profile.plans(24, 48);
        assert_eq!(a.len(), 4);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.class_index, y.class_index);
            assert_eq!(x.ops, y.ops);
        }
    }

    #[test]
    fn readers_diverge_and_classes_rotate() {
        let profile = ReadStormProfile {
            readers: 6,
            ..ReadStormProfile::default()
        };
        let plans = profile.plans(24, 48);
        assert_eq!(
            plans.iter().map(|p| p.class_index).collect::<Vec<_>>(),
            vec![0, 1, 2, 0, 1, 2]
        );
        assert_ne!(plans[0].ops, plans[3].ops, "same class, distinct plan");
    }

    #[test]
    fn ops_respect_the_universe() {
        let profile = ReadStormProfile {
            ops_per_reader: 512,
            ..ReadStormProfile::default()
        };
        for plan in profile.plans(10, 20) {
            for op in &plan.ops {
                match *op {
                    QueryOp::TopK(k) => assert!((1..=16).contains(&k)),
                    QueryOp::ByToken(token) => assert!(token.index() < 10),
                    QueryOp::ByPool(pool) => assert!(pool.index() < 20),
                    QueryOp::MinNetProfit(floor) => assert!((1.0..=500.0).contains(&floor)),
                }
            }
        }
    }
}
