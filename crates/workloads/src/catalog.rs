//! The named workload catalog.

use crate::error::WorkloadError;
use crate::scenario::{Scenario, ScenarioConfig};

/// The shape of market activity a workload models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum WorkloadKind {
    /// A calm live market: every tick nudges a handful of pools by small
    /// amounts — the sparse-delta baseline the streaming engine was built
    /// for.
    SteadySparse,
    /// Mostly quiet, punctuated by whale swaps that move a large slice of
    /// the universe by double-digit percentages in one tick.
    WhaleBursts,
    /// The Milionis et al. sweep: phases of (fee tier, move size, arrival
    /// intensity) that shift which loops clear the fee hurdle — low-fee
    /// pools under small frequent moves, then mid, then high-fee pools
    /// under large rare moves, with new pools deployed at each regime's
    /// tier.
    FeeRegimeShift,
    /// A create/retire storm: pools deploy (occasionally bridging two
    /// execution domains — the sharded runtime's rebuild path), drain to
    /// zero, and revive, while background deltas keep flowing.
    PoolChurn,
    /// Degenerate-pool flood: waves of pools drained to zero reserves and
    /// revived shortly after, stressing retire/revive bookkeeping
    /// (tombstoned cycle slots, posting lists, standing-set eviction).
    DegenerateFlood,
}

/// Agent intensities for driving the same shape through the bot's
/// chain-backed market simulation (`arb_bot::sim::MarketSim`), where
/// events come from executed transactions instead of a synthetic stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimProfile {
    /// Per-pool probability that the noise trader acts each block.
    pub trader_probability: f64,
    /// Noise trade size as a fraction of the input reserve.
    pub trader_max_fraction: f64,
    /// Per-pool probability that the LP agent acts each block.
    pub lp_probability: f64,
    /// LP deposit size as a fraction of reserves.
    pub lp_fraction: f64,
    /// CEX reference-price volatility per block.
    pub cex_volatility: f64,
    /// Initial pool mispricing dispersion.
    pub mispricing_std: f64,
}

/// A named, documented workload: the unit of the catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadSpec {
    /// Stable catalog name (kebab-case, usable as a CLI argument).
    pub name: &'static str,
    /// The activity shape.
    pub kind: WorkloadKind,
    /// One-line description.
    pub summary: &'static str,
}

impl WorkloadSpec {
    /// Materializes this workload into a concrete scenario: a multi-domain
    /// pool universe, an initial price table, and `config.ticks` event
    /// batches. Deterministic: the same `config` always produces the
    /// bit-identical scenario.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidConfig`] for contradictory sizing
    /// and [`WorkloadError::Snapshot`] if the base universe cannot be
    /// generated.
    pub fn scenario(&self, config: &ScenarioConfig) -> Result<Scenario, WorkloadError> {
        crate::scenario::generate(self, config)
    }

    /// The agent intensities that reproduce this workload's shape inside
    /// the chain-backed market sim.
    pub fn sim_profile(&self) -> SimProfile {
        match self.kind {
            WorkloadKind::SteadySparse => SimProfile {
                trader_probability: 0.25,
                trader_max_fraction: 0.015,
                lp_probability: 0.05,
                lp_fraction: 0.05,
                cex_volatility: 0.001,
                mispricing_std: 0.006,
            },
            WorkloadKind::WhaleBursts => SimProfile {
                trader_probability: 0.1,
                trader_max_fraction: 0.2,
                lp_probability: 0.03,
                lp_fraction: 0.05,
                cex_volatility: 0.002,
                mispricing_std: 0.004,
            },
            WorkloadKind::FeeRegimeShift => SimProfile {
                trader_probability: 0.5,
                trader_max_fraction: 0.03,
                lp_probability: 0.08,
                lp_fraction: 0.08,
                cex_volatility: 0.004,
                mispricing_std: 0.008,
            },
            WorkloadKind::PoolChurn => SimProfile {
                trader_probability: 0.3,
                trader_max_fraction: 0.05,
                lp_probability: 0.25,
                lp_fraction: 0.2,
                cex_volatility: 0.002,
                mispricing_std: 0.006,
            },
            WorkloadKind::DegenerateFlood => SimProfile {
                trader_probability: 0.2,
                trader_max_fraction: 0.1,
                lp_probability: 0.35,
                lp_fraction: 0.45,
                cex_volatility: 0.001,
                mispricing_std: 0.004,
            },
        }
    }
}

const CATALOG: [WorkloadSpec; 5] = [
    WorkloadSpec {
        name: "steady-sparse",
        kind: WorkloadKind::SteadySparse,
        summary: "calm market, a few small reserve deltas per tick",
    },
    WorkloadSpec {
        name: "whale-bursts",
        kind: WorkloadKind::WhaleBursts,
        summary: "quiet baseline punctuated by large correlated swaps",
    },
    WorkloadSpec {
        name: "fee-regime-shift",
        kind: WorkloadKind::FeeRegimeShift,
        summary: "fee-tier/volatility/intensity phases per Milionis et al.",
    },
    WorkloadSpec {
        name: "pool-churn",
        kind: WorkloadKind::PoolChurn,
        summary: "pool create/drain/revive storm, incl. cross-domain bridges",
    },
    WorkloadSpec {
        name: "degenerate-flood",
        kind: WorkloadKind::DegenerateFlood,
        summary: "waves of pools drained to zero and revived",
    },
];

/// The full workload catalog.
pub fn catalog() -> &'static [WorkloadSpec] {
    &CATALOG
}

/// Looks a workload up by its stable name.
pub fn find(name: &str) -> Option<&'static WorkloadSpec> {
    CATALOG.iter().find(|spec| spec.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_names_are_unique_and_findable() {
        let mut names: Vec<&str> = catalog().iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), catalog().len());
        for spec in catalog() {
            assert_eq!(find(spec.name).unwrap().kind, spec.kind);
            assert!(!spec.summary.is_empty());
        }
        assert!(find("no-such-workload").is_none());
    }

    #[test]
    fn sim_profiles_are_sane() {
        for spec in catalog() {
            let p = spec.sim_profile();
            assert!((0.0..=1.0).contains(&p.trader_probability), "{}", spec.name);
            assert!((0.0..=1.0).contains(&p.lp_probability), "{}", spec.name);
            assert!(p.trader_max_fraction > 0.0 && p.trader_max_fraction < 1.0);
            assert!(p.cex_volatility >= 0.0);
            assert!(p.mispricing_std >= 0.0);
        }
    }
}
