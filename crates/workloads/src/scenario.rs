//! Scenario materialization: universe building + per-kind tick streams.

use std::collections::VecDeque;
use std::ops::Range;

use arb_amm::fee::FeeRate;
use arb_amm::pool::{Pool, PoolId};
use arb_amm::token::TokenId;
use arb_cex::feed::PriceTable;
use arb_dexsim::events::Event;
use arb_dexsim::units::to_raw;
use arb_snapshot::{Generator, SnapshotConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::catalog::{WorkloadKind, WorkloadSpec};
use crate::error::WorkloadError;

/// Sizing and seeding for one scenario run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioConfig {
    /// RNG seed; the scenario is a pure function of this config.
    pub seed: u64,
    /// Independent execution domains (disconnected islands). Cycles never
    /// cross domains, so this is also the natural shard count.
    pub domains: usize,
    /// Token universe size, split across domains.
    pub num_tokens: usize,
    /// Pool count, split across domains.
    pub num_pools: usize,
    /// Number of tick batches to generate.
    pub ticks: usize,
    /// Scales per-tick event counts (1.0 = the workload's native rate).
    pub intensity: f64,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            seed: 7,
            domains: 4,
            num_tokens: 24,
            num_pools: 48,
            ticks: 32,
            intensity: 1.0,
        }
    }
}

impl ScenarioConfig {
    /// Sizing preset keyed on the pool count alone — the one knob tests,
    /// benches, and soaks share. Keeps the default 4 execution domains
    /// and the default config's 5:2 pool:token shape, scaling from the
    /// 48-pool default through the 600-pool bench universes up to the
    /// 10k–100k-pool soak range. Seed, tick count, and intensity stay at
    /// their defaults; override them with struct-update syntax:
    ///
    /// ```
    /// use arb_workloads::ScenarioConfig;
    ///
    /// let config = ScenarioConfig {
    ///     seed: 9_001,
    ///     ticks: 48,
    ///     ..ScenarioConfig::sized(10_000)
    /// };
    /// assert!(config.validate().is_ok());
    /// assert_eq!(config.num_pools, 10_000);
    /// ```
    pub fn sized(num_pools: usize) -> Self {
        let defaults = ScenarioConfig::default();
        let num_tokens = (num_pools * 2 / 5).max(3 * defaults.domains);
        ScenarioConfig {
            num_tokens,
            num_pools: num_pools.max(num_tokens),
            ..defaults
        }
    }

    /// Checks the sizing for contradictions.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidConfig`] when any dimension is too
    /// small to build a multi-domain universe with cycles.
    pub fn validate(&self) -> Result<(), WorkloadError> {
        if self.domains == 0 {
            return Err(WorkloadError::InvalidConfig("domains must be at least 1"));
        }
        if self.num_tokens < 3 * self.domains {
            return Err(WorkloadError::InvalidConfig(
                "need at least 3 tokens per domain",
            ));
        }
        if self.num_pools < self.num_tokens {
            return Err(WorkloadError::InvalidConfig(
                "need at least as many pools as tokens for cycles to exist",
            ));
        }
        if self.ticks == 0 {
            return Err(WorkloadError::InvalidConfig("ticks must be at least 1"));
        }
        if !self.intensity.is_finite() || self.intensity <= 0.0 {
            return Err(WorkloadError::InvalidConfig(
                "intensity must be finite and positive",
            ));
        }
        Ok(())
    }
}

/// One tick's worth of market change: CEX price moves (applied before the
/// chain events, mirroring a feed that updates between blocks) plus the
/// chain event batch.
#[derive(Debug, Clone, PartialEq)]
pub struct TickBatch {
    /// Absolute USD price updates to apply to the feed.
    pub feed_moves: Vec<(TokenId, f64)>,
    /// The chain events of this tick, in order.
    pub events: Vec<Event>,
}

impl TickBatch {
    /// Applies this tick's price moves to `feed` (call before handing
    /// [`TickBatch::events`] to an engine).
    pub fn apply_feed(&self, feed: &mut PriceTable) {
        for (token, price) in &self.feed_moves {
            feed.set(*token, *price);
        }
    }
}

/// A fully materialized workload run.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// The catalog name this scenario was built from.
    pub name: &'static str,
    /// The initial pool universe (slot order = `PoolId` order).
    pub pools: Vec<Pool>,
    /// Initial CEX prices for every token.
    pub feed: PriceTable,
    /// The tick stream.
    pub ticks: Vec<TickBatch>,
}

impl Scenario {
    /// Total chain events across all ticks.
    pub fn total_events(&self) -> usize {
        self.ticks.iter().map(|t| t.events.len()).sum()
    }

    /// Appends `ticks` empty tick batches — a quiet tail during which
    /// degraded subsystems (delayed sources, a backed-off journal)
    /// drain their backlogs so a faulted run can reconverge with an
    /// unfaulted oracle before final state is compared.
    #[must_use]
    pub fn with_quiet_tail(mut self, ticks: usize) -> Self {
        for _ in 0..ticks {
            self.ticks.push(TickBatch {
                feed_moves: Vec::new(),
                events: Vec::new(),
            });
        }
        self
    }

    /// Pool slots that exist after every tick is applied (initial pools
    /// plus `PoolCreated` events).
    pub fn final_pool_slots(&self) -> usize {
        self.pools.len()
            + self
                .ticks
                .iter()
                .flat_map(|t| &t.events)
                .filter(|e| matches!(e, Event::PoolCreated { .. }))
                .count()
    }
}

/// Shadow pool state tracked while generating, so every emitted `Sync`
/// carries absolute reserves consistent with the stream so far.
struct PoolShadow {
    reserve_a: f64,
    reserve_b: f64,
    live: bool,
}

/// The generation workspace.
struct Builder {
    rng: StdRng,
    shadows: Vec<PoolShadow>,
    /// USD price per token index (kept current with feed moves).
    prices: Vec<f64>,
    /// Initial token id range of each domain.
    domain_tokens: Vec<Range<u32>>,
    intensity: f64,
}

impl Builder {
    fn scaled(&self, base: usize) -> usize {
        ((base as f64 * self.intensity).round() as usize).max(1)
    }

    fn live_count(&self) -> usize {
        self.shadows.iter().filter(|s| s.live).count()
    }

    /// Picks a live pool slot, or `None` after a bounded number of tries
    /// (keeps generation total even when most of the universe is drained).
    fn pick_live(&mut self) -> Option<usize> {
        for _ in 0..8 {
            let index = self.rng.gen_range(0usize..self.shadows.len());
            if self.shadows[index].live {
                return Some(index);
            }
        }
        None
    }

    /// Emits an absolute `Sync` and updates the shadow.
    fn sync(&mut self, events: &mut Vec<Event>, index: usize, reserve_a: f64, reserve_b: f64) {
        let shadow = &mut self.shadows[index];
        shadow.reserve_a = reserve_a;
        shadow.reserve_b = reserve_b;
        shadow.live = reserve_a > 0.0 && reserve_b > 0.0;
        events.push(Event::Sync {
            pool: PoolId::new(index as u32),
            reserve_a: to_raw(reserve_a),
            reserve_b: to_raw(reserve_b),
        });
    }

    /// Multiplies one side of a live pool by `1 ± magnitude` (and divides
    /// the other), modelling a swap's reserve shift.
    fn wobble(&mut self, events: &mut Vec<Event>, magnitude: f64) {
        let Some(index) = self.pick_live() else {
            return;
        };
        let factor = 1.0 + magnitude * self.rng.gen_range(-1.0f64..1.0);
        let (ra, rb) = {
            let s = &self.shadows[index];
            (s.reserve_a * factor, s.reserve_b / factor)
        };
        self.sync(events, index, ra, rb);
    }

    /// Emits a `PoolCreated` for a value-balanced pool between `a` and
    /// `b` at `fee`, with a small random mispricing.
    fn create_pool(&mut self, events: &mut Vec<Event>, a: TokenId, b: TokenId, fee: FeeRate) {
        let tvl = self.rng.gen_range(40_000.0f64..120_000.0);
        let mispricing = 1.0 + self.rng.gen_range(-0.02f64..0.02);
        let reserve_a = tvl / (2.0 * self.prices[a.index()]);
        let reserve_b = tvl / (2.0 * self.prices[b.index()]) * mispricing;
        let pool = PoolId::new(self.shadows.len() as u32);
        events.push(Event::PoolCreated {
            pool,
            token_a: a,
            token_b: b,
            reserve_a: to_raw(reserve_a),
            reserve_b: to_raw(reserve_b),
            fee,
        });
        self.shadows.push(PoolShadow {
            reserve_a,
            reserve_b,
            live: true,
        });
    }

    /// Registers a brand-new token with a random price, returning it and
    /// queueing its price onto this tick's feed moves.
    fn new_token(&mut self, feed_moves: &mut Vec<(TokenId, f64)>) -> TokenId {
        let token = TokenId::new(self.prices.len() as u32);
        let price = self.rng.gen_range(0.5f64..50.0);
        self.prices.push(price);
        feed_moves.push((token, price));
        token
    }

    /// A uniformly random token from one domain's initial range.
    fn domain_token(&mut self, domain: usize) -> TokenId {
        let range = self.domain_tokens[domain].clone();
        TokenId::new(self.rng.gen_range(range))
    }

    /// Two distinct tokens from the same (random) domain.
    fn same_domain_pair(&mut self) -> (TokenId, TokenId) {
        let domain = self.rng.gen_range(0usize..self.domain_tokens.len());
        let a = self.domain_token(domain);
        loop {
            let b = self.domain_token(domain);
            if b != a {
                return (a, b);
            }
        }
    }

    /// Nudges one random token's USD price by `± magnitude`.
    fn feed_move(&mut self, feed_moves: &mut Vec<(TokenId, f64)>, magnitude: f64) {
        let index = self.rng.gen_range(0usize..self.prices.len());
        let price = self.prices[index] * (1.0 + magnitude * self.rng.gen_range(-1.0f64..1.0));
        self.prices[index] = price;
        feed_moves.push((TokenId::new(index as u32), price));
    }
}

/// The multi-domain base universe before any tick is generated.
struct Universe {
    pools: Vec<Pool>,
    feed: PriceTable,
    prices: Vec<f64>,
    domain_tokens: Vec<Range<u32>>,
}

/// Builds the multi-domain base universe: `domains` independent filtered
/// snapshots with token ids offset so the islands never touch.
fn build_universe(spec: &WorkloadSpec, config: &ScenarioConfig) -> Result<Universe, WorkloadError> {
    let mispricing_std = spec.sim_profile().mispricing_std;
    let mut pools = Vec::with_capacity(config.num_pools);
    let mut feed = PriceTable::new();
    let mut prices = Vec::with_capacity(config.num_tokens);
    let mut domain_tokens = Vec::with_capacity(config.domains);

    let base_tokens = config.num_tokens / config.domains;
    let extra_tokens = config.num_tokens % config.domains;
    let base_pools = config.num_pools / config.domains;
    let extra_pools = config.num_pools % config.domains;

    for domain in 0..config.domains {
        let num_tokens = base_tokens + usize::from(domain < extra_tokens);
        let num_pools = base_pools + usize::from(domain < extra_pools);
        let snapshot_cfg = SnapshotConfig {
            seed: config.seed ^ (0x0517_0000 + domain as u64),
            num_tokens,
            num_pools,
            mispricing_std,
            ..SnapshotConfig::default()
        };
        let snapshot = Generator::new(snapshot_cfg)
            .generate()?
            .filtered(&snapshot_cfg);
        let offset = prices.len() as u32;
        domain_tokens.push(offset..offset + num_tokens as u32);
        for index in 0..num_tokens as u32 {
            let price = snapshot
                .usd_price(TokenId::new(index))
                .expect("snapshot prices every token");
            let token = TokenId::new(offset + index);
            feed.set(token, price);
            prices.push(price);
        }
        for pool in snapshot.pools() {
            pools.push(
                Pool::new(
                    TokenId::new(offset + pool.token_a().index() as u32),
                    TokenId::new(offset + pool.token_b().index() as u32),
                    pool.reserve_a(),
                    pool.reserve_b(),
                    pool.fee(),
                )
                .expect("remapped pool stays valid"),
            );
        }
    }
    Ok(Universe {
        pools,
        feed,
        prices,
        domain_tokens,
    })
}

/// Materializes `spec` under `config`. See [`WorkloadSpec::scenario`].
pub(crate) fn generate(
    spec: &WorkloadSpec,
    config: &ScenarioConfig,
) -> Result<Scenario, WorkloadError> {
    config.validate()?;
    let universe = build_universe(spec, config)?;
    let mut builder = Builder {
        rng: StdRng::seed_from_u64(config.seed ^ 0x00ab_10ff),
        shadows: universe
            .pools
            .iter()
            .map(|p| PoolShadow {
                reserve_a: p.reserve_a(),
                reserve_b: p.reserve_b(),
                live: true,
            })
            .collect(),
        prices: universe.prices,
        domain_tokens: universe.domain_tokens,
        intensity: config.intensity,
    };

    let ticks = match spec.kind {
        WorkloadKind::SteadySparse => steady_sparse(&mut builder, config.ticks),
        WorkloadKind::WhaleBursts => whale_bursts(&mut builder, config.ticks),
        WorkloadKind::FeeRegimeShift => fee_regime_shift(&mut builder, config.ticks),
        WorkloadKind::PoolChurn => pool_churn(&mut builder, config.ticks),
        WorkloadKind::DegenerateFlood => degenerate_flood(&mut builder, config.ticks),
    };

    Ok(Scenario {
        name: spec.name,
        pools: universe.pools,
        feed: universe.feed,
        ticks,
    })
}

fn steady_sparse(builder: &mut Builder, ticks: usize) -> Vec<TickBatch> {
    let per_tick = builder.scaled(builder.shadows.len() / 64);
    (0..ticks)
        .map(|tick| {
            let mut batch = TickBatch {
                feed_moves: Vec::new(),
                events: Vec::new(),
            };
            for _ in 0..per_tick {
                builder.wobble(&mut batch.events, 0.015);
            }
            if tick % 4 == 3 {
                builder.feed_move(&mut batch.feed_moves, 0.002);
            }
            batch
        })
        .collect()
}

fn whale_bursts(builder: &mut Builder, ticks: usize) -> Vec<TickBatch> {
    let burst_size = builder.scaled(builder.shadows.len() / 8).max(4);
    (0..ticks)
        .map(|tick| {
            let mut batch = TickBatch {
                feed_moves: Vec::new(),
                events: Vec::new(),
            };
            builder.wobble(&mut batch.events, 0.01);
            if tick % 8 == 7 {
                for _ in 0..burst_size {
                    let magnitude = builder.rng.gen_range(0.15f64..0.35);
                    builder.wobble(&mut batch.events, magnitude);
                }
                builder.feed_move(&mut batch.feed_moves, 0.02);
                builder.feed_move(&mut batch.feed_moves, 0.02);
            }
            batch
        })
        .collect()
}

/// The Milionis et al. regimes: (fee tier, reserve move size, arrivals per
/// tick divisor). Low fees clear under small frequent moves; high fees
/// need large rare ones.
const FEE_REGIMES: [(u32, f64, usize); 3] =
    [(500, 0.004, 16), (3_000, 0.012, 32), (10_000, 0.035, 64)];

fn fee_regime_shift(builder: &mut Builder, ticks: usize) -> Vec<TickBatch> {
    let phase_len = ticks.div_ceil(FEE_REGIMES.len());
    (0..ticks)
        .map(|tick| {
            let regime = (tick / phase_len).min(FEE_REGIMES.len() - 1);
            let (fee_ppm, sigma, divisor) = FEE_REGIMES[regime];
            let mut batch = TickBatch {
                feed_moves: Vec::new(),
                events: Vec::new(),
            };
            // Regime boundary: deploy pools at the incoming fee tier.
            if regime > 0 && tick == regime * phase_len {
                let fee = FeeRate::from_ppm(fee_ppm).expect("catalog tiers are valid");
                for _ in 0..2 {
                    let (a, b) = builder.same_domain_pair();
                    builder.create_pool(&mut batch.events, a, b, fee);
                }
            }
            let arrivals = builder.scaled(builder.shadows.len() / divisor);
            for _ in 0..arrivals {
                builder.wobble(&mut batch.events, sigma);
            }
            if tick % 2 == 1 {
                builder.feed_move(&mut batch.feed_moves, sigma / 2.0);
            }
            batch
        })
        .collect()
}

fn pool_churn(builder: &mut Builder, ticks: usize) -> Vec<TickBatch> {
    let mut drained: VecDeque<(usize, f64, f64)> = VecDeque::new();
    (0..ticks)
        .map(|tick| {
            let mut batch = TickBatch {
                feed_moves: Vec::new(),
                events: Vec::new(),
            };
            builder.wobble(&mut batch.events, 0.01);
            builder.wobble(&mut batch.events, 0.01);
            if tick % 3 == 1 {
                // Deploy: mostly intra-domain, sometimes onto a brand-new
                // token, rarely a cross-domain bridge (the sharded
                // runtime's repartition path).
                let roll: f64 = builder.rng.gen_range(0.0f64..1.0);
                let fee = FeeRate::UNISWAP_V2;
                if roll < 0.7 {
                    let (a, b) = builder.same_domain_pair();
                    builder.create_pool(&mut batch.events, a, b, fee);
                } else if roll < 0.85 {
                    let domain = builder.rng.gen_range(0usize..builder.domain_tokens.len());
                    let a = builder.domain_token(domain);
                    let b = builder.new_token(&mut batch.feed_moves);
                    builder.create_pool(&mut batch.events, a, b, fee);
                } else {
                    let domains = builder.domain_tokens.len();
                    if domains < 2 {
                        let (a, b) = builder.same_domain_pair();
                        builder.create_pool(&mut batch.events, a, b, fee);
                    } else {
                        let first = builder.rng.gen_range(0usize..domains);
                        let offset = builder.rng.gen_range(1usize..domains);
                        let a = builder.domain_token(first);
                        let b = builder.domain_token((first + offset) % domains);
                        builder.create_pool(&mut batch.events, a, b, fee);
                    }
                }
            }
            if tick % 4 == 2 {
                if let Some(index) = builder.pick_live() {
                    let (ra, rb) = {
                        let s = &builder.shadows[index];
                        (s.reserve_a, s.reserve_b)
                    };
                    drained.push_back((index, ra, rb));
                    builder.sync(&mut batch.events, index, 0.0, 0.0);
                }
            }
            if tick % 5 == 4 {
                if let Some((index, ra, rb)) = drained.pop_front() {
                    builder.sync(&mut batch.events, index, ra, rb);
                }
            }
            batch
        })
        .collect()
}

fn degenerate_flood(builder: &mut Builder, ticks: usize) -> Vec<TickBatch> {
    let wave = builder.scaled(builder.shadows.len() / 16).max(2);
    let mut parked: VecDeque<(usize, usize, f64, f64)> = VecDeque::new();
    (0..ticks)
        .map(|tick| {
            let mut batch = TickBatch {
                feed_moves: Vec::new(),
                events: Vec::new(),
            };
            builder.wobble(&mut batch.events, 0.01);
            // Revive everything parked two or more ticks ago.
            while let Some(&(parked_tick, index, ra, rb)) = parked.front() {
                if tick < parked_tick + 2 {
                    break;
                }
                parked.pop_front();
                builder.sync(&mut batch.events, index, ra, rb);
            }
            // Drain a wave, but never more than half the universe.
            if builder.live_count() > builder.shadows.len() / 2 {
                for _ in 0..wave {
                    let Some(index) = builder.pick_live() else {
                        break;
                    };
                    let (ra, rb) = {
                        let s = &builder.shadows[index];
                        (s.reserve_a, s.reserve_b)
                    };
                    parked.push_back((tick, index, ra, rb));
                    builder.sync(&mut batch.events, index, 0.0, 0.0);
                }
            }
            batch
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{catalog, find};

    fn small() -> ScenarioConfig {
        ScenarioConfig {
            seed: 11,
            domains: 3,
            num_tokens: 15,
            num_pools: 30,
            ticks: 20,
            intensity: 1.0,
        }
    }

    #[test]
    fn sized_presets_validate_across_the_soak_range() {
        for pools in [48, 600, 10_000, 100_000] {
            let config = ScenarioConfig::sized(pools);
            config.validate().expect("sized preset validates");
            assert_eq!(config.num_pools, pools);
        }
        // The 600-pool preset reproduces the bench universes' shape.
        let bench = ScenarioConfig::sized(600);
        assert_eq!((bench.domains, bench.num_tokens), (4, 240));
        // Tiny requests are rounded up to a universe that can hold cycles.
        let tiny = ScenarioConfig::sized(1);
        tiny.validate().expect("rounded-up preset validates");
        assert_eq!(tiny.num_pools, tiny.num_tokens);
    }

    #[test]
    fn every_catalog_entry_generates_deterministically() {
        for spec in catalog() {
            let a = spec.scenario(&small()).expect(spec.name);
            let b = spec.scenario(&small()).expect(spec.name);
            assert_eq!(a, b, "{} must be a pure function of the config", spec.name);
            assert_eq!(a.ticks.len(), 20);
            assert_eq!(a.pools.len(), 30);
            assert!(a.total_events() > 0, "{} generated no events", spec.name);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let spec = find("steady-sparse").unwrap();
        let a = spec.scenario(&small()).unwrap();
        let b = spec
            .scenario(&ScenarioConfig {
                seed: 12,
                ..small()
            })
            .unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn domains_are_disconnected_islands() {
        let scenario = find("steady-sparse").unwrap().scenario(&small()).unwrap();
        // Union-find over initial pools must leave ≥ `domains` components.
        let tokens = 15usize;
        let mut parent: Vec<usize> = (0..tokens).collect();
        fn findp(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for pool in &scenario.pools {
            let a = findp(&mut parent, pool.token_a().index());
            let b = findp(&mut parent, pool.token_b().index());
            parent[a.max(b)] = a.min(b);
        }
        let mut roots: Vec<usize> = (0..tokens).map(|i| findp(&mut parent, i)).collect();
        roots.sort_unstable();
        roots.dedup();
        assert_eq!(roots.len(), 3, "one component per domain");
    }

    #[test]
    fn every_token_is_priced_and_every_sync_targets_a_slot() {
        for spec in catalog() {
            let scenario = spec.scenario(&small()).unwrap();
            for pool in &scenario.pools {
                assert!(scenario.feed.iter().any(|(t, _)| t == pool.token_a()));
                assert!(scenario.feed.iter().any(|(t, _)| t == pool.token_b()));
            }
            let mut slots = scenario.pools.len();
            for batch in &scenario.ticks {
                for event in &batch.events {
                    match event {
                        Event::Sync { pool, .. } => {
                            assert!(pool.index() < slots, "{}", spec.name);
                        }
                        Event::PoolCreated { pool, .. } => {
                            assert_eq!(pool.index(), slots, "{} slot order", spec.name);
                            slots += 1;
                        }
                        _ => {}
                    }
                }
            }
            assert_eq!(slots, scenario.final_pool_slots());
        }
    }

    #[test]
    fn churn_and_flood_retire_and_revive() {
        for name in ["pool-churn", "degenerate-flood"] {
            let scenario = find(name).unwrap().scenario(&small()).unwrap();
            let mut drains = 0usize;
            let mut revives = 0usize;
            let mut dead: Vec<bool> = vec![false; scenario.final_pool_slots()];
            for batch in &scenario.ticks {
                for event in &batch.events {
                    if let Event::Sync {
                        pool,
                        reserve_a,
                        reserve_b,
                    } = event
                    {
                        if *reserve_a == 0 || *reserve_b == 0 {
                            drains += 1;
                            dead[pool.index()] = true;
                        } else if dead[pool.index()] {
                            revives += 1;
                            dead[pool.index()] = false;
                        }
                    }
                }
            }
            assert!(drains > 0, "{name} should drain pools");
            assert!(revives > 0, "{name} should revive pools");
        }
    }

    #[test]
    fn fee_regime_shift_deploys_multiple_tiers() {
        let scenario = find("fee-regime-shift")
            .unwrap()
            .scenario(&small())
            .unwrap();
        let mut tiers: Vec<u32> = scenario
            .ticks
            .iter()
            .flat_map(|t| &t.events)
            .filter_map(|e| match e {
                Event::PoolCreated { fee, .. } => Some(fee.ppm()),
                _ => None,
            })
            .collect();
        tiers.sort_unstable();
        tiers.dedup();
        assert!(tiers.len() >= 2, "expected multiple fee tiers: {tiers:?}");
    }

    #[test]
    fn invalid_configs_rejected() {
        let spec = find("steady-sparse").unwrap();
        for config in [
            ScenarioConfig {
                domains: 0,
                ..small()
            },
            ScenarioConfig {
                num_tokens: 5,
                ..small()
            },
            ScenarioConfig {
                num_pools: 10,
                ..small()
            },
            ScenarioConfig {
                ticks: 0,
                ..small()
            },
            ScenarioConfig {
                intensity: 0.0,
                ..small()
            },
        ] {
            assert!(
                matches!(spec.scenario(&config), Err(WorkloadError::InvalidConfig(_))),
                "{config:?}"
            );
        }
    }

    #[test]
    fn intensity_scales_event_volume() {
        let spec = find("fee-regime-shift").unwrap();
        let calm = spec.scenario(&small()).unwrap();
        let busy = spec
            .scenario(&ScenarioConfig {
                intensity: 4.0,
                ..small()
            })
            .unwrap();
        assert!(busy.total_events() > calm.total_events());
    }
}
