//! Segment files and the on-disk record frame.
//!
//! A journal directory holds an ordered series of append-only segment
//! files, each named by the global offset (event sequence number) of its
//! first record:
//!
//! ```text
//! segment-00000000000000000000.seg     events [0, n₀)
//! segment-00000000000000000057.seg     events [57, n₁)   ← n₀ = 57
//! ```
//!
//! Every record is length-prefixed and checksummed:
//!
//! ```text
//! ┌────────────┬────────────┬───────────────────────┐
//! │ len: u32LE │ crc32: u32 │ payload (event frame) │
//! └────────────┴────────────┴───────────────────────┘
//! ```
//!
//! where the payload is exactly one [`Event`]'s binary codec frame (the
//! same codec `dexsim::EventLog` uses in memory) and the checksum covers
//! the payload. Scanning stops at the first record that is truncated,
//! fails its checksum, or does not decode — everything before it is the
//! valid prefix, everything after is tail garbage from an interrupted
//! write.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use arb_dexsim::events::Event;
use bytes::{Bytes, BytesMut};

use crate::crc::crc32;

/// Bytes of frame header before the payload: length + checksum.
pub(crate) const RECORD_HEADER: usize = 8;

/// Upper bound on a single record's payload. Event frames are tens of
/// bytes; anything larger is a corrupt length prefix, not a record.
pub(crate) const MAX_PAYLOAD: u32 = 1 << 20;

const PREFIX: &str = "segment-";
const SUFFIX: &str = ".seg";

/// The file name of the segment whose first record has `first_offset`.
pub(crate) fn segment_file_name(first_offset: u64) -> String {
    crate::names::file_name(PREFIX, first_offset, SUFFIX)
}

/// Lists the directory's segment files, sorted by first offset. Files
/// that do not match the naming scheme are ignored.
pub(crate) fn list_segments(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    crate::names::list(dir, PREFIX, SUFFIX)
}

/// Appends one framed record (header + event payload) to `out`.
pub(crate) fn encode_record(out: &mut Vec<u8>, event: &Event) {
    let mut payload = BytesMut::new();
    event.encode(&mut payload);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
}

/// The outcome of scanning one segment's bytes for its valid prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct SegmentScan {
    /// Records in the valid prefix.
    pub records: u64,
    /// Length of the valid prefix in bytes.
    pub valid_bytes: u64,
    /// Whether the whole file was valid (no trailing garbage).
    pub clean: bool,
}

/// Decodes the record starting at `data[at..]`. Returns the event and the
/// total frame length, or `None` if the record is truncated, oversized,
/// fails its checksum, or does not decode to exactly one event.
fn decode_record(data: &[u8], at: usize) -> Option<(Event, usize)> {
    let header = data.get(at..at + RECORD_HEADER)?;
    let len = le_u32(header.get(0..4)?)? as usize;
    if len as u32 > MAX_PAYLOAD {
        return None;
    }
    let crc = le_u32(header.get(4..8)?)?;
    let payload = data.get(at + RECORD_HEADER..at + RECORD_HEADER + len)?;
    if crc32(payload) != crc {
        return None;
    }
    let mut bytes = Bytes::copy_from_slice(payload);
    let event = Event::decode(&mut bytes)?;
    if !bytes.is_empty() {
        return None;
    }
    Some((event, RECORD_HEADER + len))
}

/// Reads a little-endian `u32` without panicking on short input — a
/// short slice is a truncated record, which scanning treats as the end
/// of the valid prefix rather than a crash.
fn le_u32(bytes: &[u8]) -> Option<u32> {
    Some(u32::from_le_bytes(bytes.try_into().ok()?))
}

/// Scans `data` (one segment's contents) for its valid record prefix.
pub(crate) fn scan_bytes(data: &[u8]) -> SegmentScan {
    let mut at = 0usize;
    let mut records = 0u64;
    while at < data.len() {
        match decode_record(data, at) {
            Some((_, frame)) => {
                at += frame;
                records += 1;
            }
            None => {
                return SegmentScan {
                    records,
                    valid_bytes: at as u64,
                    clean: false,
                }
            }
        }
    }
    SegmentScan {
        records,
        valid_bytes: at as u64,
        clean: true,
    }
}

/// Reads and scans one segment file.
pub(crate) fn scan_segment(path: &Path) -> io::Result<SegmentScan> {
    Ok(scan_bytes(&fs::read(path)?))
}

/// Decodes the events in one segment file's valid prefix, skipping the
/// first `skip` records. Stops silently at the first bad record (tail
/// truncation semantics).
pub(crate) fn read_segment_events(path: &Path, skip: u64) -> io::Result<Vec<Event>> {
    let data = fs::read(path)?;
    let mut at = 0usize;
    let mut seen = 0u64;
    let mut events = Vec::new();
    while at < data.len() {
        let Some((event, frame)) = decode_record(&data, at) else {
            break;
        };
        if seen >= skip {
            events.push(event);
        }
        seen += 1;
        at += frame;
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use arb_amm::pool::PoolId;

    fn sync(pool: u32, a: u128, b: u128) -> Event {
        Event::Sync {
            pool: PoolId::new(pool),
            reserve_a: a,
            reserve_b: b,
        }
    }

    #[test]
    fn names_round_trip() {
        let name = segment_file_name(57);
        assert_eq!(name, "segment-00000000000000000057.seg");
        assert_eq!(crate::names::parse(&name, PREFIX, SUFFIX), Some(57));
    }

    #[test]
    fn records_round_trip_and_scan_clean() {
        let events = [sync(0, 1, 2), sync(1, u128::MAX, 0), sync(2, 5, 5)];
        let mut data = Vec::new();
        for e in &events {
            encode_record(&mut data, e);
        }
        let scan = scan_bytes(&data);
        assert_eq!(scan.records, 3);
        assert_eq!(scan.valid_bytes, data.len() as u64);
        assert!(scan.clean);
    }

    #[test]
    fn scan_truncates_at_bad_record() {
        let mut data = Vec::new();
        encode_record(&mut data, &sync(0, 1, 2));
        let clean_len = data.len();
        encode_record(&mut data, &sync(1, 3, 4));
        // Flip one payload bit of the second record.
        data[clean_len + RECORD_HEADER + 2] ^= 0x40;
        let scan = scan_bytes(&data);
        assert_eq!(scan.records, 1);
        assert_eq!(scan.valid_bytes, clean_len as u64);
        assert!(!scan.clean);

        // A truncated header is tail garbage too.
        let mut data = Vec::new();
        encode_record(&mut data, &sync(0, 1, 2));
        let clean_len = data.len();
        data.extend_from_slice(&[0x07, 0x00]);
        let scan = scan_bytes(&data);
        assert_eq!(scan.records, 1);
        assert_eq!(scan.valid_bytes, clean_len as u64);
        assert!(!scan.clean);

        // An absurd length prefix never allocates; it is corruption.
        let mut data = Vec::new();
        data.extend_from_slice(&u32::MAX.to_le_bytes());
        data.extend_from_slice(&[0u8; 12]);
        let scan = scan_bytes(&data);
        assert_eq!(scan.records, 0);
        assert!(!scan.clean);
    }
}
