//! The read side: offset-addressed cursors over the durable journal.

use std::path::{Path, PathBuf};

use arb_dexsim::events::Event;

use crate::error::JournalError;
use crate::segment;

/// A reader's position in the journal, mirroring
/// [`arb_dexsim::chain::EventCursor`]: `position` is the global offset of
/// the next event it will yield.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct JournalCursor {
    next: u64,
}

impl JournalCursor {
    /// A cursor that replays the journal from its very first record.
    pub const fn genesis() -> Self {
        JournalCursor { next: 0 }
    }

    /// A cursor positioned at an explicit offset (e.g. a snapshot's).
    pub const fn at(position: u64) -> Self {
        JournalCursor { next: position }
    }

    /// The offset of the next event this cursor will yield.
    pub const fn position(self) -> u64 {
        self.next
    }
}

/// One scanned segment: its first offset, valid record count, and path.
#[derive(Debug, Clone)]
struct Segment {
    first: u64,
    records: u64,
    path: PathBuf,
}

/// A snapshot-in-time view of the journal directory.
///
/// Opening scans every segment and establishes the durable tail with the
/// same truncate-at-first-bad-record rule the writer uses — but without
/// modifying any file, so a reader can safely inspect a journal another
/// process owns. Reads past the established tail (a snapshot that
/// references never-fsynced events, a cursor from a longer-lived log)
/// fail with [`JournalError::OffsetPastTail`] rather than serving
/// garbage.
#[derive(Debug)]
pub struct JournalReader {
    segments: Vec<Segment>,
    /// First offset covered by the oldest retained segment (> 0 after
    /// compaction).
    base: u64,
    tail: u64,
}

impl JournalReader {
    /// Opens and scans the journal in `dir`.
    ///
    /// # Errors
    ///
    /// Returns [`JournalError::Io`] on filesystem failures (a missing
    /// directory included — an empty journal is a directory with no
    /// segments, not an absent one).
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, JournalError> {
        let listed = segment::list_segments(dir.as_ref()).map_err(JournalError::from)?;
        let mut segments = Vec::with_capacity(listed.len());
        let mut expected_first = listed.first().map_or(0, |(first, _)| *first);
        let base = expected_first;
        for (first, path) in listed {
            if first != expected_first {
                // A gap: everything from here on is unreachable.
                break;
            }
            let scan = segment::scan_segment(&path).map_err(JournalError::from)?;
            segments.push(Segment {
                first,
                records: scan.records,
                path,
            });
            expected_first = first + scan.records;
            if !scan.clean {
                break;
            }
        }
        let tail = segments
            .last()
            .map_or(base, |segment| segment.first + segment.records);
        Ok(JournalReader {
            segments,
            base,
            tail,
        })
    }

    /// The durable tail: offsets in `[base, tail)` are readable.
    pub fn tail_offset(&self) -> u64 {
        self.tail
    }

    /// The oldest readable offset (> 0 once compaction has removed
    /// fully-snapshotted segments).
    pub fn base_offset(&self) -> u64 {
        self.base
    }

    /// Whether the journal holds no readable events.
    pub fn is_empty(&self) -> bool {
        self.base == self.tail
    }

    /// Decodes every event in `[offset, tail)`.
    ///
    /// # Errors
    ///
    /// * [`JournalError::OffsetPastTail`] — `offset` exceeds the durable
    ///   tail.
    /// * [`JournalError::Corrupt`] — `offset` predates the oldest
    ///   retained segment (compacted away).
    pub fn read_from(&self, offset: u64) -> Result<Vec<Event>, JournalError> {
        if offset > self.tail {
            return Err(JournalError::OffsetPastTail {
                offset,
                tail: self.tail,
            });
        }
        if offset < self.base {
            return Err(JournalError::Corrupt(format!(
                "offset {offset} predates the oldest retained segment ({})",
                self.base
            )));
        }
        let mut events = Vec::new();
        for segment in &self.segments {
            let end = segment.first + segment.records;
            if end <= offset {
                continue;
            }
            let skip = offset.saturating_sub(segment.first);
            let mut chunk =
                segment::read_segment_events(&segment.path, skip).map_err(JournalError::from)?;
            // The file may have grown since the scan; serve only what the
            // scan established as durable.
            chunk.truncate((segment.records - skip) as usize);
            events.extend(chunk);
        }
        Ok(events)
    }

    /// Drains every event the cursor has not yet seen, advancing it to
    /// the tail — the journal-side mirror of
    /// [`arb_dexsim::chain::Chain::drain_events`].
    ///
    /// # Errors
    ///
    /// See [`JournalReader::read_from`].
    pub fn drain(&self, cursor: &mut JournalCursor) -> Result<Vec<Event>, JournalError> {
        let events = self.read_from(cursor.next)?;
        cursor.next = self.tail;
        Ok(events)
    }
}

/// Convenience: the durable tail of the journal in `dir` without keeping
/// a reader around.
///
/// # Errors
///
/// See [`JournalReader::open`].
pub fn tail_offset(dir: impl AsRef<Path>) -> Result<u64, JournalError> {
    Ok(JournalReader::open(dir)?.tail_offset())
}
