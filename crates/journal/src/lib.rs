//! Durable event journal, engine snapshots, and deterministic recovery.
//!
//! The streaming engines in `arb-engine` hold their market view — graph,
//! cycle index, standing rankings — entirely in memory; a crash used to
//! mean a cold full rescan. This crate makes the discovery → evaluation
//! state **restartable**:
//!
//! ```text
//!  chain events ──▶ JournalWriter ──▶ segment-….seg  (len|crc32|frame)*
//!       │                │
//!       ▼                └─ fsync per batch, truncate-at-corruption tail
//!  ShardedRuntime ──▶ checkpoint() ──▶ SnapshotStore ──▶ snapshot-….ckpt
//!                                        (tmp + rename, CRC-32 guarded)
//!  crash ▸ Recovery: newest valid snapshot + replay journal suffix
//!          = rankings bit-identical to a process that never crashed
//! ```
//!
//! * [`JournalWriter`] — append-only segmented log of
//!   [`arb_dexsim::events::Event`]s reusing the chain's own binary codec,
//!   with length-prefixed CRC-32-checksummed records, one fsync per
//!   batch, and corruption-tolerant tail recovery on reopen. Implements
//!   [`arb_dexsim::chain::EventSink`], so a chain journals itself.
//! * [`JournalReader`] / [`JournalCursor`] — offset-addressed reads
//!   mirroring the chain's `EventCursor` API.
//! * [`SnapshotStore`] — atomic, checksummed persistence of
//!   [`arb_engine::RuntimeCheckpoint`]s tied to journal offsets, with
//!   newest-valid selection (a snapshot past the durable tail falls back
//!   to its predecessor) and pruning; pair with
//!   [`JournalWriter::compact_below`] to drop fully-snapshotted segments.
//! * [`Recovery`] — restores the newest valid snapshot, replays the
//!   suffix through the engine, and reports a [`RecoveryStats`] line.
//!
//! Because engine evaluation is a pure function of (reserves, feed), the
//! recovered standing ranking is **bit-identical** to an uninterrupted
//! run's — `tests/journal_recovery.rs` at the workspace root enforces
//! this across the whole workload catalog at randomized crash offsets.
//! The same recorded stream also enables offline replay studies: run one
//! tick history under different fee or ranking policies (Milionis et
//! al.; Silva & Livshits) without re-simulating the market.
//!
//! # Example: journal, crash, recover
//!
//! ```
//! use arb_amm::{fee::FeeRate, pool::Pool, token::TokenId};
//! use arb_cex::feed::PriceTable;
//! use arb_dexsim::{events::Event, units::to_raw};
//! use arb_engine::{OpportunityPipeline, ShardedRuntime};
//! use arb_journal::{JournalConfig, JournalWriter, Recovery, SnapshotStore};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let dir = std::env::temp_dir().join(format!("arbj-doc-{}", std::process::id()));
//! # let _ = std::fs::remove_dir_all(&dir);
//! let t = TokenId::new;
//! let fee = FeeRate::UNISWAP_V2;
//! let pools = vec![
//!     Pool::new(t(0), t(1), 100.0, 200.0, fee)?,
//!     Pool::new(t(1), t(2), 300.0, 200.0, fee)?,
//!     Pool::new(t(2), t(0), 200.0, 400.0, fee)?,
//! ];
//! let feed: PriceTable = [(t(0), 2.0), (t(1), 10.2), (t(2), 20.0)]
//!     .into_iter()
//!     .collect();
//!
//! // Live process: journal events, checkpoint the runtime.
//! let mut writer = JournalWriter::open(&dir, JournalConfig::default())?;
//! let mut runtime = ShardedRuntime::new(OpportunityPipeline::default(), pools.clone(), 2)?;
//! let tick = [Event::Sync {
//!     pool: arb_amm::pool::PoolId::new(0),
//!     reserve_a: to_raw(101.0),
//!     reserve_b: to_raw(199.0),
//! }];
//! writer.append_batch(&tick);
//! writer.commit()?;
//! let live = runtime.apply_events(&tick, &feed)?;
//! SnapshotStore::new(&dir)?.write(writer.durable_offset(), &runtime.checkpoint())?;
//! drop((writer, runtime)); // 💥 crash
//!
//! // New process: restore + replay = the same ranking, bit for bit.
//! let mut recovered = Recovery::new(&dir, OpportunityPipeline::default(), 2)
//!     .with_genesis_pools(pools)
//!     .recover(&feed)?;
//! println!("{}", recovered.stats); // "recovered from snapshot@1, …"
//! let restored = recovered.runtime.refresh(&feed)?;
//! assert_eq!(restored.opportunities.len(), live.opportunities.len());
//! # std::fs::remove_dir_all(&dir)?;
//! # Ok(())
//! # }
//! ```

pub mod crc;
pub mod error;
pub mod io;
mod names;
pub mod reader;
pub mod recovery;
mod segment;
pub mod snapshot;
pub mod writer;

pub use error::JournalError;
pub use io::{IoShim, WriteVerdict};
pub use reader::{JournalCursor, JournalReader};
pub use recovery::{Recovered, RecoveredStream, Recovery, RecoveryStats};
pub use snapshot::SnapshotStore;
pub use writer::{JournalConfig, JournalWriter};
