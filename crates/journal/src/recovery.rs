//! Crash recovery: newest valid snapshot + journal suffix replay.

use std::fmt;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use arb_amm::pool::Pool;
use arb_amm::token::TokenId;
use arb_cex::feed::{PriceFeed, PriceTable};
use arb_dexsim::events::Event;
use arb_dexsim::units::to_display;
use arb_engine::{OpportunityPipeline, ShardedRuntime};

use crate::error::JournalError;
use crate::reader::JournalReader;
use crate::snapshot::SnapshotStore;

/// What one recovery did: where it restarted from, how much it replayed,
/// and how long it took. Formatted as a one-line operator log via
/// [`fmt::Display`], in the same style as the engine's `StreamStats` /
/// `PipelineStats` lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Journal offset of the snapshot restored (`None` = genesis replay,
    /// no usable snapshot).
    pub snapshot_offset: Option<u64>,
    /// Events replayed through the engine after the restore point.
    pub events_replayed: usize,
    /// The journal's durable tail at recovery time.
    pub journal_tail: u64,
    /// Wall-clock time of restore + replay.
    pub wall: Duration,
}

impl RecoveryStats {
    /// Reports this recovery into an observability registry under
    /// `journal.*`: bumps the recovery counter, accumulates replayed
    /// events, records the wall time in the `journal.recovery.wall_ns`
    /// histogram, and sets the tail/snapshot gauges. Call once per
    /// recovery; repeated recoveries in one process accumulate.
    pub fn record(&self, obs: &arb_obs::Obs) {
        let registry = obs.registry();
        registry.counter("journal.recoveries").inc();
        registry
            .counter("journal.recovery.events_replayed")
            .add(self.events_replayed as u64);
        registry
            .histogram("journal.recovery.wall_ns")
            .record(self.wall.as_nanos() as u64);
        registry
            .gauge("journal.recovery.journal_tail")
            .set(self.journal_tail as f64);
        registry
            .gauge("journal.recovery.from_snapshot")
            .set(if self.snapshot_offset.is_some() {
                1.0
            } else {
                0.0
            });
    }
}

impl fmt::Display for RecoveryStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.snapshot_offset {
            Some(offset) => write!(
                f,
                "recovered from snapshot@{offset}, {} events replayed to tail {}, {:.3}ms wall",
                self.events_replayed,
                self.journal_tail,
                self.wall.as_secs_f64() * 1e3
            ),
            None => write!(
                f,
                "recovered from genesis, {} events replayed to tail {}, {:.3}ms wall",
                self.events_replayed,
                self.journal_tail,
                self.wall.as_secs_f64() * 1e3
            ),
        }
    }
}

/// The result of a successful recovery: a runtime brought current to the
/// journal's durable tail, plus the stats describing how it got there.
#[derive(Debug)]
pub struct Recovered {
    /// The restored fleet, standing set refreshed under the recovery
    /// feed — ranked output is bit-identical to a process that never
    /// crashed (given the same feed).
    pub runtime: ShardedRuntime,
    /// What the recovery did.
    pub stats: RecoveryStats,
}

/// The recovery driver: restores the newest valid snapshot from a
/// journal directory and replays the journal suffix through the engine.
///
/// Selection rules (each step falls back to the next):
///
/// 1. the newest snapshot that validates (magic/version/CRC) **and**
///    whose offset is at or below the journal's durable tail;
/// 2. any older snapshot meeting the same conditions;
/// 3. genesis: an engine built from the configured genesis pools (or,
///    when none are given, from the journal's leading `PoolCreated`
///    prefix) with the entire journal replayed.
///
/// Replay applies the suffix as one batch and refreshes under the
/// caller's feed, so the recovered standing ranking is bit-identical to
/// an uninterrupted engine at the same (state, feed) point — evaluation
/// is a pure function of reserves and prices.
/// The result of a [`Recovery::recover_journaled`] run over a journal
/// whose stream carries [`Event::FeedPrice`] updates inline (the
/// `arb-ingest` multiplexed stream): the fleet **and** the price table,
/// both reconstructed from disk alone — no live feed required.
#[derive(Debug)]
pub struct RecoveredStream {
    /// The restored fleet, refreshed under the recovered feed.
    pub runtime: ShardedRuntime,
    /// The price table at the journal's durable tail: the snapshot's
    /// feed section (over any genesis feed) overlaid with every
    /// `FeedPrice` replayed from the suffix.
    pub feed: PriceTable,
    /// The snapshot's recorded per-source consumed counts (empty when
    /// recovery bootstrapped from genesis or the snapshot predates the
    /// ingest front-end). The replay counts below are *not* folded in.
    pub source_positions: Vec<u64>,
    /// `FeedPrice` events replayed from the journal suffix.
    pub feed_events_replayed: usize,
    /// Chain events replayed from the journal suffix (post-bootstrap).
    pub chain_events_replayed: usize,
    /// Chain events consumed to *build* the genesis universe (the
    /// leading `PoolCreated` prefix; zero on the snapshot path). Callers
    /// tracking per-source stream positions must count these too.
    pub genesis_bootstrap_events: usize,
    /// What the recovery did.
    pub stats: RecoveryStats,
}

#[derive(Debug, Clone)]
pub struct Recovery {
    dir: PathBuf,
    pipeline: OpportunityPipeline,
    max_shards: usize,
    genesis_pools: Vec<Pool>,
    genesis_feed: PriceTable,
}

impl Recovery {
    /// A driver over the journal in `dir`, restoring engines configured
    /// like `pipeline` with at most `max_shards` shards (used only for
    /// the genesis path; a snapshot carries its own shard layout).
    pub fn new(dir: impl Into<PathBuf>, pipeline: OpportunityPipeline, max_shards: usize) -> Self {
        Recovery {
            dir: dir.into(),
            pipeline,
            max_shards,
            genesis_pools: Vec::new(),
            genesis_feed: PriceTable::new(),
        }
    }

    /// Sets the initial pool universe for the genesis fallback — the
    /// pools that existed before the journal's first event (a journal
    /// attached from chain genesis needs none: its leading
    /// `PoolCreated` events carry the universe).
    #[must_use]
    pub fn with_genesis_pools(mut self, pools: Vec<Pool>) -> Self {
        self.genesis_pools = pools;
        self
    }

    /// Sets the price-table base for [`Recovery::recover_journaled`] —
    /// the prices that were known before the journal's first event. A
    /// journal whose stream carries the full initial feed as a leading
    /// `FeedPrice` prefix (the `arb-ingest` attach path) needs none.
    #[must_use]
    pub fn with_genesis_feed(mut self, feed: PriceTable) -> Self {
        self.genesis_feed = feed;
        self
    }

    /// Runs the recovery: restore, replay, refresh under `feed`.
    ///
    /// # Errors
    ///
    /// * [`JournalError::Io`] / [`JournalError::Corrupt`] — the journal
    ///   itself cannot be read (tail corruption is healed by truncation,
    ///   not reported).
    /// * [`JournalError::NoBootstrap`] — no usable snapshot, no genesis
    ///   pools, and no leading `PoolCreated` prefix to build from.
    /// * [`JournalError::Engine`] — restore or replay failed in the
    ///   engine.
    pub fn recover<F: PriceFeed + Sync>(&self, feed: &F) -> Result<Recovered, JournalError> {
        let start = Instant::now();
        let reader = JournalReader::open(&self.dir)?;
        let tail = reader.tail_offset();
        let store = SnapshotStore::new(&self.dir)?;

        let (mut runtime, snapshot_offset, events) =
            match store.newest_valid(reader.base_offset(), tail)? {
                Some((offset, checkpoint)) => {
                    let runtime = ShardedRuntime::restore(self.pipeline.clone(), &checkpoint)?;
                    (runtime, Some(offset), reader.read_from(offset)?)
                }
                None => {
                    if reader.base_offset() > 0 {
                        // Compaction removed the genesis prefix, which is only
                        // sound while a snapshot covers it — with every
                        // snapshot unusable, a partial replay would produce
                        // silently wrong state.
                        return Err(JournalError::NoBootstrap(
                            "no usable snapshot and the journal's genesis prefix \
                         was compacted away",
                        ));
                    }
                    let events = reader.read_from(0)?;
                    let (runtime, events) = self.bootstrap_genesis(events)?;
                    (runtime, None, events)
                }
            };

        let events_replayed = events.len();
        runtime.apply_events(&events, feed)?;
        Ok(Recovered {
            runtime,
            stats: RecoveryStats {
                snapshot_offset,
                events_replayed,
                journal_tail: tail,
                wall: start.elapsed(),
            },
        })
    }

    /// Runs a **self-contained** recovery over a journal whose stream
    /// carries [`Event::FeedPrice`] updates inline (the `arb-ingest`
    /// multiplexed stream): restore the newest valid snapshot (including
    /// its feed section), replay the suffix with feed updates routed to
    /// the price table and chain events to the fleet, and refresh under
    /// the reconstructed table. No live feed is needed — the journal and
    /// snapshots alone reproduce the decisions, closing the gap where
    /// [`Recovery::recover`] required the caller to supply prices.
    ///
    /// Applying all replayed feed updates before the single batch
    /// refresh is sound for the same reason suffix batching is: the
    /// standing ranking is a pure function of final reserves and the
    /// final price per token (feed application is last-write-wins).
    ///
    /// # Errors
    ///
    /// As [`Recovery::recover`]; the genesis fallback additionally
    /// accepts `FeedPrice` events interleaved with the leading
    /// `PoolCreated` prefix (the ingest attach path journals the
    /// initial feed first).
    pub fn recover_journaled(&self) -> Result<RecoveredStream, JournalError> {
        let start = Instant::now();
        let reader = JournalReader::open(&self.dir)?;
        let tail = reader.tail_offset();
        let store = SnapshotStore::new(&self.dir)?;

        let mut feed = self.genesis_feed.clone();
        let (restored, snapshot_offset, source_positions, raw_events) =
            match store.newest_valid(reader.base_offset(), tail)? {
                Some((offset, checkpoint)) => {
                    for &(token, price_bits) in &checkpoint.feed {
                        feed.set(TokenId::new(token), f64::from_bits(price_bits));
                    }
                    let runtime = ShardedRuntime::restore(self.pipeline.clone(), &checkpoint)?;
                    (
                        Some(runtime),
                        Some(offset),
                        checkpoint.source_positions,
                        reader.read_from(offset)?,
                    )
                }
                None => {
                    if reader.base_offset() > 0 {
                        return Err(JournalError::NoBootstrap(
                            "no usable snapshot and the journal's genesis prefix \
                             was compacted away",
                        ));
                    }
                    (None, None, Vec::new(), reader.read_from(0)?)
                }
            };

        // Route the suffix: feed updates into the table (last-write-wins,
        // so order relative to chain events is immaterial before the one
        // final refresh), everything else to the fleet.
        let mut chain_events = Vec::with_capacity(raw_events.len());
        let mut feed_events_replayed = 0usize;
        for event in raw_events {
            match event.as_feed_price() {
                Some((token, price)) => {
                    feed.set(token, price);
                    feed_events_replayed += 1;
                }
                None => chain_events.push(event),
            }
        }
        let before_bootstrap = chain_events.len();
        let mut runtime = match restored {
            Some(runtime) => runtime,
            None => {
                let (runtime, rest) = self.bootstrap_genesis(chain_events)?;
                chain_events = rest;
                runtime
            }
        };
        let genesis_bootstrap_events = before_bootstrap - chain_events.len();
        let chain_events_replayed = chain_events.len();
        runtime.apply_events(&chain_events, &feed)?;
        Ok(RecoveredStream {
            runtime,
            feed,
            source_positions,
            feed_events_replayed,
            chain_events_replayed,
            genesis_bootstrap_events,
            stats: RecoveryStats {
                snapshot_offset,
                events_replayed: feed_events_replayed + chain_events_replayed,
                journal_tail: tail,
                wall: start.elapsed(),
            },
        })
    }

    /// Builds a cold runtime for the genesis path: from the configured
    /// genesis pools, or from the journal's leading `PoolCreated` prefix
    /// when none were configured. Returns the runtime plus the events
    /// still to replay through it.
    fn bootstrap_genesis(
        &self,
        mut events: Vec<Event>,
    ) -> Result<(ShardedRuntime, Vec<Event>), JournalError> {
        let pools = if self.genesis_pools.is_empty() {
            let prefix = events
                .iter()
                .take_while(|event| matches!(event, Event::PoolCreated { .. }))
                .count();
            if prefix == 0 {
                return Err(JournalError::NoBootstrap(
                    "no snapshot, no genesis pools, and the journal does not \
                     start with PoolCreated events",
                ));
            }
            let pools = events[..prefix]
                .iter()
                .map(|event| match *event {
                    Event::PoolCreated {
                        token_a,
                        token_b,
                        reserve_a,
                        reserve_b,
                        fee,
                        ..
                    } => Pool::new(
                        token_a,
                        token_b,
                        to_display(reserve_a),
                        to_display(reserve_b),
                        fee,
                    )
                    .map_err(|e| JournalError::Corrupt(format!("genesis pool invalid: {e}"))),
                    // The prefix was selected by `take_while(PoolCreated)`,
                    // so this arm is unreachable today — but recovery code
                    // propagates instead of panicking on principle.
                    _ => Err(JournalError::Corrupt(
                        "genesis prefix held a non-PoolCreated event".to_string(),
                    )),
                })
                .collect::<Result<Vec<_>, _>>()?;
            events.drain(..prefix);
            pools
        } else {
            self.genesis_pools.clone()
        };
        let runtime = ShardedRuntime::new(self.pipeline.clone(), pools, self.max_shards)?;
        Ok((runtime, events))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovery_stats_report_into_the_registry() {
        let obs = arb_obs::Obs::default();
        let stats = RecoveryStats {
            snapshot_offset: Some(128),
            events_replayed: 42,
            journal_tail: 200,
            wall: Duration::from_micros(750),
        };
        stats.record(&obs);
        stats.record(&obs);
        let snapshot = obs.snapshot();
        assert_eq!(snapshot.counter("journal.recoveries"), Some(2));
        assert_eq!(
            snapshot.counter("journal.recovery.events_replayed"),
            Some(84)
        );
        assert_eq!(snapshot.gauge("journal.recovery.journal_tail"), Some(200.0));
        assert_eq!(snapshot.gauge("journal.recovery.from_snapshot"), Some(1.0));
        let wall = snapshot
            .histogram("journal.recovery.wall_ns")
            .expect("wall histogram registered");
        assert_eq!(wall.count, 2);
    }
}
