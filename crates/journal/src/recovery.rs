//! Crash recovery: newest valid snapshot + journal suffix replay.

use std::fmt;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use arb_amm::pool::Pool;
use arb_cex::feed::PriceFeed;
use arb_dexsim::events::Event;
use arb_dexsim::units::to_display;
use arb_engine::{OpportunityPipeline, ShardedRuntime};

use crate::error::JournalError;
use crate::reader::JournalReader;
use crate::snapshot::SnapshotStore;

/// What one recovery did: where it restarted from, how much it replayed,
/// and how long it took. Formatted as a one-line operator log via
/// [`fmt::Display`], in the same style as the engine's `StreamStats` /
/// `PipelineStats` lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Journal offset of the snapshot restored (`None` = genesis replay,
    /// no usable snapshot).
    pub snapshot_offset: Option<u64>,
    /// Events replayed through the engine after the restore point.
    pub events_replayed: usize,
    /// The journal's durable tail at recovery time.
    pub journal_tail: u64,
    /// Wall-clock time of restore + replay.
    pub wall: Duration,
}

impl fmt::Display for RecoveryStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.snapshot_offset {
            Some(offset) => write!(
                f,
                "recovered from snapshot@{offset}, {} events replayed to tail {}, {:.3}ms wall",
                self.events_replayed,
                self.journal_tail,
                self.wall.as_secs_f64() * 1e3
            ),
            None => write!(
                f,
                "recovered from genesis, {} events replayed to tail {}, {:.3}ms wall",
                self.events_replayed,
                self.journal_tail,
                self.wall.as_secs_f64() * 1e3
            ),
        }
    }
}

/// The result of a successful recovery: a runtime brought current to the
/// journal's durable tail, plus the stats describing how it got there.
#[derive(Debug)]
pub struct Recovered {
    /// The restored fleet, standing set refreshed under the recovery
    /// feed — ranked output is bit-identical to a process that never
    /// crashed (given the same feed).
    pub runtime: ShardedRuntime,
    /// What the recovery did.
    pub stats: RecoveryStats,
}

/// The recovery driver: restores the newest valid snapshot from a
/// journal directory and replays the journal suffix through the engine.
///
/// Selection rules (each step falls back to the next):
///
/// 1. the newest snapshot that validates (magic/version/CRC) **and**
///    whose offset is at or below the journal's durable tail;
/// 2. any older snapshot meeting the same conditions;
/// 3. genesis: an engine built from the configured genesis pools (or,
///    when none are given, from the journal's leading `PoolCreated`
///    prefix) with the entire journal replayed.
///
/// Replay applies the suffix as one batch and refreshes under the
/// caller's feed, so the recovered standing ranking is bit-identical to
/// an uninterrupted engine at the same (state, feed) point — evaluation
/// is a pure function of reserves and prices.
#[derive(Debug, Clone)]
pub struct Recovery {
    dir: PathBuf,
    pipeline: OpportunityPipeline,
    max_shards: usize,
    genesis_pools: Vec<Pool>,
}

impl Recovery {
    /// A driver over the journal in `dir`, restoring engines configured
    /// like `pipeline` with at most `max_shards` shards (used only for
    /// the genesis path; a snapshot carries its own shard layout).
    pub fn new(dir: impl Into<PathBuf>, pipeline: OpportunityPipeline, max_shards: usize) -> Self {
        Recovery {
            dir: dir.into(),
            pipeline,
            max_shards,
            genesis_pools: Vec::new(),
        }
    }

    /// Sets the initial pool universe for the genesis fallback — the
    /// pools that existed before the journal's first event (a journal
    /// attached from chain genesis needs none: its leading
    /// `PoolCreated` events carry the universe).
    #[must_use]
    pub fn with_genesis_pools(mut self, pools: Vec<Pool>) -> Self {
        self.genesis_pools = pools;
        self
    }

    /// Runs the recovery: restore, replay, refresh under `feed`.
    ///
    /// # Errors
    ///
    /// * [`JournalError::Io`] / [`JournalError::Corrupt`] — the journal
    ///   itself cannot be read (tail corruption is healed by truncation,
    ///   not reported).
    /// * [`JournalError::NoBootstrap`] — no usable snapshot, no genesis
    ///   pools, and no leading `PoolCreated` prefix to build from.
    /// * [`JournalError::Engine`] — restore or replay failed in the
    ///   engine.
    pub fn recover<F: PriceFeed + Sync>(&self, feed: &F) -> Result<Recovered, JournalError> {
        let start = Instant::now();
        let reader = JournalReader::open(&self.dir)?;
        let tail = reader.tail_offset();
        let store = SnapshotStore::new(&self.dir)?;

        let (mut runtime, snapshot_offset, events) =
            match store.newest_valid(reader.base_offset(), tail)? {
                Some((offset, checkpoint)) => {
                    let runtime = ShardedRuntime::restore(self.pipeline.clone(), &checkpoint)?;
                    (runtime, Some(offset), reader.read_from(offset)?)
                }
                None => {
                    if reader.base_offset() > 0 {
                        // Compaction removed the genesis prefix, which is only
                        // sound while a snapshot covers it — with every
                        // snapshot unusable, a partial replay would produce
                        // silently wrong state.
                        return Err(JournalError::NoBootstrap(
                            "no usable snapshot and the journal's genesis prefix \
                         was compacted away",
                        ));
                    }
                    let events = reader.read_from(0)?;
                    let (runtime, events) = self.bootstrap_genesis(events)?;
                    (runtime, None, events)
                }
            };

        let events_replayed = events.len();
        runtime.apply_events(&events, feed)?;
        Ok(Recovered {
            runtime,
            stats: RecoveryStats {
                snapshot_offset,
                events_replayed,
                journal_tail: tail,
                wall: start.elapsed(),
            },
        })
    }

    /// Builds a cold runtime for the genesis path: from the configured
    /// genesis pools, or from the journal's leading `PoolCreated` prefix
    /// when none were configured. Returns the runtime plus the events
    /// still to replay through it.
    fn bootstrap_genesis(
        &self,
        mut events: Vec<Event>,
    ) -> Result<(ShardedRuntime, Vec<Event>), JournalError> {
        let pools = if self.genesis_pools.is_empty() {
            let prefix = events
                .iter()
                .take_while(|event| matches!(event, Event::PoolCreated { .. }))
                .count();
            if prefix == 0 {
                return Err(JournalError::NoBootstrap(
                    "no snapshot, no genesis pools, and the journal does not \
                     start with PoolCreated events",
                ));
            }
            let pools = events[..prefix]
                .iter()
                .map(|event| match *event {
                    Event::PoolCreated {
                        token_a,
                        token_b,
                        reserve_a,
                        reserve_b,
                        fee,
                        ..
                    } => Pool::new(
                        token_a,
                        token_b,
                        to_display(reserve_a),
                        to_display(reserve_b),
                        fee,
                    )
                    .map_err(|e| JournalError::Corrupt(format!("genesis pool invalid: {e}"))),
                    _ => unreachable!("prefix holds only PoolCreated events"),
                })
                .collect::<Result<Vec<_>, _>>()?;
            events.drain(..prefix);
            pools
        } else {
            self.genesis_pools.clone()
        };
        let runtime = ShardedRuntime::new(self.pipeline.clone(), pools, self.max_shards)?;
        Ok((runtime, events))
    }
}
