//! Journal error type.

use std::error::Error;
use std::fmt;
use std::io;

/// Errors from journal I/O, snapshot handling, and recovery.
#[derive(Debug)]
#[non_exhaustive]
pub enum JournalError {
    /// An underlying filesystem operation failed.
    Io(io::Error),
    /// On-disk bytes failed validation (bad magic, bad checksum, a frame
    /// that does not decode, …). Tail corruption is *not* reported this
    /// way — the journal truncates at the first bad record instead; this
    /// surfaces only for damage that cannot be healed by truncation.
    Corrupt(String),
    /// A read or replay was requested past the journal's durable tail
    /// (e.g. a snapshot referencing events that were never fsynced).
    OffsetPastTail {
        /// The requested offset.
        offset: u64,
        /// The journal's durable tail.
        tail: u64,
    },
    /// Recovery found no usable snapshot and no way to bootstrap from
    /// genesis (no genesis pools and a journal that does not start with
    /// `PoolCreated`).
    NoBootstrap(&'static str),
    /// Restoring or replaying through the engine failed.
    Engine(arb_engine::EngineError),
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal io error: {e}"),
            JournalError::Corrupt(reason) => write!(f, "journal corrupt: {reason}"),
            JournalError::OffsetPastTail { offset, tail } => {
                write!(f, "offset {offset} is past the journal tail {tail}")
            }
            JournalError::NoBootstrap(reason) => {
                write!(f, "recovery cannot bootstrap: {reason}")
            }
            JournalError::Engine(e) => write!(f, "engine error during recovery: {e}"),
        }
    }
}

impl Error for JournalError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            JournalError::Io(e) => Some(e),
            JournalError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for JournalError {
    fn from(e: io::Error) -> Self {
        JournalError::Io(e)
    }
}

impl From<arb_engine::EngineError> for JournalError {
    fn from(e: arb_engine::EngineError) -> Self {
        JournalError::Engine(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = JournalError::Io(io::Error::new(io::ErrorKind::NotFound, "gone"));
        assert!(e.to_string().contains("io"));
        assert!(e.source().is_some());
        let e = JournalError::OffsetPastTail { offset: 9, tail: 3 };
        assert!(e.to_string().contains('9'));
        assert!(e.source().is_none());
        assert!(JournalError::NoBootstrap("x").to_string().contains('x'));
    }
}
