//! A pluggable I/O fault layer for the writer's commit path.
//!
//! Production writers have no shim and pay a single `Option` check per
//! commit. Test and chaos harnesses install one to make the journal
//! misbehave *deterministically*: write errors, fsync failures, torn
//! (short) writes, and disk-full conditions, at schedules a fault plan
//! controls — the failure modes a real log hits under disk pressure,
//! injected without touching the filesystem.

use std::fmt;
use std::io;

/// What the shim tells the writer to do with one commit's bytes.
#[derive(Debug)]
pub enum WriteVerdict {
    /// Write normally.
    Proceed,
    /// Fail before any byte reaches the file (EIO, ENOSPC, ...).
    Fail(io::Error),
    /// Write only the first `keep` bytes of the batch, then fail — a
    /// torn write. The writer rolls the segment back to its last
    /// committed boundary, exactly as it does for any short write; a
    /// harness that wants the torn bytes *left on disk* (a mid-write
    /// crash) drops the writer on the resulting error instead of
    /// retrying, then reopens to exercise tail healing.
    Torn {
        /// Bytes of the batch to let through before failing.
        keep: usize,
    },
}

/// The fault hook [`crate::JournalWriter`] consults on every commit.
///
/// Both methods take `&mut self` so shims can keep deterministic
/// counters (commit index, fired faults) without interior mutability.
pub trait IoShim: Send + fmt::Debug {
    /// Called once per non-empty commit, just before the batch is
    /// written, with the batch size in bytes.
    fn before_write(&mut self, bytes: usize) -> WriteVerdict;

    /// Called just before each durability `sync_data`; returning
    /// `Some(err)` fails the sync (the bytes were written but are not
    /// durable — the writer rolls them back like any commit failure).
    fn before_sync(&mut self) -> Option<io::Error> {
        None
    }
}
