//! CRC-32 (IEEE 802.3) — the checksum guarding every journal record and
//! snapshot file. Table-driven, computed at compile time; std-only.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// The CRC-32 of `data` (IEEE, as used by zlib/PNG/Ethernet).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &byte in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ byte as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn single_bit_flips_change_the_checksum() {
        let data = b"the journal must notice every flipped bit".to_vec();
        let baseline = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), baseline, "byte {byte} bit {bit}");
            }
        }
    }
}
