//! Fixed-width numbered file names, shared by segments and snapshots.
//!
//! Both on-disk artifact kinds use the same scheme —
//! `{prefix}{n:020}{suffix}` — so lexicographic file-name order equals
//! numeric order and a plain directory listing reads chronologically.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Digits in the zero-padded number field.
const WIDTH: usize = 20;

/// Formats `{prefix}{n:020}{suffix}`.
pub(crate) fn file_name(prefix: &str, n: u64, suffix: &str) -> String {
    format!("{prefix}{n:0WIDTH$}{suffix}")
}

/// Parses a name produced by [`file_name`] back into its number.
/// Rejects non-matching prefixes/suffixes and non-fixed-width digits.
pub(crate) fn parse(name: &str, prefix: &str, suffix: &str) -> Option<u64> {
    let digits = name.strip_prefix(prefix)?.strip_suffix(suffix)?;
    if digits.len() != WIDTH || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// Lists `dir`'s matching files sorted by number, ignoring foreign
/// names (including in-flight `.tmp` files).
pub(crate) fn list(dir: &Path, prefix: &str, suffix: &str) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut found = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        if let Some(n) = name.to_str().and_then(|name| parse(name, prefix, suffix)) {
            found.push((n, entry.path()));
        }
    }
    found.sort_by_key(|(n, _)| *n);
    Ok(found)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_rejections() {
        let name = file_name("segment-", 57, ".seg");
        assert_eq!(name, "segment-00000000000000000057.seg");
        assert_eq!(parse(&name, "segment-", ".seg"), Some(57));
        assert_eq!(parse(&name, "snapshot-", ".ckpt"), None);
        assert_eq!(parse("segment-57.seg", "segment-", ".seg"), None);
        assert_eq!(parse("segment-xyz.seg", "segment-", ".seg"), None);
        assert_eq!(
            parse("snapshot-00000000000000000003.ckpt", "snapshot-", ".ckpt"),
            Some(3)
        );
    }
}
