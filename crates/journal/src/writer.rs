//! The append side: fsync-on-batch writes, tail recovery, compaction.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use arb_dexsim::chain::EventSink;
use arb_dexsim::events::Event;

use crate::io::{IoShim, WriteVerdict};
use crate::segment::{self, segment_file_name};

/// Writer tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalConfig {
    /// Roll to a new segment once the current one reaches this many
    /// bytes (checked at commit boundaries, so one batch never spans two
    /// segments).
    pub segment_max_bytes: u64,
    /// Fsync on every [`JournalWriter::commit`]. Disable only for
    /// benchmarks and tests where durability does not matter.
    pub sync_on_commit: bool,
}

impl Default for JournalConfig {
    fn default() -> Self {
        JournalConfig {
            segment_max_bytes: 256 * 1024,
            sync_on_commit: true,
        }
    }
}

/// The append-only journal writer.
///
/// Events accumulate in an in-memory batch via [`JournalWriter::append`];
/// [`JournalWriter::commit`] writes the batch to the current segment and
/// fsyncs once — the fsync-per-batch discipline that makes journaling
/// cheap enough to sit on the hot path. Offsets are global event
/// sequence numbers: the first event ever appended is offset 0, matching
/// `dexsim`'s in-memory `EventLog` sequence when the journal is attached
/// from genesis (or backfilled).
///
/// Opening an existing directory recovers the durable tail: segments are
/// scanned in order and the journal is truncated at the first record
/// that is missing, fails its checksum, or does not decode — trailing
/// garbage from an interrupted write is discarded, never re-served.
#[derive(Debug)]
pub struct JournalWriter {
    dir: PathBuf,
    config: JournalConfig,
    /// The current segment, open for appending.
    file: File,
    /// First offset of the current segment.
    segment_first: u64,
    /// Durable bytes in the current segment.
    segment_bytes: u64,
    /// Encoded-but-uncommitted records.
    pending: Vec<u8>,
    pending_events: u64,
    /// Offset of the next record to become durable.
    committed: u64,
    /// First commit failure, re-surfaced by the next `commit` call (the
    /// [`EventSink`] path cannot propagate errors inline).
    deferred: Option<io::Error>,
    /// Optional fault layer consulted on the commit path (chaos tests).
    shim: Option<Box<dyn IoShim>>,
}

impl JournalWriter {
    /// Opens (or creates) the journal in `dir`, recovering the durable
    /// tail: the first corrupt or truncated record anywhere truncates
    /// the journal there — its file is cut back to the valid prefix and
    /// any later segments are removed.
    ///
    /// # Errors
    ///
    /// Returns [`io::Error`] on filesystem failures.
    pub fn open(dir: impl Into<PathBuf>, config: JournalConfig) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let segments = segment::list_segments(&dir)?;

        let (segment_first, segment_bytes, committed) = if segments.is_empty() {
            (0, 0, 0)
        } else {
            let mut keep = segments.len();
            let mut tail = (0u64, 0u64, 0u64);
            let mut expected_first = segments[0].0;
            for (index, (first, path)) in segments.iter().enumerate() {
                let scan = segment::scan_segment(path)?;
                let contiguous = *first == expected_first;
                if contiguous {
                    tail = (*first, scan.valid_bytes, first + scan.records);
                    expected_first = first + scan.records;
                }
                if !contiguous || !scan.clean {
                    // Truncate at the first bad record: cut this file to
                    // its valid prefix (or drop it entirely when the gap
                    // is before it) and discard everything after.
                    keep = if contiguous { index + 1 } else { index };
                    break;
                }
            }
            for (_, path) in &segments[keep..] {
                fs::remove_file(path)?;
            }
            if keep == 0 {
                (0, 0, 0)
            } else {
                let (first, valid_bytes, committed) = tail;
                let path = dir.join(segment_file_name(first));
                let file = OpenOptions::new().write(true).open(&path)?;
                file.set_len(valid_bytes)?;
                file.sync_all()?;
                (first, valid_bytes, committed)
            }
        };

        let path = dir.join(segment_file_name(segment_first));
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        sync_dir(&dir)?;
        Ok(JournalWriter {
            dir,
            config,
            file,
            segment_first,
            segment_bytes,
            pending: Vec::new(),
            pending_events: 0,
            committed,
            deferred: None,
            shim: None,
        })
    }

    /// Installs an [`IoShim`] consulted on every subsequent commit
    /// (replacing any previous one). Fault injection only — a writer
    /// without a shim performs plain writes.
    pub fn set_io_shim(&mut self, shim: Box<dyn IoShim>) {
        self.shim = Some(shim);
    }

    /// Removes the installed [`IoShim`], returning the writer to plain
    /// writes.
    pub fn clear_io_shim(&mut self) {
        self.shim = None;
    }

    /// The journal directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The offset the next appended event will receive (committed +
    /// pending).
    pub fn next_offset(&self) -> u64 {
        self.committed + self.pending_events
    }

    /// The durable tail: everything below this offset survives a crash.
    pub fn durable_offset(&self) -> u64 {
        self.committed
    }

    /// Appended-but-not-yet-durable events. Non-zero after a failed
    /// commit: the batch is retained for retry, and callers deciding
    /// whether state is snapshot-safe must treat the journal as lagging
    /// behind applied state until this drains back to zero.
    pub fn pending_events(&self) -> u64 {
        self.pending_events
    }

    /// Frames `event` into the pending batch and returns its assigned
    /// offset. Nothing is durable until [`JournalWriter::commit`].
    pub fn append(&mut self, event: &Event) -> u64 {
        let offset = self.next_offset();
        segment::encode_record(&mut self.pending, event);
        self.pending_events += 1;
        offset
    }

    /// Appends a whole batch ([`JournalWriter::append`] per event).
    pub fn append_batch(&mut self, events: &[Event]) {
        for event in events {
            self.append(event);
        }
    }

    /// Writes the pending batch to the current segment and fsyncs once
    /// (under [`JournalConfig::sync_on_commit`]), rolling to a new
    /// segment first when the current one is full. Returns the new
    /// durable tail.
    ///
    /// # Errors
    ///
    /// Returns [`io::Error`] on write/sync failures — including one
    /// deferred from an earlier [`EventSink`]-path commit.
    pub fn commit(&mut self) -> io::Result<u64> {
        if let Some(deferred) = self.deferred.take() {
            return Err(deferred);
        }
        if self.pending.is_empty() {
            return Ok(self.committed);
        }
        if self.segment_bytes >= self.config.segment_max_bytes && self.segment_bytes > 0 {
            self.roll_segment()?;
        }
        let written = self.shimmed_write();
        if let Err(error) = written {
            // A failed write may have landed part of a record; cut the
            // segment back to its last durable boundary so a retried
            // commit cannot leave torn bytes *between* batches (which a
            // later reopen would silently truncate at, discarding
            // records this writer had reported durable). If even the
            // rollback fails, poison the writer: refusing further
            // commits beats corrupting the offset space.
            if let Err(rollback) = self.file.set_len(self.segment_bytes) {
                self.deferred = Some(io::Error::new(
                    rollback.kind(),
                    format!(
                        "commit failed ({error}) and rolling back the torn \
                         segment tail also failed: {rollback}"
                    ),
                ));
            }
            return Err(error);
        }
        self.segment_bytes += self.pending.len() as u64;
        self.committed += self.pending_events;
        self.pending.clear();
        self.pending_events = 0;
        Ok(self.committed)
    }

    /// Deletes every segment that lies entirely below `offset` — called
    /// after a snapshot at `offset` lands, since recovery never reads
    /// below the newest snapshot. The segment containing `offset` (and
    /// the live tail) always survives. Returns the number of segments
    /// removed.
    ///
    /// # Errors
    ///
    /// Returns [`io::Error`] on filesystem failures.
    pub fn compact_below(&mut self, offset: u64) -> io::Result<usize> {
        let segments = segment::list_segments(&self.dir)?;
        let mut removed = 0;
        for pair in segments.windows(2) {
            let (_, path) = &pair[0];
            let (next_first, _) = pair[1];
            if next_first <= offset {
                fs::remove_file(path)?;
                removed += 1;
            }
        }
        if removed > 0 {
            sync_dir(&self.dir)?;
        }
        Ok(removed)
    }

    /// One commit's worth of write + sync, routed through the installed
    /// [`IoShim`] (if any) so fault harnesses can fail, tear, or
    /// un-sync the batch deterministically.
    fn shimmed_write(&mut self) -> io::Result<()> {
        match self.shim.as_mut().map_or(WriteVerdict::Proceed, |shim| {
            shim.before_write(self.pending.len())
        }) {
            WriteVerdict::Proceed => {}
            WriteVerdict::Fail(error) => return Err(error),
            WriteVerdict::Torn { keep } => {
                let keep = keep.min(self.pending.len());
                self.file.write_all(&self.pending[..keep])?;
                return Err(io::Error::other(format!(
                    "injected torn write: {keep} of {} batch bytes landed",
                    self.pending.len()
                )));
            }
        }
        self.file.write_all(&self.pending)?;
        if self.config.sync_on_commit {
            if let Some(error) = self.shim.as_mut().and_then(|shim| shim.before_sync()) {
                return Err(error);
            }
            self.file.sync_data()?;
        }
        Ok(())
    }

    /// Finishes the current segment and starts a fresh one whose first
    /// offset is the current committed tail.
    fn roll_segment(&mut self) -> io::Result<()> {
        self.file.sync_data()?;
        let path = self.dir.join(segment_file_name(self.committed));
        self.file = OpenOptions::new()
            .create_new(true)
            .append(true)
            .open(&path)?;
        sync_dir(&self.dir)?;
        self.segment_first = self.committed;
        self.segment_bytes = 0;
        Ok(())
    }
}

/// Durable sink wiring: `record` frames the event, `commit` flushes the
/// batch. A commit failure is deferred and surfaced by the next inherent
/// [`JournalWriter::commit`] call, since the sink trait cannot return
/// errors inline.
impl EventSink for JournalWriter {
    fn record(&mut self, event: &Event) {
        self.append(event);
    }

    fn commit(&mut self) {
        if let Err(error) = JournalWriter::commit(self) {
            if self.deferred.is_none() {
                self.deferred = Some(error);
            }
        }
    }
}

/// Fsyncs a directory so renames/creates/deletes within it are durable.
fn sync_dir(dir: &Path) -> io::Result<()> {
    File::open(dir)?.sync_all()
}
