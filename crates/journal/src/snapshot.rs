//! Durable engine snapshots: the checkpoint codec and the on-disk store.
//!
//! A snapshot file is a serialized [`RuntimeCheckpoint`] tied to a
//! journal offset: "this was the fleet's exact state after consuming
//! events `[0, offset)`". Files are written atomically (tmp + rename +
//! directory fsync) and guarded by a trailing CRC-32, so a crash mid-write
//! leaves either the previous snapshot set or a complete new file — never
//! a torn one. Recovery walks snapshots newest-first and skips any that
//! fail validation *or* reference events past the journal's durable tail
//! (a snapshot fsynced ahead of its events is unusable), falling back to
//! the previous one.

use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use arb_engine::{EngineCheckpoint, PoolSlot, RuntimeCheckpoint};
use arb_graph::Cycle;

use crate::crc::crc32;
use crate::error::JournalError;

const MAGIC: &[u8; 8] = b"ARBSNAP1";
// Version 2 appended the feed and ingest-source-position sections, so a
// snapshot taken through the ingestion front-end is self-contained:
// restoring it needs no live price feed.
const VERSION: u32 = 2;
const PREFIX: &str = "snapshot-";
const SUFFIX: &str = ".ckpt";

/// The file name of the snapshot taken at `offset`.
fn snapshot_file_name(offset: u64) -> String {
    crate::names::file_name(PREFIX, offset, SUFFIX)
}

// --- encoding -----------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn encode_engine(out: &mut Vec<u8>, engine: &EngineCheckpoint) {
    put_u64(out, engine.min_cycle_len as u64);
    put_u64(out, engine.max_cycle_len as u64);
    put_u64(out, engine.slots.len() as u64);
    for slot in &engine.slots {
        put_u32(out, slot.token_a);
        put_u32(out, slot.token_b);
        put_u64(out, slot.reserve_a.to_bits());
        put_u64(out, slot.reserve_b.to_bits());
        put_u32(out, slot.fee_ppm);
        out.push(u8::from(slot.live));
    }
    put_u64(out, engine.arena.len() as u64);
    for entry in &engine.arena {
        match entry {
            None => out.push(0),
            Some(cycle) => {
                out.push(1);
                put_u32(out, cycle.len() as u32);
                for token in cycle.tokens() {
                    put_u32(out, token.index() as u32);
                }
                for pool in cycle.pools() {
                    put_u32(out, pool.index() as u32);
                }
            }
        }
    }
    put_u64(out, engine.free.len() as u64);
    for &slot in &engine.free {
        put_u32(out, slot);
    }
    put_u64(out, engine.standing_revision);
}

/// Serializes a checkpoint (with its journal offset) into the snapshot
/// wire format: magic, version, body, trailing CRC-32 over everything
/// after the magic.
pub fn encode_checkpoint(offset: u64, checkpoint: &RuntimeCheckpoint) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    put_u32(&mut out, VERSION);
    put_u64(&mut out, offset);
    put_u64(&mut out, checkpoint.max_shards as u64);
    put_u64(&mut out, checkpoint.owners.len() as u64);
    for &owner in &checkpoint.owners {
        put_u32(&mut out, owner);
    }
    put_u64(&mut out, checkpoint.shards.len() as u64);
    for shard in &checkpoint.shards {
        encode_engine(&mut out, shard);
    }
    put_u64(&mut out, checkpoint.feed.len() as u64);
    for &(token, price_bits) in &checkpoint.feed {
        put_u32(&mut out, token);
        put_u64(&mut out, price_bits);
    }
    put_u64(&mut out, checkpoint.source_positions.len() as u64);
    for &position in &checkpoint.source_positions {
        put_u64(&mut out, position);
    }
    let crc = crc32(&out[MAGIC.len()..]);
    put_u32(&mut out, crc);
    out
}

// --- decoding -----------------------------------------------------------

/// A bounds-checked little-endian cursor over snapshot bytes.
struct Decoder<'a> {
    data: &'a [u8],
    at: usize,
}

impl<'a> Decoder<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], JournalError> {
        let slice = self
            .data
            .get(self.at..self.at + n)
            .ok_or_else(|| JournalError::Corrupt("snapshot truncated".to_string()))?;
        self.at += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, JournalError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, JournalError> {
        let bytes = self
            .take(4)?
            .try_into()
            .map_err(|_| JournalError::Corrupt("snapshot u32 field truncated".to_string()))?;
        Ok(u32::from_le_bytes(bytes))
    }

    fn u64(&mut self) -> Result<u64, JournalError> {
        let bytes = self
            .take(8)?
            .try_into()
            .map_err(|_| JournalError::Corrupt("snapshot u64 field truncated".to_string()))?;
        Ok(u64::from_le_bytes(bytes))
    }

    /// A length prefix, sanity-bounded so corrupt lengths cannot trigger
    /// absurd allocations.
    fn len(&mut self) -> Result<usize, JournalError> {
        let len = self.u64()?;
        if len > (1 << 32) {
            return Err(JournalError::Corrupt(format!(
                "implausible snapshot length prefix {len}"
            )));
        }
        Ok(len as usize)
    }
}

fn decode_engine(d: &mut Decoder<'_>) -> Result<EngineCheckpoint, JournalError> {
    let min_cycle_len = d.len()?;
    let max_cycle_len = d.len()?;
    let slot_count = d.len()?;
    let mut slots = Vec::with_capacity(slot_count);
    for _ in 0..slot_count {
        slots.push(PoolSlot {
            token_a: d.u32()?,
            token_b: d.u32()?,
            reserve_a: f64::from_bits(d.u64()?),
            reserve_b: f64::from_bits(d.u64()?),
            fee_ppm: d.u32()?,
            live: match d.u8()? {
                0 => false,
                1 => true,
                other => {
                    return Err(JournalError::Corrupt(format!(
                        "invalid liveness byte {other}"
                    )))
                }
            },
        });
    }
    let arena_len = d.len()?;
    let mut arena = Vec::with_capacity(arena_len);
    for _ in 0..arena_len {
        match d.u8()? {
            0 => arena.push(None),
            1 => {
                let hops = d.u32()? as usize;
                let mut tokens = Vec::with_capacity(hops);
                for _ in 0..hops {
                    tokens.push(arb_amm::token::TokenId::new(d.u32()?));
                }
                let mut pools = Vec::with_capacity(hops);
                for _ in 0..hops {
                    pools.push(arb_amm::pool::PoolId::new(d.u32()?));
                }
                let cycle = Cycle::new(tokens, pools).map_err(|e| {
                    JournalError::Corrupt(format!("snapshot holds an invalid cycle: {e}"))
                })?;
                arena.push(Some(cycle));
            }
            other => return Err(JournalError::Corrupt(format!("invalid arena tag {other}"))),
        }
    }
    let free_len = d.len()?;
    let mut free = Vec::with_capacity(free_len);
    for _ in 0..free_len {
        free.push(d.u32()?);
    }
    Ok(EngineCheckpoint {
        min_cycle_len,
        max_cycle_len,
        slots,
        arena,
        free,
        standing_revision: d.u64()?,
    })
}

/// Parses and validates snapshot bytes, returning the journal offset and
/// the checkpoint.
///
/// # Errors
///
/// Returns [`JournalError::Corrupt`] for bad magic/version, a checksum
/// mismatch, truncation, or malformed contents.
pub fn decode_checkpoint(data: &[u8]) -> Result<(u64, RuntimeCheckpoint), JournalError> {
    if data.len() < MAGIC.len() + 8 || &data[..MAGIC.len()] != MAGIC {
        return Err(JournalError::Corrupt("bad snapshot magic".to_string()));
    }
    let body = &data[MAGIC.len()..data.len() - 4];
    let stored = u32::from_le_bytes(
        data[data.len() - 4..]
            .try_into()
            .map_err(|_| JournalError::Corrupt("snapshot checksum truncated".to_string()))?,
    );
    if crc32(body) != stored {
        return Err(JournalError::Corrupt(
            "snapshot checksum mismatch".to_string(),
        ));
    }
    let mut d = Decoder { data: body, at: 0 };
    let version = d.u32()?;
    if version != VERSION {
        return Err(JournalError::Corrupt(format!(
            "unsupported snapshot version {version}"
        )));
    }
    let offset = d.u64()?;
    let max_shards = d.len()?;
    let owner_count = d.len()?;
    let mut owners = Vec::with_capacity(owner_count);
    for _ in 0..owner_count {
        owners.push(d.u32()?);
    }
    let shard_count = d.len()?;
    let mut shards = Vec::with_capacity(shard_count);
    for _ in 0..shard_count {
        shards.push(decode_engine(&mut d)?);
    }
    let feed_len = d.len()?;
    let mut feed = Vec::with_capacity(feed_len);
    for _ in 0..feed_len {
        let token = d.u32()?;
        let price_bits = d.u64()?;
        feed.push((token, price_bits));
    }
    let position_count = d.len()?;
    let mut source_positions = Vec::with_capacity(position_count);
    for _ in 0..position_count {
        source_positions.push(d.u64()?);
    }
    if d.at != d.data.len() {
        return Err(JournalError::Corrupt(
            "snapshot has trailing bytes".to_string(),
        ));
    }
    Ok((
        offset,
        RuntimeCheckpoint {
            max_shards,
            owners,
            shards,
            feed,
            source_positions,
        },
    ))
}

// --- the store ----------------------------------------------------------

/// The snapshot directory: atomic writes, newest-valid selection,
/// pruning. Usually the same directory as the journal segments (the two
/// naming schemes do not collide).
#[derive(Debug, Clone)]
pub struct SnapshotStore {
    dir: PathBuf,
}

impl SnapshotStore {
    /// Opens (or creates) the store in `dir`.
    ///
    /// # Errors
    ///
    /// Returns [`JournalError::Io`] when the directory cannot be created.
    pub fn new(dir: impl Into<PathBuf>) -> Result<Self, JournalError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(SnapshotStore { dir })
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Writes the checkpoint taken at journal `offset` atomically: the
    /// bytes land in a `.tmp` file, are fsynced, renamed into place, and
    /// the directory entry is fsynced. Returns the final path.
    ///
    /// # Errors
    ///
    /// Returns [`JournalError::Io`] on filesystem failures.
    pub fn write(
        &self,
        offset: u64,
        checkpoint: &RuntimeCheckpoint,
    ) -> Result<PathBuf, JournalError> {
        let bytes = encode_checkpoint(offset, checkpoint);
        let path = self.dir.join(snapshot_file_name(offset));
        let tmp = path.with_extension("ckpt.tmp");
        {
            let mut file = OpenOptions::new()
                .create(true)
                .write(true)
                .truncate(true)
                .open(&tmp)?;
            file.write_all(&bytes)?;
            file.sync_all()?;
        }
        fs::rename(&tmp, &path)?;
        File::open(&self.dir)?.sync_all()?;
        Ok(path)
    }

    /// Lists the snapshot files by offset, ascending. Unfinished `.tmp`
    /// files and foreign names are ignored.
    ///
    /// # Errors
    ///
    /// Returns [`JournalError::Io`] on filesystem failures.
    pub fn list(&self) -> Result<Vec<(u64, PathBuf)>, JournalError> {
        Ok(crate::names::list(&self.dir, PREFIX, SUFFIX)?)
    }

    /// Loads and validates one snapshot file.
    ///
    /// # Errors
    ///
    /// Returns [`JournalError::Io`] on read failures and
    /// [`JournalError::Corrupt`] when validation fails.
    pub fn load(path: &Path) -> Result<(u64, RuntimeCheckpoint), JournalError> {
        decode_checkpoint(&fs::read(path)?)
    }

    /// The newest snapshot that validates and whose journal suffix is
    /// actually replayable: its offset must lie within
    /// `[journal_base, journal_tail]` (below the base, the events
    /// between the snapshot and the tail were compacted away; above the
    /// tail, they were never fsynced). Invalid or out-of-range
    /// snapshots are skipped (falling back to the previous one), not
    /// errors: recovery degrades toward genesis rather than failing.
    ///
    /// # Errors
    ///
    /// Returns [`JournalError::Io`] on directory listing failures.
    pub fn newest_valid(
        &self,
        journal_base: u64,
        journal_tail: u64,
    ) -> Result<Option<(u64, RuntimeCheckpoint)>, JournalError> {
        for (offset, path) in self.list()?.into_iter().rev() {
            if offset > journal_tail || offset < journal_base {
                continue;
            }
            if let Ok((stored_offset, checkpoint)) = Self::load(&path) {
                if stored_offset == offset {
                    return Ok(Some((offset, checkpoint)));
                }
            }
        }
        Ok(None)
    }

    /// Deletes all but the newest `keep` snapshots. Returns the number
    /// removed.
    ///
    /// # Errors
    ///
    /// Returns [`JournalError::Io`] on filesystem failures.
    pub fn prune(&self, keep: usize) -> Result<usize, JournalError> {
        let snapshots = self.list()?;
        let excess = snapshots.len().saturating_sub(keep.max(1));
        for (_, path) in &snapshots[..excess] {
            fs::remove_file(path)?;
        }
        if excess > 0 {
            File::open(&self.dir)?.sync_all()?;
        }
        Ok(excess)
    }
}
