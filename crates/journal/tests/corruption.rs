//! Corruption edge cases: the journal must heal by truncation and
//! recovery must fall back across bad snapshots — never serve garbage.

use std::fs::{self, OpenOptions};
use std::io::Write;
use std::path::PathBuf;

use arb_amm::fee::FeeRate;
use arb_amm::pool::{Pool, PoolId};
use arb_amm::token::TokenId;
use arb_cex::feed::PriceTable;
use arb_dexsim::events::Event;
use arb_dexsim::units::to_raw;
use arb_engine::{OpportunityPipeline, ShardedRuntime};
use arb_journal::{JournalConfig, JournalReader, JournalWriter, Recovery, SnapshotStore};

struct Scratch(PathBuf);

impl Scratch {
    fn new(name: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("arbloops-corrupt-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("scratch dir");
        Scratch(dir)
    }

    fn path(&self) -> &PathBuf {
        &self.0
    }

    /// The single segment file holding offset 0.
    fn first_segment(&self) -> PathBuf {
        self.0.join("segment-00000000000000000000.seg")
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn sync(pool: u32, a: u128, b: u128) -> Event {
    Event::Sync {
        pool: PoolId::new(pool),
        reserve_a: a,
        reserve_b: b,
    }
}

fn write_events(dir: &PathBuf, events: &[Event]) {
    let mut writer = JournalWriter::open(dir, JournalConfig::default()).unwrap();
    writer.append_batch(events);
    writer.commit().unwrap();
}

#[test]
fn zero_length_segment_is_an_empty_journal() {
    let scratch = Scratch::new("zero-length");
    fs::write(scratch.first_segment(), []).unwrap();

    let reader = JournalReader::open(scratch.path()).unwrap();
    assert_eq!(reader.tail_offset(), 0);
    assert!(reader.is_empty());
    assert_eq!(reader.read_from(0).unwrap(), vec![]);

    // The writer adopts the empty segment and appends from offset 0.
    let mut writer = JournalWriter::open(scratch.path(), JournalConfig::default()).unwrap();
    assert_eq!(writer.next_offset(), 0);
    assert_eq!(writer.append(&sync(0, 1, 2)), 0);
    writer.commit().unwrap();
    assert_eq!(
        JournalReader::open(scratch.path()).unwrap().tail_offset(),
        1
    );
}

#[test]
fn truncated_length_prefix_is_cut_at_reopen() {
    let scratch = Scratch::new("truncated-prefix");
    let events = vec![sync(0, 1, 2), sync(1, 3, 4), sync(2, 5, 6)];
    write_events(scratch.path(), &events);

    // A crash mid-write leaves a partial header: 2 stray bytes.
    let clean_len = fs::metadata(scratch.first_segment()).unwrap().len();
    let mut file = OpenOptions::new()
        .append(true)
        .open(scratch.first_segment())
        .unwrap();
    file.write_all(&[0x2a, 0x00]).unwrap();
    drop(file);

    // The reader serves only the valid prefix without touching the file…
    let reader = JournalReader::open(scratch.path()).unwrap();
    assert_eq!(reader.tail_offset(), 3);
    assert_eq!(reader.read_from(0).unwrap(), events);
    assert_eq!(
        fs::metadata(scratch.first_segment()).unwrap().len(),
        clean_len + 2,
        "reader must not mutate the journal"
    );

    // …while the writer truncates the garbage and appends cleanly.
    let mut writer = JournalWriter::open(scratch.path(), JournalConfig::default()).unwrap();
    assert_eq!(writer.durable_offset(), 3);
    assert_eq!(
        fs::metadata(scratch.first_segment()).unwrap().len(),
        clean_len
    );
    assert_eq!(writer.append(&sync(3, 7, 8)), 3);
    writer.commit().unwrap();
    let reader = JournalReader::open(scratch.path()).unwrap();
    assert_eq!(reader.read_from(0).unwrap().len(), 4);
}

#[test]
fn bit_flipped_payload_truncates_from_the_flip() {
    let scratch = Scratch::new("bit-flip");
    let events = vec![sync(0, 1, 2), sync(1, 3, 4), sync(2, 5, 6)];
    write_events(scratch.path(), &events);

    // Flip one bit inside the second record's payload.
    let mut data = fs::read(scratch.first_segment()).unwrap();
    let record_len = data.len() / 3;
    data[record_len + 12] ^= 0x01;
    fs::write(scratch.first_segment(), &data).unwrap();

    // Everything from the flipped record on is gone — the checksum
    // catches the flip and the journal truncates at it.
    let reader = JournalReader::open(scratch.path()).unwrap();
    assert_eq!(reader.tail_offset(), 1);
    assert_eq!(reader.read_from(0).unwrap(), events[..1]);

    let writer = JournalWriter::open(scratch.path(), JournalConfig::default()).unwrap();
    assert_eq!(writer.durable_offset(), 1);
    assert_eq!(
        fs::metadata(scratch.first_segment()).unwrap().len() as usize,
        record_len,
        "writer reopen cuts the file back to the valid prefix"
    );
}

/// The mid-write crash matrix: tear the last record at **every** byte
/// offset of its on-disk encoding — from "crash before the first byte"
/// to "crash one byte short of complete" — and prove that for every
/// cut, (a) reopening the writer heals the tail back to the last whole
/// record, and (b) after the producer re-offers the lost event (what
/// the ingest layer does on recovery), full journal recovery reaches a
/// ranking bit-identical to a never-crashed oracle's.
#[test]
fn torn_tail_at_every_byte_offset_heals_and_recovers_to_the_oracle() {
    let (pools, feed) = paper_setup();
    let ticks = vec![
        sync(0, to_raw(101.0), to_raw(199.0)),
        sync(1, to_raw(303.0), to_raw(198.0)),
        sync(2, to_raw(198.0), to_raw(404.0)),
        sync(0, to_raw(97.0), to_raw(205.0)),
    ];

    // The never-crashed oracle: all four records journaled cleanly.
    let oracle_scratch = Scratch::new("torn-oracle");
    write_events(oracle_scratch.path(), &ticks);
    let recovered = Recovery::new(oracle_scratch.path(), OpportunityPipeline::default(), 2)
        .with_genesis_pools(pools.clone())
        .recover(&feed)
        .unwrap();
    let mut oracle_runtime = recovered.runtime;
    let oracle_report = oracle_runtime.refresh(&feed).unwrap();
    assert!(
        !oracle_report.opportunities.is_empty(),
        "an empty oracle ranking would make the matrix vacuous"
    );
    let oracle_bits: Vec<u64> = oracle_report
        .opportunities
        .iter()
        .map(|o| o.net_profit.value().to_bits())
        .collect();

    // Capture the segment with three whole records, then with the
    // fourth appended — the matrix replays a crash at every byte in
    // between.
    let scratch = Scratch::new("torn-matrix");
    write_events(scratch.path(), &ticks[..3]);
    let clean = fs::read(scratch.first_segment()).unwrap();
    write_events(scratch.path(), &ticks[3..]);
    let full = fs::read(scratch.first_segment()).unwrap();
    assert!(full.len() > clean.len());

    for cut in clean.len()..full.len() {
        fs::write(scratch.first_segment(), &full[..cut]).unwrap();

        // Reopen heals: the torn record is truncated away, the three
        // whole records survive untouched.
        let mut writer = JournalWriter::open(scratch.path(), JournalConfig::default()).unwrap();
        assert_eq!(writer.durable_offset(), 3, "cut at byte {cut}");
        assert_eq!(
            fs::metadata(scratch.first_segment()).unwrap().len() as usize,
            clean.len(),
            "cut at byte {cut}: heal must cut back to the whole-record prefix"
        );

        // The producer re-offers the event the torn write lost…
        assert_eq!(writer.append(&ticks[3]), 3);
        writer.commit().unwrap();
        drop(writer);

        // …and recovery reaches the never-crashed oracle, bit for bit.
        let recovered = Recovery::new(scratch.path(), OpportunityPipeline::default(), 2)
            .with_genesis_pools(pools.clone())
            .recover(&feed)
            .unwrap();
        assert_eq!(recovered.stats.events_replayed, 4, "cut at byte {cut}");
        let mut runtime = recovered.runtime;
        let report = runtime.refresh(&feed).unwrap();
        let bits: Vec<u64> = report
            .opportunities
            .iter()
            .map(|o| o.net_profit.value().to_bits())
            .collect();
        assert_eq!(bits, oracle_bits, "cut at byte {cut}");
    }
}

fn paper_setup() -> (Vec<Pool>, PriceTable) {
    let t = TokenId::new;
    let fee = FeeRate::UNISWAP_V2;
    let pools = vec![
        Pool::new(t(0), t(1), 100.0, 200.0, fee).unwrap(),
        Pool::new(t(1), t(2), 300.0, 200.0, fee).unwrap(),
        Pool::new(t(2), t(0), 200.0, 400.0, fee).unwrap(),
    ];
    let feed: PriceTable = [(t(0), 2.0), (t(1), 10.2), (t(2), 20.0)]
        .into_iter()
        .collect();
    (pools, feed)
}

#[test]
fn snapshot_past_the_tail_falls_back_to_the_previous_one() {
    let scratch = Scratch::new("past-tail");
    let (pools, feed) = paper_setup();

    let mut writer = JournalWriter::open(scratch.path(), JournalConfig::default()).unwrap();
    let mut runtime =
        ShardedRuntime::new(OpportunityPipeline::default(), pools.clone(), 2).unwrap();
    let store = SnapshotStore::new(scratch.path()).unwrap();

    // Two journaled ticks with a snapshot after each.
    let ticks = [
        vec![sync(0, to_raw(101.0), to_raw(199.0))],
        vec![sync(1, to_raw(303.0), to_raw(198.0))],
    ];
    for tick in &ticks {
        writer.append_batch(tick);
        writer.commit().unwrap();
        runtime.apply_events(tick, &feed).unwrap();
        store
            .write(writer.durable_offset(), &runtime.checkpoint())
            .unwrap();
    }
    let live = runtime.refresh(&feed).unwrap();

    // A snapshot claiming offset 99: its events were never fsynced (the
    // journal tail is 2). Recovery must skip it and use snapshot@2.
    store.write(99, &runtime.checkpoint()).unwrap();
    let recovered = Recovery::new(scratch.path(), OpportunityPipeline::default(), 2)
        .with_genesis_pools(pools.clone())
        .recover(&feed)
        .unwrap();
    assert_eq!(recovered.stats.snapshot_offset, Some(2));
    assert_eq!(recovered.stats.events_replayed, 0);

    // Corrupt snapshot@2 as well: fall back once more, to snapshot@1.
    let mut bytes = fs::read(scratch.path().join("snapshot-00000000000000000002.ckpt")).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    fs::write(
        scratch.path().join("snapshot-00000000000000000002.ckpt"),
        &bytes,
    )
    .unwrap();
    let recovered = Recovery::new(scratch.path(), OpportunityPipeline::default(), 2)
        .with_genesis_pools(pools.clone())
        .recover(&feed)
        .unwrap();
    assert_eq!(recovered.stats.snapshot_offset, Some(1));
    assert_eq!(recovered.stats.events_replayed, 1, "replays tick 2");

    // And the recovered ranking still matches the uninterrupted run.
    let mut recovered_runtime = recovered.runtime;
    let restored = recovered_runtime.refresh(&feed).unwrap();
    assert_eq!(restored.opportunities.len(), live.opportunities.len());
    for (a, b) in live.opportunities.iter().zip(&restored.opportunities) {
        assert_eq!(
            a.net_profit.value().to_bits(),
            b.net_profit.value().to_bits()
        );
    }

    // With every snapshot unusable, recovery degrades to genesis replay.
    for (_, path) in store.list().unwrap() {
        fs::remove_file(path).unwrap();
    }
    let recovered = Recovery::new(scratch.path(), OpportunityPipeline::default(), 2)
        .with_genesis_pools(pools)
        .recover(&feed)
        .unwrap();
    assert_eq!(recovered.stats.snapshot_offset, None);
    assert_eq!(recovered.stats.events_replayed, 2);
    let line = recovered.stats.to_string();
    assert!(line.contains("genesis"), "{line}");
    assert!(!line.contains('\n'));
}
