//! Journal writer/reader behavior: round trips, segment rolling,
//! compaction, cursor semantics, snapshot store basics.

use std::fs;
use std::path::PathBuf;

use arb_amm::fee::FeeRate;
use arb_amm::pool::PoolId;
use arb_amm::token::TokenId;
use arb_dexsim::events::Event;
use arb_engine::{OpportunityPipeline, ShardedRuntime};
use arb_journal::{JournalConfig, JournalCursor, JournalReader, JournalWriter, SnapshotStore};

/// A fresh, unique scratch directory (removed on drop).
struct Scratch(PathBuf);

impl Scratch {
    fn new(name: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("arbloops-journal-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("scratch dir");
        Scratch(dir)
    }

    fn path(&self) -> &PathBuf {
        &self.0
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn sync(pool: u32, a: u128, b: u128) -> Event {
    Event::Sync {
        pool: PoolId::new(pool),
        reserve_a: a,
        reserve_b: b,
    }
}

fn events(n: usize) -> Vec<Event> {
    (0..n)
        .map(|i| match i % 3 {
            0 => sync(i as u32, i as u128, (i + 1) as u128),
            1 => Event::Swap {
                pool: PoolId::new(i as u32),
                token_in: TokenId::new(i as u32),
                amount_in: u128::MAX - i as u128,
                amount_out: i as u128,
            },
            _ => Event::PoolCreated {
                pool: PoolId::new(i as u32),
                token_a: TokenId::new(i as u32),
                token_b: TokenId::new(i as u32 + 1),
                reserve_a: 1,
                reserve_b: 2,
                fee: FeeRate::UNISWAP_V2,
            },
        })
        .collect()
}

#[test]
fn write_reopen_read_round_trip() {
    let scratch = Scratch::new("round-trip");
    let batch = events(25);

    let mut writer = JournalWriter::open(scratch.path(), JournalConfig::default()).unwrap();
    assert_eq!(writer.next_offset(), 0);
    writer.append_batch(&batch[..10]);
    assert_eq!(writer.next_offset(), 10);
    assert_eq!(writer.durable_offset(), 0, "nothing durable pre-commit");
    assert_eq!(writer.commit().unwrap(), 10);
    writer.append_batch(&batch[10..]);
    writer.commit().unwrap();
    drop(writer);

    // Reopen both sides: the tail and every event survive.
    let writer = JournalWriter::open(scratch.path(), JournalConfig::default()).unwrap();
    assert_eq!(writer.durable_offset(), 25);
    let reader = JournalReader::open(scratch.path()).unwrap();
    assert_eq!(reader.tail_offset(), 25);
    assert_eq!(reader.read_from(0).unwrap(), batch);
    assert_eq!(reader.read_from(17).unwrap(), batch[17..]);
    assert_eq!(reader.read_from(25).unwrap(), vec![]);
    assert!(matches!(
        reader.read_from(26),
        Err(arb_journal::JournalError::OffsetPastTail {
            offset: 26,
            tail: 25
        })
    ));
}

#[test]
fn uncommitted_appends_do_not_survive_a_crash() {
    let scratch = Scratch::new("uncommitted");
    let batch = events(8);
    let mut writer = JournalWriter::open(scratch.path(), JournalConfig::default()).unwrap();
    writer.append_batch(&batch[..5]);
    writer.commit().unwrap();
    writer.append_batch(&batch[5..]); // never committed
    drop(writer); // 💥

    let reader = JournalReader::open(scratch.path()).unwrap();
    assert_eq!(reader.tail_offset(), 5);
    assert_eq!(reader.read_from(0).unwrap(), batch[..5]);
}

#[test]
fn segments_roll_and_cursors_drain() {
    let scratch = Scratch::new("rolling");
    let config = JournalConfig {
        segment_max_bytes: 128, // tiny: force many segments
        sync_on_commit: false,
    };
    let batch = events(40);
    let mut writer = JournalWriter::open(scratch.path(), config).unwrap();
    for event in &batch {
        writer.append(event);
        writer.commit().unwrap();
    }
    let segment_files = fs::read_dir(scratch.path())
        .unwrap()
        .filter(|e| {
            e.as_ref()
                .unwrap()
                .file_name()
                .to_string_lossy()
                .starts_with("segment-")
        })
        .count();
    assert!(segment_files > 2, "expected rolling, got {segment_files}");

    let reader = JournalReader::open(scratch.path()).unwrap();
    let mut cursor = JournalCursor::genesis();
    assert_eq!(reader.drain(&mut cursor).unwrap(), batch);
    assert_eq!(cursor.position(), 40);
    assert!(reader.drain(&mut cursor).unwrap().is_empty());

    let mut resumed = JournalCursor::at(33);
    assert_eq!(reader.drain(&mut resumed).unwrap(), batch[33..]);

    // Reopening mid-stream continues the same offset space.
    let mut writer = JournalWriter::open(scratch.path(), config).unwrap();
    assert_eq!(writer.append(&batch[0]), 40);
    writer.commit().unwrap();
    assert_eq!(
        JournalReader::open(scratch.path()).unwrap().tail_offset(),
        41
    );
}

#[test]
fn compaction_drops_fully_snapshotted_segments() {
    let scratch = Scratch::new("compaction");
    let config = JournalConfig {
        segment_max_bytes: 128,
        sync_on_commit: false,
    };
    let batch = events(60);
    let mut writer = JournalWriter::open(scratch.path(), config).unwrap();
    for event in &batch {
        writer.append(event);
        writer.commit().unwrap();
    }
    let removed = writer.compact_below(35).unwrap();
    assert!(removed > 0, "tiny segments must be compactable");

    let reader = JournalReader::open(scratch.path()).unwrap();
    assert_eq!(reader.tail_offset(), 60, "tail unaffected");
    let base = reader.base_offset();
    assert!(base > 0 && base <= 35, "kept the segment containing 35");
    assert_eq!(reader.read_from(35).unwrap(), batch[35..]);
    assert!(
        reader.read_from(0).is_err(),
        "compacted prefix is gone, not silently empty"
    );

    // The writer keeps appending over the compacted journal.
    assert_eq!(writer.append(&batch[0]), 60);
    writer.commit().unwrap();
    assert_eq!(
        JournalReader::open(scratch.path()).unwrap().tail_offset(),
        61
    );
}

#[test]
fn snapshot_store_lists_prunes_and_round_trips() {
    let scratch = Scratch::new("snapshots");
    let fee = FeeRate::UNISWAP_V2;
    let t = TokenId::new;
    let pools = vec![
        arb_amm::pool::Pool::new(t(0), t(1), 100.0, 200.0, fee).unwrap(),
        arb_amm::pool::Pool::new(t(1), t(2), 300.0, 200.0, fee).unwrap(),
        arb_amm::pool::Pool::new(t(2), t(0), 200.0, 400.0, fee).unwrap(),
    ];
    let runtime = ShardedRuntime::new(OpportunityPipeline::default(), pools, 2).unwrap();
    let checkpoint = runtime.checkpoint();

    let store = SnapshotStore::new(scratch.path()).unwrap();
    for offset in [3u64, 7, 11] {
        store.write(offset, &checkpoint).unwrap();
    }
    let listed: Vec<u64> = store.list().unwrap().into_iter().map(|(o, _)| o).collect();
    assert_eq!(listed, vec![3, 7, 11]);

    let (offset, loaded) = store.newest_valid(0, u64::MAX).unwrap().unwrap();
    assert_eq!(offset, 11);
    assert_eq!(loaded, checkpoint);

    // Restoring the loaded checkpoint yields a working runtime.
    assert!(ShardedRuntime::restore(OpportunityPipeline::default(), &loaded).is_ok());

    assert_eq!(store.prune(2).unwrap(), 1);
    let listed: Vec<u64> = store.list().unwrap().into_iter().map(|(o, _)| o).collect();
    assert_eq!(listed, vec![7, 11]);
}

// --- I/O fault shim ------------------------------------------------------

/// A scripted [`arb_journal::IoShim`]: plays back one verdict per commit
/// (in order), then proceeds normally.
#[derive(Debug, Default)]
struct ScriptedShim {
    write_script: Vec<Option<ScriptedFault>>,
    commits: usize,
    fail_next_sync: bool,
}

#[derive(Debug, Clone, Copy)]
enum ScriptedFault {
    Fail,
    Torn(usize),
    FsyncError,
}

impl arb_journal::IoShim for ScriptedShim {
    fn before_write(&mut self, bytes: usize) -> arb_journal::WriteVerdict {
        let fault = self.write_script.get(self.commits).copied().flatten();
        self.commits += 1;
        match fault {
            None => arb_journal::WriteVerdict::Proceed,
            Some(ScriptedFault::Fail) => {
                arb_journal::WriteVerdict::Fail(std::io::Error::other("scripted write error"))
            }
            Some(ScriptedFault::Torn(keep)) => arb_journal::WriteVerdict::Torn {
                keep: keep.min(bytes),
            },
            Some(ScriptedFault::FsyncError) => {
                self.fail_next_sync = true;
                arb_journal::WriteVerdict::Proceed
            }
        }
    }

    fn before_sync(&mut self) -> Option<std::io::Error> {
        self.fail_next_sync
            .then(|| std::io::Error::other("scripted fsync error"))
            .inspect(|_| self.fail_next_sync = false)
    }
}

#[test]
fn shimmed_write_error_keeps_pending_and_retries_cleanly() {
    let scratch = Scratch::new("shim-write-error");
    let mut writer = JournalWriter::open(scratch.path(), JournalConfig::default()).unwrap();
    writer.set_io_shim(Box::new(ScriptedShim {
        write_script: vec![Some(ScriptedFault::Fail)],
        ..ScriptedShim::default()
    }));

    writer.append_batch(&events(4));
    let err = writer.commit().unwrap_err();
    assert!(err.to_string().contains("scripted write error"));
    // The batch is retained for retry; nothing is durable yet.
    assert_eq!(writer.pending_events(), 4);
    assert_eq!(writer.durable_offset(), 0);
    // The next commit (script exhausted) lands the same batch.
    assert_eq!(writer.commit().unwrap(), 4);
    assert_eq!(writer.pending_events(), 0);

    drop(writer);
    let reader = JournalReader::open(scratch.path()).unwrap();
    assert_eq!(reader.read_from(0).unwrap(), events(4));
}

#[test]
fn torn_and_fsync_faults_roll_back_to_the_durable_boundary() {
    let scratch = Scratch::new("shim-torn");
    let mut writer = JournalWriter::open(scratch.path(), JournalConfig::default()).unwrap();
    writer.append_batch(&events(3));
    writer.commit().unwrap();

    writer.set_io_shim(Box::new(ScriptedShim {
        write_script: vec![
            Some(ScriptedFault::Torn(5)),
            Some(ScriptedFault::FsyncError),
        ],
        ..ScriptedShim::default()
    }));
    writer.append_batch(&events(2));
    assert!(writer.commit().unwrap_err().to_string().contains("torn"));
    // Rollback cut the segment back: a reopen (simulated crash) sees
    // exactly the previously durable prefix, no torn bytes.
    let reader = JournalReader::open(scratch.path()).unwrap();
    assert_eq!(reader.tail_offset(), 3);

    // Fsync failure behaves the same: written bytes are rolled back.
    assert!(writer.commit().unwrap_err().to_string().contains("fsync"));
    assert_eq!(writer.durable_offset(), 3);
    // Third try has no scripted fault left and lands everything.
    assert_eq!(writer.commit().unwrap(), 5);
    drop(writer);
    let reader = JournalReader::open(scratch.path()).unwrap();
    assert_eq!(reader.tail_offset(), 5);
}
