//! Synthetic Uniswap V2 snapshots calibrated to the paper's dataset.
//!
//! The paper's empirical section uses on-chain Uniswap V2 state from
//! September 1st, 2023: after keeping pools with more than $30,000 TVL and
//! token reserves above 100 units, the token graph has **51 nodes and 208
//! edges**, of which 123 length-3 loops admit arbitrage. That dataset is
//! not available offline, so this crate generates synthetic snapshots with
//! the same *structure*:
//!
//! * token USD prices are log-normal with pinned WETH/USDC-like hubs;
//! * pool reserves are value-balanced against CEX prices times a
//!   controlled log-normal mispricing factor (the arbitrage source);
//! * pool TVLs are log-normal with hub-biased preferential attachment;
//! * the paper's two filters are applied by [`filters::apply_filters`],
//!   and generation continues until exactly the target number of pools
//!   *survives* the filters (so the filters do real work).
//!
//! Everything is seed-deterministic. See `DESIGN.md` §3 for why this
//! substitution preserves the paper's findings.
//!
//! # Quickstart
//!
//! ```
//! use arb_snapshot::{Generator, SnapshotConfig};
//!
//! let snapshot = Generator::new(SnapshotConfig::default()).generate().unwrap();
//! assert_eq!(snapshot.token_count(), 51);
//! let filtered = snapshot.filtered(&SnapshotConfig::default());
//! assert_eq!(filtered.pools().len(), 208);
//! ```

pub mod config;
pub mod csv;
pub mod error;
pub mod filters;
pub mod generator;
pub mod snapshot;

pub use config::SnapshotConfig;
pub use error::SnapshotError;
pub use generator::Generator;
pub use snapshot::{Snapshot, TokenMeta};
