//! Error type for snapshot generation and persistence.

use std::error::Error;
use std::fmt;

/// Errors from snapshot generation, filtering, and CSV persistence.
#[derive(Debug)]
#[non_exhaustive]
pub enum SnapshotError {
    /// Configuration failed validation.
    InvalidConfig(&'static str),
    /// Generation could not reach the pool target (filters too strict for
    /// the distribution parameters).
    GenerationStalled {
        /// Pools that passed filters when generation gave up.
        reached: usize,
        /// The configured target.
        target: usize,
    },
    /// Pool construction failed.
    Amm(arb_amm::AmmError),
    /// Filesystem I/O failure.
    Io(std::io::Error),
    /// A CSV record could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        reason: String,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::InvalidConfig(msg) => write!(f, "invalid config: {msg}"),
            SnapshotError::GenerationStalled { reached, target } => write!(
                f,
                "generation stalled at {reached}/{target} pools passing filters"
            ),
            SnapshotError::Amm(e) => write!(f, "amm error: {e}"),
            SnapshotError::Io(e) => write!(f, "io error: {e}"),
            SnapshotError::Parse { line, reason } => {
                write!(f, "csv parse error at line {line}: {reason}")
            }
        }
    }
}

impl Error for SnapshotError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SnapshotError::Amm(e) => Some(e),
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<arb_amm::AmmError> for SnapshotError {
    fn from(e: arb_amm::AmmError) -> Self {
        SnapshotError::Amm(e)
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(SnapshotError::InvalidConfig("x").to_string().contains("x"));
        let e = SnapshotError::GenerationStalled {
            reached: 5,
            target: 10,
        };
        assert!(e.to_string().contains("5/10"));
        let e = SnapshotError::Parse {
            line: 3,
            reason: "bad float".into(),
        };
        assert!(e.to_string().contains("line 3"));
    }
}
