//! CSV persistence for snapshots.
//!
//! Two files represent a snapshot on disk:
//!
//! * `tokens.csv` — `index,symbol,decimals,usd_price`
//! * `pools.csv`  — `token_a,token_b,reserve_a,reserve_b,fee_ppm`
//!
//! The format is deliberately trivial (no quoting — symbols are
//! alphanumeric by construction) so no CSV dependency is needed; floats are
//! round-tripped through Rust's shortest-exact formatting.

use std::fmt::Write as _;
use std::path::Path;

use arb_amm::fee::FeeRate;
use arb_amm::pool::Pool;
use arb_amm::token::TokenId;

use crate::error::SnapshotError;
use crate::snapshot::{Snapshot, TokenMeta};

/// Serializes the token table to CSV.
pub fn tokens_to_csv(snapshot: &Snapshot) -> String {
    let mut out = String::from("index,symbol,decimals,usd_price\n");
    for (i, t) in snapshot.tokens().iter().enumerate() {
        writeln!(out, "{i},{},{},{}", t.symbol, t.decimals, t.usd_price)
            .expect("string write cannot fail");
    }
    out
}

/// Serializes the pool table to CSV.
pub fn pools_to_csv(snapshot: &Snapshot) -> String {
    let mut out = String::from("token_a,token_b,reserve_a,reserve_b,fee_ppm\n");
    for p in snapshot.pools() {
        writeln!(
            out,
            "{},{},{},{},{}",
            p.token_a().index(),
            p.token_b().index(),
            p.reserve_a(),
            p.reserve_b(),
            p.fee().ppm()
        )
        .expect("string write cannot fail");
    }
    out
}

/// Parses a token table CSV (inverse of [`tokens_to_csv`]).
///
/// # Errors
///
/// Returns [`SnapshotError::Parse`] with a 1-based line number on any
/// malformed record.
pub fn tokens_from_csv(text: &str) -> Result<Vec<TokenMeta>, SnapshotError> {
    let mut tokens = Vec::new();
    for (lineno, line) in text.lines().enumerate().skip(1) {
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 4 {
            return Err(parse_err(lineno + 1, "expected 4 fields"));
        }
        let index: usize = fields[0]
            .parse()
            .map_err(|_| parse_err(lineno + 1, "bad index"))?;
        if index != tokens.len() {
            return Err(parse_err(lineno + 1, "indices must be dense and ordered"));
        }
        tokens.push(TokenMeta {
            symbol: fields[1].to_owned(),
            decimals: fields[2]
                .parse()
                .map_err(|_| parse_err(lineno + 1, "bad decimals"))?,
            usd_price: fields[3]
                .parse()
                .map_err(|_| parse_err(lineno + 1, "bad price"))?,
        });
    }
    Ok(tokens)
}

/// Parses a pool table CSV (inverse of [`pools_to_csv`]).
///
/// # Errors
///
/// Returns [`SnapshotError::Parse`] on malformed records and forwards
/// pool-validation failures as [`SnapshotError::Amm`].
pub fn pools_from_csv(text: &str) -> Result<Vec<Pool>, SnapshotError> {
    let mut pools = Vec::new();
    for (lineno, line) in text.lines().enumerate().skip(1) {
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 5 {
            return Err(parse_err(lineno + 1, "expected 5 fields"));
        }
        let a: u32 = fields[0]
            .parse()
            .map_err(|_| parse_err(lineno + 1, "bad token_a"))?;
        let b: u32 = fields[1]
            .parse()
            .map_err(|_| parse_err(lineno + 1, "bad token_b"))?;
        let ra: f64 = fields[2]
            .parse()
            .map_err(|_| parse_err(lineno + 1, "bad reserve_a"))?;
        let rb: f64 = fields[3]
            .parse()
            .map_err(|_| parse_err(lineno + 1, "bad reserve_b"))?;
        let fee_ppm: u32 = fields[4]
            .parse()
            .map_err(|_| parse_err(lineno + 1, "bad fee_ppm"))?;
        let fee = FeeRate::from_ppm(fee_ppm)?;
        pools.push(Pool::new(TokenId::new(a), TokenId::new(b), ra, rb, fee)?);
    }
    Ok(pools)
}

/// Writes `tokens.csv` and `pools.csv` into `dir` (created if missing).
///
/// # Errors
///
/// Forwards filesystem errors.
pub fn save(snapshot: &Snapshot, dir: &Path) -> Result<(), SnapshotError> {
    std::fs::create_dir_all(dir)?;
    std::fs::write(dir.join("tokens.csv"), tokens_to_csv(snapshot))?;
    std::fs::write(dir.join("pools.csv"), pools_to_csv(snapshot))?;
    Ok(())
}

/// Loads a snapshot previously written by [`save`].
///
/// # Errors
///
/// Forwards filesystem and parse errors.
pub fn load(dir: &Path) -> Result<Snapshot, SnapshotError> {
    let tokens = tokens_from_csv(&std::fs::read_to_string(dir.join("tokens.csv"))?)?;
    let pools = pools_from_csv(&std::fs::read_to_string(dir.join("pools.csv"))?)?;
    Ok(Snapshot::new(tokens, pools))
}

fn parse_err(line: usize, reason: &str) -> SnapshotError {
    SnapshotError::Parse {
        line,
        reason: reason.to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SnapshotConfig;
    use crate::generator::Generator;

    #[test]
    fn round_trip_through_strings() {
        let cfg = SnapshotConfig {
            num_tokens: 8,
            num_pools: 12,
            ..SnapshotConfig::default()
        };
        let snapshot = Generator::new(cfg).generate().unwrap();
        let tokens = tokens_from_csv(&tokens_to_csv(&snapshot)).unwrap();
        let pools = pools_from_csv(&pools_to_csv(&snapshot)).unwrap();
        let rebuilt = Snapshot::new(tokens, pools);
        assert_eq!(&rebuilt, &snapshot, "exact float round-trip");
    }

    #[test]
    fn round_trip_through_files() {
        let dir = std::env::temp_dir().join(format!("arb_snapshot_test_{}", std::process::id()));
        let cfg = SnapshotConfig {
            num_tokens: 5,
            num_pools: 8,
            ..SnapshotConfig::default()
        };
        let snapshot = Generator::new(cfg).generate().unwrap();
        save(&snapshot, &dir).unwrap();
        let loaded = load(&dir).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(loaded, snapshot);
    }

    #[test]
    fn malformed_rows_report_line_numbers() {
        let bad = "index,symbol,decimals,usd_price\n0,WETH,18,2000\nnonsense\n";
        match tokens_from_csv(bad) {
            Err(SnapshotError::Parse { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected parse error, got {other:?}"),
        }
        let bad_pool = "token_a,token_b,reserve_a,reserve_b,fee_ppm\n0,0,1,1,3000\n";
        assert!(matches!(
            pools_from_csv(bad_pool),
            Err(SnapshotError::Amm(_))
        ));
    }

    #[test]
    fn empty_lines_are_skipped() {
        let text = "index,symbol,decimals,usd_price\n0,A,18,1.5\n\n1,B,6,2.5\n";
        let tokens = tokens_from_csv(text).unwrap();
        assert_eq!(tokens.len(), 2);
        assert_eq!(tokens[1].symbol, "B");
    }
}
