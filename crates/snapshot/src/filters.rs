//! The paper's pool-quality filters.
//!
//! "We chose those liquidity pools that have more than thirty thousand
//! dollars TVL and where the number of each token is larger than one
//! hundred." Both thresholds are applied against the snapshot's CEX prices.

use crate::snapshot::Snapshot;

/// Returns a snapshot containing only pools that satisfy both filters.
/// The token table is preserved unchanged (token ids stay stable).
pub fn apply_filters(snapshot: &Snapshot, min_tvl_usd: f64, min_reserve: f64) -> Snapshot {
    let pools = snapshot
        .pools()
        .iter()
        .filter(|pool| {
            let tvl_ok = snapshot.pool_tvl(pool).is_some_and(|tvl| tvl > min_tvl_usd);
            let reserves_ok = pool.reserve_a() > min_reserve && pool.reserve_b() > min_reserve;
            tvl_ok && reserves_ok
        })
        .copied()
        .collect();
    Snapshot::new(snapshot.tokens().to_vec(), pools)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::TokenMeta;
    use arb_amm::fee::FeeRate;
    use arb_amm::pool::Pool;
    use arb_amm::token::TokenId;

    fn t(i: u32) -> TokenId {
        TokenId::new(i)
    }

    fn snapshot_with(pools: Vec<Pool>) -> Snapshot {
        let tokens = vec![
            TokenMeta {
                symbol: "A".into(),
                decimals: 18,
                usd_price: 100.0,
            },
            TokenMeta {
                symbol: "B".into(),
                decimals: 18,
                usd_price: 1.0,
            },
        ];
        Snapshot::new(tokens, pools)
    }

    #[test]
    fn keeps_qualifying_pool() {
        let fee = FeeRate::UNISWAP_V2;
        // TVL = 500·100 + 50_000·1 = 100_000 > 30_000; reserves > 100.
        let s = snapshot_with(vec![Pool::new(t(0), t(1), 500.0, 50_000.0, fee).unwrap()]);
        assert_eq!(apply_filters(&s, 30_000.0, 100.0).pools().len(), 1);
    }

    #[test]
    fn drops_low_tvl_pool() {
        let fee = FeeRate::UNISWAP_V2;
        // TVL = 101·100 + 150·1 ≈ 10_250 < 30_000.
        let s = snapshot_with(vec![Pool::new(t(0), t(1), 101.0, 150.0, fee).unwrap()]);
        assert!(apply_filters(&s, 30_000.0, 100.0).pools().is_empty());
    }

    #[test]
    fn drops_thin_reserve_pool_despite_tvl() {
        let fee = FeeRate::UNISWAP_V2;
        // Reserve A = 90 < 100 even though TVL = 90·100 + 40_000 = 49_000.
        let s = snapshot_with(vec![Pool::new(t(0), t(1), 90.0, 40_000.0, fee).unwrap()]);
        assert!(apply_filters(&s, 30_000.0, 100.0).pools().is_empty());
    }

    #[test]
    fn filter_is_monotone_in_thresholds() {
        let fee = FeeRate::UNISWAP_V2;
        let pools = vec![
            Pool::new(t(0), t(1), 500.0, 50_000.0, fee).unwrap(),
            Pool::new(t(0), t(1), 150.0, 15_000.0, fee).unwrap(),
            Pool::new(t(0), t(1), 110.0, 11_000.0, fee).unwrap(),
        ];
        let s = snapshot_with(pools);
        let loose = apply_filters(&s, 10_000.0, 100.0).pools().len();
        let tight = apply_filters(&s, 30_000.0, 100.0).pools().len();
        let tighter = apply_filters(&s, 30_000.0, 200.0).pools().len();
        assert!(loose >= tight && tight >= tighter);
    }

    #[test]
    fn token_table_preserved() {
        let fee = FeeRate::UNISWAP_V2;
        let s = snapshot_with(vec![Pool::new(t(0), t(1), 1.0, 1.0, fee).unwrap()]);
        let f = apply_filters(&s, 30_000.0, 100.0);
        assert_eq!(f.token_count(), 2, "token ids must remain stable");
    }
}
