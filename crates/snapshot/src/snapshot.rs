//! The snapshot data model.

use arb_amm::pool::Pool;
use arb_amm::token::TokenId;

use crate::config::SnapshotConfig;
use crate::filters;

/// Token metadata carried by a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct TokenMeta {
    /// Ticker symbol.
    pub symbol: String,
    /// ERC-20 style decimals.
    pub decimals: u8,
    /// CEX (USD) price at snapshot time.
    pub usd_price: f64,
}

/// A frozen view of DEX state + CEX prices at one moment — the unit of
/// input for the empirical pipeline (paper §VI).
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    tokens: Vec<TokenMeta>,
    pools: Vec<Pool>,
}

impl Snapshot {
    /// Assembles a snapshot. Token ids used by `pools` index into
    /// `tokens`.
    pub fn new(tokens: Vec<TokenMeta>, pools: Vec<Pool>) -> Self {
        Snapshot { tokens, pools }
    }

    /// Number of tokens.
    pub fn token_count(&self) -> usize {
        self.tokens.len()
    }

    /// Token metadata, indexable by [`TokenId::index`].
    pub fn tokens(&self) -> &[TokenMeta] {
        &self.tokens
    }

    /// The pools.
    pub fn pools(&self) -> &[Pool] {
        &self.pools
    }

    /// CEX USD price of a token (None for out-of-range ids).
    pub fn usd_price(&self, token: TokenId) -> Option<f64> {
        self.tokens.get(token.index()).map(|t| t.usd_price)
    }

    /// All prices as a dense vector aligned with token indices.
    pub fn price_vector(&self) -> Vec<f64> {
        self.tokens.iter().map(|t| t.usd_price).collect()
    }

    /// TVL of a pool under this snapshot's CEX prices (None when a token
    /// id is out of range).
    pub fn pool_tvl(&self, pool: &Pool) -> Option<f64> {
        let pa = self.usd_price(pool.token_a())?;
        let pb = self.usd_price(pool.token_b())?;
        pool.tvl(pa, pb).ok()
    }

    /// Applies the paper's filters (TVL and per-reserve thresholds from
    /// `config`), returning a snapshot with the surviving pools and the
    /// same token table.
    pub fn filtered(&self, config: &SnapshotConfig) -> Snapshot {
        filters::apply_filters(self, config.min_tvl_usd, config.min_reserve)
    }

    /// Total TVL across pools (ignoring pools with unknown tokens).
    pub fn total_tvl(&self) -> f64 {
        self.pools.iter().filter_map(|p| self.pool_tvl(p)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arb_amm::fee::FeeRate;

    fn t(i: u32) -> TokenId {
        TokenId::new(i)
    }

    fn sample() -> Snapshot {
        let tokens = vec![
            TokenMeta {
                symbol: "WETH".into(),
                decimals: 18,
                usd_price: 2000.0,
            },
            TokenMeta {
                symbol: "USDC".into(),
                decimals: 6,
                usd_price: 1.0,
            },
        ];
        let pools = vec![Pool::new(t(0), t(1), 100.0, 200_000.0, FeeRate::UNISWAP_V2).unwrap()];
        Snapshot::new(tokens, pools)
    }

    #[test]
    fn accessors() {
        let s = sample();
        assert_eq!(s.token_count(), 2);
        assert_eq!(s.usd_price(t(0)), Some(2000.0));
        assert_eq!(s.usd_price(t(5)), None);
        assert_eq!(s.price_vector(), vec![2000.0, 1.0]);
    }

    #[test]
    fn tvl_computation() {
        let s = sample();
        let tvl = s.pool_tvl(&s.pools()[0]).unwrap();
        assert!((tvl - 400_000.0).abs() < 1e-6);
        assert!((s.total_tvl() - 400_000.0).abs() < 1e-6);
    }
}
