//! Snapshot generation.
//!
//! The generator builds a market whose *filtered* pool census matches the
//! configured targets exactly:
//!
//! 1. Token prices: two pinned hubs (a $2,000 WETH-like and a $1
//!    USDC-like), the rest log-normal.
//! 2. A hub-biased spanning tree of filter-passing pools guarantees the
//!    filtered graph stays connected over all tokens.
//! 3. Additional pools are drawn (hub-biased endpoints, log-normal TVL,
//!    log-normal mispricing) until exactly `num_pools` pass the filters;
//!    sub-threshold draws are kept in the raw snapshot so filtering is a
//!    real operation, mirroring the paper's data pipeline.
//!
//! Pool reserves are *value-balanced*: each side holds `TVL/2` dollars at
//! CEX prices, then the B side is multiplied by the mispricing factor
//! `exp(σ·z)`. With `σ = 0` every pool's relative price agrees with the
//! CEX ratio and no loop beats the 0.3% fee; raising `σ` injects the
//! price discrepancies the paper observes on mainnet.

use arb_amm::pool::Pool;
use arb_amm::token::TokenId;
use arb_numerics::stats::box_muller;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::config::SnapshotConfig;
use crate::error::SnapshotError;
use crate::snapshot::{Snapshot, TokenMeta};

/// Number of pinned hub tokens (WETH-like and USDC-like).
const HUB_COUNT: usize = 2;

/// Safety multiple of the pool target before generation reports a stall.
const MAX_DRAW_FACTOR: usize = 20;

/// The snapshot generator. One generator produces one snapshot; it is
/// consumed by [`Generator::generate`] conceptually but kept reusable for
/// sweeps (each call re-seeds from the config).
#[derive(Debug, Clone)]
pub struct Generator {
    config: SnapshotConfig,
}

impl Generator {
    /// Creates a generator from a config.
    pub fn new(config: SnapshotConfig) -> Self {
        Generator { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SnapshotConfig {
        &self.config
    }

    /// Generates a snapshot.
    ///
    /// # Errors
    ///
    /// * [`SnapshotError::InvalidConfig`] for inconsistent parameters.
    /// * [`SnapshotError::GenerationStalled`] if the filter thresholds are
    ///   unreachable for the configured distributions.
    pub fn generate(&self) -> Result<Snapshot, SnapshotError> {
        let cfg = &self.config;
        cfg.validate().map_err(SnapshotError::InvalidConfig)?;
        let mut rng = StdRng::seed_from_u64(cfg.seed);

        let tokens = self.draw_tokens(&mut rng);
        let prices: Vec<f64> = tokens.iter().map(|t| t.usd_price).collect();

        let mut pools: Vec<Pool> = Vec::new();
        let mut passing = 0usize;

        // Spanning tree: token i (≥1) attaches to a hub-biased earlier
        // token, with parameters forced above the filter thresholds.
        for i in 1..cfg.num_tokens {
            let partner = self.pick_partner(&mut rng, i);
            let pool = self.draw_pool(&mut rng, i, partner, &prices, true)?;
            debug_assert!(self.passes_filters(&pool, &prices));
            pools.push(pool);
            passing += 1;
        }

        // Fill with random pools until the filtered census hits the target.
        let max_draws = cfg.num_pools * MAX_DRAW_FACTOR;
        while passing < cfg.num_pools {
            if pools.len() > max_draws {
                return Err(SnapshotError::GenerationStalled {
                    reached: passing,
                    target: cfg.num_pools,
                });
            }
            let a = self.pick_endpoint(&mut rng);
            let mut b = self.pick_endpoint(&mut rng);
            while b == a {
                b = self.pick_endpoint(&mut rng);
            }
            let pool = self.draw_pool(&mut rng, a, b, &prices, false)?;
            if self.passes_filters(&pool, &prices) {
                passing += 1;
            }
            pools.push(pool);
        }

        Ok(Snapshot::new(tokens, pools))
    }

    fn draw_tokens(&self, rng: &mut StdRng) -> Vec<TokenMeta> {
        let cfg = &self.config;
        let mut tokens = Vec::with_capacity(cfg.num_tokens);
        tokens.push(TokenMeta {
            symbol: "WETH".into(),
            decimals: 18,
            usd_price: 2_000.0,
        });
        tokens.push(TokenMeta {
            symbol: "USDC".into(),
            decimals: 6,
            usd_price: 1.0,
        });
        for i in HUB_COUNT..cfg.num_tokens {
            let (z, _) = self.normal(rng);
            tokens.push(TokenMeta {
                symbol: format!("TKN{i}"),
                decimals: 18,
                usd_price: (cfg.price_log_mean + cfg.price_log_std * z).exp(),
            });
        }
        tokens
    }

    /// Hub-biased endpoint selection over all tokens.
    fn pick_endpoint(&self, rng: &mut StdRng) -> usize {
        if rng.gen_bool(self.config.hub_bias) {
            rng.gen_range(0..HUB_COUNT)
        } else {
            rng.gen_range(0..self.config.num_tokens)
        }
    }

    /// Hub-biased partner among tokens `< i` (for the spanning tree).
    fn pick_partner(&self, rng: &mut StdRng, i: usize) -> usize {
        if i > HUB_COUNT && rng.gen_bool(self.config.hub_bias) {
            rng.gen_range(0..HUB_COUNT)
        } else {
            rng.gen_range(0..i)
        }
    }

    /// Draws one pool between tokens `a` and `b`. With `force_pass` the
    /// TVL is lifted until both filters hold (used for the spanning tree).
    fn draw_pool(
        &self,
        rng: &mut StdRng,
        a: usize,
        b: usize,
        prices: &[f64],
        force_pass: bool,
    ) -> Result<Pool, SnapshotError> {
        let cfg = &self.config;
        let (z_tvl, z_mis) = self.normal(rng);
        let mut tvl = (cfg.tvl_log_mean + cfg.tvl_log_std * z_tvl).exp();
        if force_pass {
            // Lift above both thresholds: TVL and the per-side reserve
            // floor (each side holds TVL/2 dollars ⇒ reserve = TVL/(2·P)).
            let reserve_floor = 2.0 * (cfg.min_reserve + 1.0) * prices[a].max(prices[b]);
            tvl = tvl.max(cfg.min_tvl_usd * 1.5).max(reserve_floor * 1.1);
        }
        let mispricing = (cfg.mispricing_std * z_mis).exp();
        let reserve_a = tvl / (2.0 * prices[a]);
        let reserve_b = tvl / (2.0 * prices[b]) * mispricing;
        Ok(Pool::new(
            TokenId::new(a as u32),
            TokenId::new(b as u32),
            reserve_a,
            reserve_b,
            cfg.fee,
        )?)
    }

    fn passes_filters(&self, pool: &Pool, prices: &[f64]) -> bool {
        let cfg = &self.config;
        let tvl = pool.reserve_a() * prices[pool.token_a().index()]
            + pool.reserve_b() * prices[pool.token_b().index()];
        tvl > cfg.min_tvl_usd
            && pool.reserve_a() > cfg.min_reserve
            && pool.reserve_b() > cfg.min_reserve
    }

    fn normal(&self, rng: &mut StdRng) -> (f64, f64) {
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..=1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        box_muller(u1, u2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_hits_paper_census() {
        let snapshot = Generator::new(SnapshotConfig::default())
            .generate()
            .unwrap();
        assert_eq!(snapshot.token_count(), 51);
        let filtered = snapshot.filtered(&SnapshotConfig::default());
        assert_eq!(filtered.pools().len(), 208, "filtered pool census");
        // The raw snapshot carries extra sub-threshold pools.
        assert!(snapshot.pools().len() >= 208);
    }

    #[test]
    fn deterministic_by_seed() {
        let a = Generator::new(SnapshotConfig::default())
            .generate()
            .unwrap();
        let b = Generator::new(SnapshotConfig::default())
            .generate()
            .unwrap();
        assert_eq!(a, b);
        let other = SnapshotConfig {
            seed: SnapshotConfig::default().seed + 1,
            ..SnapshotConfig::default()
        };
        let c = Generator::new(other).generate().unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn filtered_graph_stays_connected() {
        let cfg = SnapshotConfig::default();
        let filtered = Generator::new(cfg).generate().unwrap().filtered(&cfg);
        // Union-find over pools.
        let n = filtered.token_count();
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for pool in filtered.pools() {
            let ra = find(&mut parent, pool.token_a().index());
            let rb = find(&mut parent, pool.token_b().index());
            parent[ra] = rb;
        }
        let root = find(&mut parent, 0);
        for i in 1..n {
            assert_eq!(find(&mut parent, i), root, "token {i} disconnected");
        }
    }

    #[test]
    fn zero_mispricing_balances_pools() {
        let cfg = SnapshotConfig {
            mispricing_std: 0.0,
            ..SnapshotConfig::default()
        };
        let snapshot = Generator::new(cfg).generate().unwrap();
        for pool in snapshot.pools() {
            let pa = snapshot.usd_price(pool.token_a()).unwrap();
            let pb = snapshot.usd_price(pool.token_b()).unwrap();
            let value_ratio = (pool.reserve_a() * pa) / (pool.reserve_b() * pb);
            assert!(
                (value_ratio - 1.0).abs() < 1e-9,
                "pool should be value-balanced, ratio {value_ratio}"
            );
        }
    }

    #[test]
    fn small_config_generates() {
        let cfg = SnapshotConfig {
            num_tokens: 5,
            num_pools: 8,
            ..SnapshotConfig::default()
        };
        let snapshot = Generator::new(cfg).generate().unwrap();
        assert_eq!(snapshot.token_count(), 5);
        assert_eq!(snapshot.filtered(&cfg).pools().len(), 8);
    }

    #[test]
    fn invalid_config_rejected() {
        let cfg = SnapshotConfig {
            num_tokens: 1,
            ..SnapshotConfig::default()
        };
        assert!(matches!(
            Generator::new(cfg).generate(),
            Err(SnapshotError::InvalidConfig(_))
        ));
    }
}
