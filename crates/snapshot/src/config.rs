//! Snapshot generation parameters.

use arb_amm::fee::FeeRate;

/// Parameters controlling synthetic snapshot generation.
///
/// Defaults are calibrated so the *filtered* snapshot reproduces the
/// paper's census: 51 tokens, 208 pools, and an arbitrage-triangle count
/// of the same order as the paper's 123.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SnapshotConfig {
    /// RNG seed; equal seeds give identical snapshots.
    pub seed: u64,
    /// Number of tokens (paper: 51).
    pub num_tokens: usize,
    /// Target number of pools that survive the filters (paper: 208).
    pub num_pools: usize,
    /// Mean of `ln(price)` for non-hub tokens.
    pub price_log_mean: f64,
    /// Std of `ln(price)` for non-hub tokens.
    pub price_log_std: f64,
    /// Mean of `ln(TVL)` in USD (default ≈ ln 150_000).
    pub tvl_log_mean: f64,
    /// Std of `ln(TVL)`.
    pub tvl_log_std: f64,
    /// Std of the log-normal pool mispricing factor (the arbitrage source;
    /// 0 ⇒ every pool agrees exactly with CEX prices, no arbitrage after
    /// fees).
    pub mispricing_std: f64,
    /// Probability that a pool endpoint is drawn from the hub tokens.
    pub hub_bias: f64,
    /// Pool fee (paper: Uniswap V2's 0.3%).
    pub fee: FeeRate,
    /// TVL filter threshold in USD (paper: $30,000).
    pub min_tvl_usd: f64,
    /// Per-token reserve filter threshold in units (paper: 100).
    pub min_reserve: f64,
}

impl Default for SnapshotConfig {
    fn default() -> Self {
        SnapshotConfig {
            seed: 20230901, // the paper's snapshot date
            num_tokens: 51,
            num_pools: 208,
            price_log_mean: 0.0,
            price_log_std: 2.2,
            tvl_log_mean: 150_000f64.ln(),
            tvl_log_std: 1.0,
            // Calibrated so the default filtered snapshot yields ~127
            // length-3 arbitrage loops, matching the paper's census of 123
            // (the 0.3% fee × 3 hops sets the profitability hurdle; ~0.6%
            // per-pool mispricing puts ~20% of directed triangles above it).
            mispricing_std: 0.006,
            hub_bias: 0.35,
            fee: FeeRate::UNISWAP_V2,
            min_tvl_usd: 30_000.0,
            min_reserve: 100.0,
        }
    }
}

impl SnapshotConfig {
    /// Validates parameter sanity.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated requirement.
    pub fn validate(&self) -> Result<(), &'static str> {
        if self.num_tokens < 3 {
            return Err("need at least 3 tokens to form loops");
        }
        if self.num_pools < self.num_tokens - 1 {
            return Err("need at least a spanning tree of pools");
        }
        if !(self.price_log_std >= 0.0 && self.price_log_std.is_finite()) {
            return Err("price_log_std must be non-negative");
        }
        if !(self.tvl_log_std >= 0.0 && self.tvl_log_std.is_finite()) {
            return Err("tvl_log_std must be non-negative");
        }
        if !(self.mispricing_std >= 0.0 && self.mispricing_std.is_finite()) {
            return Err("mispricing_std must be non-negative");
        }
        if !(0.0..=1.0).contains(&self.hub_bias) {
            return Err("hub_bias must be in [0, 1]");
        }
        if !(self.min_tvl_usd >= 0.0 && self.min_reserve >= 0.0) {
            return Err("filters must be non-negative");
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_paper_calibrated() {
        let c = SnapshotConfig::default();
        assert_eq!(c.num_tokens, 51);
        assert_eq!(c.num_pools, 208);
        assert_eq!(c.min_tvl_usd, 30_000.0);
        assert_eq!(c.min_reserve, 100.0);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_configs() {
        let cases = [
            SnapshotConfig {
                num_tokens: 2,
                ..SnapshotConfig::default()
            },
            SnapshotConfig {
                num_pools: 10,
                ..SnapshotConfig::default()
            },
            SnapshotConfig {
                hub_bias: 1.5,
                ..SnapshotConfig::default()
            },
            SnapshotConfig {
                mispricing_std: f64::NAN,
                ..SnapshotConfig::default()
            },
        ];
        for c in cases {
            assert!(c.validate().is_err(), "{c:?}");
        }
    }
}
