//! **arbloops** — profit maximization in AMM arbitrage loops.
//!
//! A from-scratch Rust reproduction of *"Profit Maximization In Arbitrage
//! Loops"* (Zhang et al., ICDCS 2024): given a cyclic arbitrage
//! opportunity across Uniswap-V2-style constant-product pools and CEX
//! (USD) token prices, how much can you extract, and with which strategy?
//!
//! The workspace implements the paper's contribution **and every substrate
//! it runs on**:
//!
//! | Facade module | Crate | What it is |
//! |---|---|---|
//! | [`amm`] | `arb-amm` | CPMM math: float, exact integer, Möbius chains |
//! | [`numerics`] | `arb-numerics` | scalar optimizers, dense linalg, barrier IPM |
//! | [`graph`] | `arb-graph` | token graph, cycle enumeration, BFM, Johnson |
//! | [`cex`] | `arb-cex` | order-book CEX simulation + price aggregation |
//! | [`dexsim`] | `arb-dexsim` | chain simulator: blocks, flash bundles, agents |
//! | [`snapshot`] | `arb-snapshot` | paper-calibrated synthetic Uniswap snapshots |
//! | [`convex`] | `arb-convex` | the eq. 8 convex program and its solvers |
//! | [`strategies`] | `arb-core` | Traditional, MaxPrice, MaxMax, ConvexOpt |
//! | [`engine`] | `arb-engine` | discovery → evaluation → ranking pipeline, streaming + sharded runtimes |
//! | [`journal`] | `arb-journal` | durable event journal, engine snapshots, crash recovery |
//! | [`ingest`] | `arb-ingest` | staged ingestion front-end: coalescing, multiplexing, backpressure |
//! | [`workloads`] | `arb-workloads` | seeded deterministic scenario catalog (workload generator) |
//! | [`serve`] | `arb-serve` | lock-free ranked-snapshot serving: wait-free queries, delta streams, admission control |
//! | [`chaos`] | `arb-chaos` | deterministic fault injection + chaos-soak reconvergence harness |
//! | [`bot`] | `arb-bot` | engine-driven flash-execute bot + market sim |
//!
//! # The paper's §V example, in six lines
//!
//! ```
//! use arbloops::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let fee = FeeRate::UNISWAP_V2;
//! let loop_ = ArbLoop::new(
//!     vec![
//!         SwapCurve::new(100.0, 200.0, fee)?,   // X → Y
//!         SwapCurve::new(300.0, 200.0, fee)?,   // Y → Z
//!         SwapCurve::new(200.0, 400.0, fee)?,   // Z → X
//!     ],
//!     vec![TokenId::new(0), TokenId::new(1), TokenId::new(2)],
//! )?;
//! let prices = [2.0, 10.2, 20.0];
//! let mm = maxmax::evaluate(&loop_, &prices)?;          // $205.6
//! let cv = convexopt::evaluate(&loop_, &prices)?;       // $206.1
//! assert!(cv.monetized >= mm.best.monetized);
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and `crates/bench`
//! for the binaries that regenerate every figure in the paper.

pub use arb_amm as amm;
pub use arb_bot as bot;
pub use arb_cex as cex;
pub use arb_chaos as chaos;
pub use arb_convex as convex;
pub use arb_core as strategies;
pub use arb_dexsim as dexsim;
pub use arb_engine as engine;
pub use arb_graph as graph;
pub use arb_ingest as ingest;
pub use arb_journal as journal;
pub use arb_numerics as numerics;
pub use arb_obs as obs;
pub use arb_serve as serve;
pub use arb_snapshot as snapshot;
pub use arb_workloads as workloads;

/// The most common imports in one place.
pub mod prelude {
    pub use arb_amm::{
        curve::SwapCurve, exact::RawPool, fee::FeeRate, mobius::Mobius, pool::Pool, pool::PoolId,
        token::TokenId, token::TokenRegistry,
    };
    pub use arb_bot::{
        sim::{MarketSim, MarketSimConfig},
        ArbBot, BotConfig, IngestBot, JournalSettings, JournaledBot, ObsConfig, ScanMode,
        StrategyChoice, SupervisedBot,
    };
    pub use arb_cex::feed::{PriceFeed, PriceTable};
    pub use arb_chaos::{
        run_soak, standard_plan, ChaosError, ChaosInjector, ChaosIo, ChaosTickHook, FaultKind,
        FaultPlan, FaultWindow, InjectedFault, SoakConfig, SoakOutcome, SourceChaos,
    };
    pub use arb_convex::{Formulation, LoopPlan, LoopProblem, SolverOptions};
    pub use arb_core::{
        backoff::{Backoff, BackoffConfig},
        convexopt,
        loop_def::ArbLoop,
        maxmax, maxprice,
        monetize::Usd,
        report::{compare, CompareOptions},
        traditional::{self, Method},
        Strategy, StrategyError, StrategyOutcome,
    };
    pub use arb_dexsim::{
        chain::{Chain, EventCursor},
        events::Event,
        tx::{BundleStep, Transaction},
        units::{to_display, to_raw},
    };
    pub use arb_engine::{
        ArbitrageOpportunity, EngineCheckpoint, EngineError, OpportunityPipeline, PipelineConfig,
        PipelineReport, RankingPolicy, RebalanceConfig, RuntimeCheckpoint, RuntimeReport,
        RuntimeStats, RuntimeTelemetry, ScreenTotals, ShardLoads, ShardedRuntime, StreamReport,
        StreamStats, StreamingEngine, TickHook,
    };
    pub use arb_graph::{Cycle, CycleId, CycleIndex, Partition, SyncOutcome, TokenGraph};
    pub use arb_ingest::{
        coalesce, HealthConfig, HealthMonitor, HealthState, IngestBatch, IngestConfig,
        IngestDriver, IngestError, IngestHandle, IngestStats, Ingestor, LagPolicy, SourceId,
    };
    pub use arb_journal::{
        IoShim, JournalConfig, JournalCursor, JournalError, JournalReader, JournalWriter,
        Recovered, RecoveredStream, Recovery, RecoveryStats, SnapshotStore, WriteVerdict,
    };
    pub use arb_obs::{FlightRecorder, Obs, ObsOptions, Registry, RegistrySnapshot};
    pub use arb_serve::{
        ClientClass, GovernorConfig, Publisher, RankedSnapshot, RankingDelta, ServeError,
        ServeHandle, ServeRuntime, Subscription, SubscriptionUpdate,
    };
    pub use arb_snapshot::{Generator, Snapshot, SnapshotConfig};
    pub use arb_workloads::{Scenario, ScenarioConfig, TickBatch, WorkloadSpec};
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_resolve() {
        use crate::prelude::*;
        let fee = FeeRate::UNISWAP_V2;
        assert_eq!(fee.ppm(), 3000);
        let _ = TokenId::new(0);
        let _ = SnapshotConfig::default();
    }
}
