//! Integration: the paper's §V worked example, asserted end to end
//! through the public facade.

use arbloops::prelude::*;

fn paper_loop() -> ArbLoop {
    let fee = FeeRate::UNISWAP_V2;
    ArbLoop::new(
        vec![
            SwapCurve::new(100.0, 200.0, fee).unwrap(),
            SwapCurve::new(300.0, 200.0, fee).unwrap(),
            SwapCurve::new(200.0, 400.0, fee).unwrap(),
        ],
        vec![TokenId::new(0), TokenId::new(1), TokenId::new(2)],
    )
    .unwrap()
}

const PRICES: [f64; 3] = [2.0, 10.2, 20.0];

#[test]
fn round_trip_rate_is_8_thirds_after_fees() {
    let expected = 0.997f64.powi(3) * 8.0 / 3.0;
    assert!((paper_loop().round_trip_rate() - expected).abs() < 1e-12);
}

#[test]
fn traditional_rotations_match_paper() {
    // Paper §V: (input, token profit, monetized $) per start token.
    let expected = [(27.0, 16.8, 33.7), (31.5, 19.7, 201.1), (16.4, 10.3, 205.6)];
    let l = paper_loop();
    for (start, (e_in, e_profit, e_usd)) in expected.into_iter().enumerate() {
        let out = traditional::evaluate(&l, &PRICES, start, Method::ClosedForm).unwrap();
        assert!(
            (out.optimal_input - e_in).abs() < 0.1,
            "start {start}: {out:?}"
        );
        assert!(
            (out.token_profit - e_profit).abs() < 0.1,
            "start {start}: {out:?}"
        );
        assert!(
            (out.monetized.value() - e_usd).abs() < 0.5,
            "start {start}: {out:?}"
        );
    }
}

#[test]
fn maxmax_and_maxprice_coincide_here() {
    let l = paper_loop();
    let mm = maxmax::evaluate(&l, &PRICES).unwrap();
    let mp = maxprice::evaluate(&l, &PRICES).unwrap();
    assert_eq!(mm.best.start, 2, "Z is both optimal and highest-priced");
    assert_eq!(mm.best, mp);
    assert!((mm.best.monetized.value() - 205.6).abs() < 0.5);
}

#[test]
fn convex_plan_matches_paper_flows() {
    let l = paper_loop();
    let cv = convexopt::evaluate(&l, &PRICES).unwrap();
    assert!((cv.monetized.value() - 206.1).abs() < 0.5);
    // Paper: 31.3 X→47.6 Y; 42.6 Y→24.8 Z; 17.1 Z→31.3 X.
    let expected = [(31.3, 47.6), (42.6, 24.8), (17.1, 31.3)];
    for (flow, (e_in, e_out)) in cv.plan.flows().iter().zip(expected) {
        assert!((flow.amount_in - e_in).abs() < 0.3, "{flow:?}");
        assert!((flow.amount_out - e_out).abs() < 0.3, "{flow:?}");
    }
    // Profit ≈ 5 Y + 7.7 Z, nothing in X.
    assert!(cv.plan.token_profits()[0].abs() < 0.05);
    assert!((cv.plan.token_profits()[1] - 5.0).abs() < 0.3);
    assert!((cv.plan.token_profits()[2] - 7.7).abs() < 0.3);
}

#[test]
fn fig2_crossover_behaviour() {
    // The MaxPrice heuristic (always Z at $20) loses to starting at X once
    // Px is high enough — the paper's Fig. 2 observation.
    let l = paper_loop();
    let prices = [15.0, 10.2, 20.0];
    let mm = maxmax::evaluate(&l, &prices).unwrap();
    let mp = maxprice::evaluate(&l, &prices).unwrap();
    assert_eq!(mm.best.start, 0);
    assert_eq!(mp.start, 2);
    assert!(mm.best.monetized.value() > mp.monetized.value());
}

#[test]
fn full_formulation_agrees_with_reduced() {
    let l = paper_loop();
    let reduced = convexopt::evaluate(&l, &PRICES).unwrap();
    let full = convexopt::evaluate_with(
        &l,
        &PRICES,
        &SolverOptions {
            formulation: Formulation::Full,
            ..SolverOptions::default()
        },
    )
    .unwrap();
    assert!(
        (full.monetized.value() - reduced.monetized.value()).abs() < 0.01,
        "full {} vs reduced {}",
        full.monetized,
        reduced.monetized
    );
}

#[test]
fn comparison_row_is_dominance_consistent() {
    let row = compare(&paper_loop(), &PRICES, &CompareOptions::default()).unwrap();
    assert!(row.satisfies_dominance(1e-6));
    assert!(row.convex.value() > row.maxmax.value());
}
