//! Integration: the full market simulation — agents, CEX, bot — with the
//! risk-freeness and determinism invariants.

use arbloops::bot::bot::BotAction;
use arbloops::prelude::*;

#[test]
fn maxmax_bot_is_risk_free_and_profitable() {
    let mut sim = MarketSim::new(MarketSimConfig {
        seed: 2024,
        num_tokens: 10,
        num_pools: 20,
        trader_max_fraction: 0.05,
        ..MarketSimConfig::default()
    })
    .unwrap();

    let tokens = sim.tokens().to_vec();
    let account = sim.bot().account();
    let mut prev: Vec<u128> = tokens
        .iter()
        .map(|t| sim.chain().state().balance(account, *t))
        .collect();
    let mut executed = 0usize;
    for _ in 0..20 {
        let summary = sim.step().unwrap();
        if matches!(summary.action, BotAction::Submitted { .. }) {
            executed += 1;
        }
        // Risk-freeness: token balances never decrease.
        let current: Vec<u128> = tokens
            .iter()
            .map(|t| sim.chain().state().balance(account, *t))
            .collect();
        for (b, a) in prev.iter().zip(&current) {
            assert!(a >= b, "bot balance decreased");
        }
        prev = current;
    }
    assert!(executed > 0, "bot should have found opportunities");
    assert!(sim.bot_pnl().value() > 0.0, "pnl = {}", sim.bot_pnl());
}

#[test]
fn convex_and_maxmax_bots_both_profit_on_same_market() {
    let run = |strategy: StrategyChoice| {
        let mut sim = MarketSim::new(MarketSimConfig {
            seed: 555,
            num_tokens: 8,
            num_pools: 16,
            trader_max_fraction: 0.05,
            bot: BotConfig {
                strategy,
                min_profit_usd: 0.25,
                ..BotConfig::default()
            },
            ..MarketSimConfig::default()
        })
        .unwrap();
        sim.run_blocks(15).unwrap();
        sim.bot_pnl().value()
    };
    let mm = run(StrategyChoice::MaxMax);
    let cv = run(StrategyChoice::Convex);
    assert!(mm > 0.0, "maxmax bot pnl {mm}");
    assert!(cv > 0.0, "convex bot pnl {cv}");
}

#[test]
fn simulation_is_deterministic() {
    let run = || {
        let mut sim = MarketSim::new(MarketSimConfig {
            seed: 31337,
            num_tokens: 8,
            num_pools: 16,
            ..MarketSimConfig::default()
        })
        .unwrap();
        sim.run_blocks(10).unwrap();
        (
            sim.chain().state().digest(),
            sim.bot_pnl().value().to_bits(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn chain_digest_changes_only_with_activity() {
    let mut sim = MarketSim::new(MarketSimConfig {
        seed: 99,
        num_tokens: 8,
        num_pools: 16,
        trader_probability: 0.0, // no flow at all
        lp_probability: 0.0,
        bot: BotConfig {
            min_profit_usd: f64::INFINITY, // bot never trades either
            ..BotConfig::default()
        },
        ..MarketSimConfig::default()
    })
    .unwrap();
    let d0 = sim.chain().state().digest();
    sim.run_blocks(5).unwrap();
    assert_eq!(
        sim.chain().state().digest(),
        d0,
        "no agents and an infinite bot floor ⇒ state unchanged"
    );
}
