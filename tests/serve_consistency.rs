//! Concurrent snapshot-consistency oracle for the serving layer.
//!
//! Reader threads race a publishing runtime across every workload in
//! the catalog and must only ever observe:
//!
//! * **complete snapshots** — coherent indexes, every query answerable
//!   from the frozen ranking (torn reads are impossible by
//!   construction; this verifies it);
//! * **monotonically non-decreasing revisions** — a reader never
//!   travels back in time;
//! * **bit-identical rankings** — at every revision, the published
//!   entries match the single-engine oracle fingerprint recorded for
//!   that revision before it was swapped in, and every point query
//!   (`top_k`, `by_token`, `by_pool`, `min_net_profit`) agrees with a
//!   brute-force scan of those entries.
//!
//! The writer drives the sharded runtime tick by tick, checks it
//! against a single [`StreamingEngine`], records the fingerprint the
//! next serve revision must carry, and only then publishes — so any
//! reader observing revision `r` can demand the recorded fingerprint.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use arbloops::prelude::*;
use arbloops::serve::{ClassLimit, GovernorConfig, Publisher, RankedSnapshot};
use arbloops::workloads::{QueryOp, ReadStormProfile, ScenarioConfig};

const READERS: usize = 3;

/// A thread-portable bit-exact digest of one ranking.
type Fingerprint = Vec<(Vec<TokenId>, Vec<PoolId>, String, u64, u64)>;

fn fingerprint(entries: &[ArbitrageOpportunity]) -> Fingerprint {
    entries
        .iter()
        .map(|opp| {
            (
                opp.cycle.tokens().to_vec(),
                opp.cycle.pools().to_vec(),
                opp.strategy.to_string(),
                opp.gross_profit.value().to_bits(),
                opp.net_profit.value().to_bits(),
            )
        })
        .collect()
}

/// Every point query must agree with a brute-force scan of the
/// snapshot's own entries — the queries are views, never recomputations.
fn check_queries(snapshot: &RankedSnapshot, ops: &[QueryOp]) {
    let entries = snapshot.entries();
    for op in ops {
        match *op {
            QueryOp::TopK(k) => {
                assert_eq!(snapshot.top_k(k).len(), k.min(entries.len()));
                for (a, b) in snapshot.top_k(k).iter().zip(entries) {
                    assert_eq!(
                        a.net_profit.value().to_bits(),
                        b.net_profit.value().to_bits(),
                        "top_k must be a ranking prefix"
                    );
                }
            }
            QueryOp::ByToken(token) => {
                let got: Vec<&ArbitrageOpportunity> = snapshot.by_token(token).collect();
                let expected: Vec<&ArbitrageOpportunity> = entries
                    .iter()
                    .filter(|opp| opp.cycle.tokens().contains(&token))
                    .collect();
                assert_eq!(got.len(), expected.len());
                for (a, b) in got.iter().zip(&expected) {
                    assert_eq!(a.cycle.pools(), b.cycle.pools());
                }
            }
            QueryOp::ByPool(pool) => {
                let got: Vec<&ArbitrageOpportunity> = snapshot.by_pool(pool).collect();
                let expected: Vec<&ArbitrageOpportunity> = entries
                    .iter()
                    .filter(|opp| opp.cycle.pools().contains(&pool))
                    .collect();
                assert_eq!(got.len(), expected.len());
                for (a, b) in got.iter().zip(&expected) {
                    assert_eq!(a.cycle.tokens(), b.cycle.tokens());
                }
            }
            QueryOp::MinNetProfit(floor) => {
                let got: Vec<&ArbitrageOpportunity> = snapshot.min_net_profit(floor).collect();
                assert_eq!(
                    got.len(),
                    entries
                        .iter()
                        .filter(|opp| opp.net_profit.value() >= floor)
                        .count()
                );
                for pair in got.windows(2) {
                    assert!(
                        pair[0].net_profit.value() >= pair[1].net_profit.value(),
                        "min_net_profit must yield descending net profit"
                    );
                }
            }
        }
    }
}

fn storm_config(seed: u64) -> ScenarioConfig {
    ScenarioConfig {
        seed,
        domains: 4,
        num_tokens: 20,
        num_pools: 40,
        ticks: 16,
        intensity: 1.0,
    }
}

/// Rates high enough that the governed path never starves the test,
/// while still exercising admission accounting on every read.
fn open_governor() -> GovernorConfig {
    GovernorConfig {
        limits: [ClassLimit {
            rate_per_sec: 50_000_000.0,
            burst: 1_000_000.0,
        }; 3],
        max_concurrent: 64,
    }
}

fn race(workload: &'static str, seed: u64) {
    let spec = arbloops::workloads::find(workload).expect("workload in catalog");
    let scenario = spec.scenario(&storm_config(seed)).expect("scenario");
    let profile = ReadStormProfile {
        seed: seed ^ 0xbeef,
        readers: READERS,
        ops_per_reader: 64,
        ..ReadStormProfile::default()
    };
    let plans = profile.plans(storm_config(seed).num_tokens, storm_config(seed).num_pools);

    let mut publisher = Publisher::new(open_governor());
    let oracle: Arc<Mutex<HashMap<u64, Fingerprint>>> = Arc::new(Mutex::new(HashMap::new()));
    oracle.lock().unwrap().insert(0, Vec::new());
    let done = Arc::new(AtomicBool::new(false));

    let readers: Vec<std::thread::JoinHandle<(u64, u64)>> = plans
        .into_iter()
        .map(|plan| {
            let handle = publisher.handle(arbloops::serve::ClientClass::ALL[plan.class_index]);
            let oracle = Arc::clone(&oracle);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut last_revision = 0u64;
                let mut reads = 0u64;
                let mut op_cursor = 0usize;
                loop {
                    let finishing = done.load(Ordering::SeqCst);
                    let snapshot = match handle.query() {
                        Ok(guard) => guard.into_snapshot(),
                        Err(_) => {
                            std::thread::yield_now();
                            continue;
                        }
                    };
                    assert!(
                        snapshot.revision() >= last_revision,
                        "revision went backwards: {} -> {}",
                        last_revision,
                        snapshot.revision()
                    );
                    last_revision = snapshot.revision();
                    let expected = oracle
                        .lock()
                        .unwrap()
                        .get(&snapshot.revision())
                        .cloned()
                        .unwrap_or_else(|| {
                            panic!(
                                "revision {} published without an oracle",
                                snapshot.revision()
                            )
                        });
                    assert_eq!(
                        fingerprint(snapshot.entries()),
                        expected,
                        "published ranking diverged from the oracle at revision {}",
                        snapshot.revision()
                    );
                    snapshot.assert_coherent();
                    check_queries(&snapshot, plan_ops(&plan.ops, &mut op_cursor));
                    reads += 1;
                    if finishing {
                        return (last_revision, reads);
                    }
                    std::thread::yield_now();
                }
            })
        })
        .collect();

    // Writer: tick the sharded runtime, verify against the
    // single-engine oracle, record the fingerprint, publish.
    let mut feed = scenario.feed.clone();
    let mut single = StreamingEngine::new(OpportunityPipeline::default(), scenario.pools.clone())
        .expect("single engine");
    let mut runtime =
        ShardedRuntime::new(OpportunityPipeline::default(), scenario.pools.clone(), 4)
            .expect("sharded runtime");
    single.refresh(&feed).expect("single cold start");
    let mut last_source = None;
    let mut publish =
        |runtime: &ShardedRuntime, publisher: &mut Publisher, ranked: &[ArbitrageOpportunity]| {
            let source = runtime.standing_revision();
            if last_source != Some(source) {
                last_source = Some(source);
                oracle
                    .lock()
                    .unwrap()
                    .insert(publisher.revision() + 1, fingerprint(ranked));
            }
            publisher.publish_if_changed(source, ranked);
        };
    let cold = runtime.refresh(&feed).expect("cold ranking");
    publish(&runtime, &mut publisher, &cold.opportunities);
    for (tick, batch) in scenario.ticks.iter().enumerate() {
        batch.apply_feed(&mut feed);
        let expected = single
            .apply_events(&batch.events, &feed)
            .expect("single tick");
        let merged = runtime
            .apply_events(&batch.events, &feed)
            .expect("sharded tick");
        assert_eq!(
            fingerprint(&merged.opportunities),
            fingerprint(&expected.opportunities),
            "{workload} tick {tick}: sharded ranking diverged from the single engine"
        );
        publish(&runtime, &mut publisher, &merged.opportunities);
    }
    done.store(true, Ordering::SeqCst);

    let final_revision = publisher.revision();
    assert!(final_revision > 0, "{workload}: nothing was ever published");
    for reader in readers {
        let (last_revision, reads) = reader.join().expect("reader panicked");
        assert!(reads > 0, "{workload}: a reader never completed a read");
        assert_eq!(
            last_revision, final_revision,
            "{workload}: a reader's final read missed the final revision"
        );
    }
}

/// The next slice of a reader's deterministic query cycle.
fn plan_ops<'a>(ops: &'a [QueryOp], cursor: &mut usize) -> &'a [QueryOp] {
    let start = *cursor % ops.len();
    let end = (start + 8).min(ops.len());
    *cursor = end % ops.len();
    &ops[start..end]
}

#[test]
fn steady_sparse_readers_see_consistent_snapshots() {
    race("steady-sparse", 9_101);
}

#[test]
fn whale_bursts_readers_see_consistent_snapshots() {
    race("whale-bursts", 9_202);
}

#[test]
fn fee_regime_shift_readers_see_consistent_snapshots() {
    race("fee-regime-shift", 9_303);
}

#[test]
fn pool_churn_readers_see_consistent_snapshots() {
    race("pool-churn", 9_404);
}

#[test]
fn degenerate_flood_readers_see_consistent_snapshots() {
    race("degenerate-flood", 9_505);
}
