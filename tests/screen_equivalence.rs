//! The profitability screen's correctness oracle.
//!
//! For every workload in the catalog, three consumers replay the **same**
//! seeded event stream under the same drifting feed:
//!
//! * a screened [`StreamingEngine`] (`PipelineConfig::screen = true`,
//!   the default) — log-sum screen, floor screen, scratch-arena fan-out;
//! * an unscreened engine (`screen = false`) — the pre-screen behavior,
//!   every dirty cycle fully prepared and evaluated;
//! * a screened [`ShardedRuntime`], merging per-shard screened engines.
//!
//! After every tick all rankings must be **bit-identical**: the screen
//! is an optimization, never an approximation — a screened-out cycle is
//! exactly one the full evaluation would have dropped. Mid-stream, the
//! screened engine is checkpointed and restored, and the restored copy
//! (whose log-sums are rebuilt deterministically, not round-tripped)
//! must agree with the live one for the rest of the stream. Floor-config
//! variants exercise the feed-priced profit-bound screen the same way.

use arbloops::prelude::*;
use arbloops::workloads::ScenarioConfig;

fn assert_identical(
    context: &str,
    actual: &[ArbitrageOpportunity],
    expected: &[ArbitrageOpportunity],
) {
    assert_eq!(
        actual.len(),
        expected.len(),
        "{context}: opportunity counts diverged"
    );
    for (position, (a, e)) in actual.iter().zip(expected).enumerate() {
        let context = format!("{context} position {position}");
        assert_eq!(a.cycle.tokens(), e.cycle.tokens(), "{context}: tokens");
        assert_eq!(a.cycle.pools(), e.cycle.pools(), "{context}: pools");
        assert_eq!(a.strategy, e.strategy, "{context}: strategy");
        assert_eq!(
            a.gross_profit.value().to_bits(),
            e.gross_profit.value().to_bits(),
            "{context}: gross profit"
        );
        assert_eq!(
            a.net_profit.value().to_bits(),
            e.net_profit.value().to_bits(),
            "{context}: net profit"
        );
    }
}

/// Replays one workload into the three consumers (plus, from mid-stream,
/// a restored copy), comparing after every tick.
fn replay(workload: &'static str, config: &ScenarioConfig, pipeline_config: PipelineConfig) {
    assert!(pipeline_config.screen, "the oracle screens by default");
    let spec = arbloops::workloads::find(workload).expect("workload in catalog");
    let scenario = spec.scenario(config).expect("scenario generates");
    let mut feed = scenario.feed.clone();
    let unscreened_config = PipelineConfig {
        screen: false,
        ..pipeline_config
    };

    let mut screened = StreamingEngine::new(
        OpportunityPipeline::new(pipeline_config),
        scenario.pools.clone(),
    )
    .expect("screened engine");
    let mut unscreened = StreamingEngine::new(
        OpportunityPipeline::new(unscreened_config),
        scenario.pools.clone(),
    )
    .expect("unscreened engine");
    let mut sharded = ShardedRuntime::new(
        OpportunityPipeline::new(pipeline_config),
        scenario.pools.clone(),
        4,
    )
    .expect("sharded runtime");
    let mut restored: Option<StreamingEngine> = None;
    let restore_at = scenario.ticks.len() / 2;

    let cold_expected = unscreened.refresh(&feed).expect("unscreened cold start");
    let cold_screened = screened.refresh(&feed).expect("screened cold start");
    let cold_sharded = sharded.refresh(&feed).expect("sharded cold start");
    assert_identical(
        &format!("{workload} cold start (screened)"),
        &cold_screened.opportunities,
        &cold_expected.opportunities,
    );
    assert_identical(
        &format!("{workload} cold start (sharded)"),
        &cold_sharded.opportunities,
        &cold_expected.opportunities,
    );

    let mut nonempty_ticks = 0usize;
    for (tick, batch) in scenario.ticks.iter().enumerate() {
        batch.apply_feed(&mut feed);
        let expected = unscreened
            .apply_events(&batch.events, &feed)
            .expect("unscreened tick");
        let got = screened
            .apply_events(&batch.events, &feed)
            .expect("screened tick");
        let merged = sharded
            .apply_events(&batch.events, &feed)
            .expect("sharded tick");
        assert_identical(
            &format!("{workload} tick {tick} (screened)"),
            &got.opportunities,
            &expected.opportunities,
        );
        assert_identical(
            &format!("{workload} tick {tick} (sharded)"),
            &merged.opportunities,
            &expected.opportunities,
        );
        if let Some(engine) = restored.as_mut() {
            let back = engine
                .apply_events(&batch.events, &feed)
                .expect("restored tick");
            assert_identical(
                &format!("{workload} tick {tick} (restored)"),
                &back.opportunities,
                &expected.opportunities,
            );
        }
        if tick + 1 == restore_at {
            // Checkpoint the screened engine mid-stream; the restored
            // copy rebuilds its log-sums deterministically from the
            // restored graph and must track the live engine (and the
            // unscreened oracle) for every remaining tick.
            let checkpoint = screened.checkpoint();
            let mut engine =
                StreamingEngine::restore(OpportunityPipeline::new(pipeline_config), &checkpoint)
                    .expect("restore");
            let report = engine.refresh(&feed).expect("post-restore refresh");
            assert_identical(
                &format!("{workload} post-restore refresh"),
                &report.opportunities,
                &expected.opportunities,
            );
            restored = Some(engine);
        }
        if !expected.opportunities.is_empty() {
            nonempty_ticks += 1;
        }
    }
    assert!(
        nonempty_ticks > 0,
        "{workload}: the scenario never produced an opportunity — the \
         equivalence would be vacuous"
    );
    assert!(
        screened.stats().cycles_screened_out > 0,
        "{workload}: the screen never fired — the comparison would be \
         vacuous: {}",
        screened.stats()
    );
    assert_eq!(
        unscreened.stats().cycles_screened_out,
        0,
        "{workload}: screen=false must disable the screen"
    );
    if pipeline_config.execution_cost_usd + pipeline_config.min_net_profit_usd > 0.0 {
        assert!(
            screened.stats().cycles_floor_screened > 0,
            "{workload}: floor config never exercised the profit-bound \
             screen: {}",
            screened.stats()
        );
        assert!(
            screened.stats().strategy_evaluations < unscreened.stats().strategy_evaluations,
            "{workload}: the floor screen must save strategy work \
             ({} vs {})",
            screened.stats().strategy_evaluations,
            unscreened.stats().strategy_evaluations
        );
    }
}

fn small_config(seed: u64) -> ScenarioConfig {
    ScenarioConfig {
        seed,
        domains: 4,
        num_tokens: 20,
        num_pools: 40,
        ticks: 24,
        intensity: 1.0,
    }
}

/// Execution cost + floor: the configuration under which the feed-priced
/// profit-bound screen can discharge marginal loops without evaluating
/// them.
fn floor_config() -> PipelineConfig {
    PipelineConfig {
        execution_cost_usd: 3.0,
        min_net_profit_usd: 1.0,
        ..PipelineConfig::default()
    }
}

#[test]
fn steady_sparse_screened_is_bit_identical() {
    replay(
        "steady-sparse",
        &small_config(1_101),
        PipelineConfig::default(),
    );
}

#[test]
fn whale_bursts_screened_is_bit_identical() {
    replay(
        "whale-bursts",
        &small_config(1_202),
        PipelineConfig::default(),
    );
}

#[test]
fn whale_bursts_floor_screen_is_bit_identical() {
    replay("whale-bursts", &small_config(1_212), floor_config());
}

#[test]
fn fee_regime_shift_screened_is_bit_identical() {
    let config = PipelineConfig {
        max_cycle_len: 4,
        ..PipelineConfig::default()
    };
    replay("fee-regime-shift", &small_config(1_303), config);
}

#[test]
fn fee_regime_shift_floor_screen_is_bit_identical() {
    let config = PipelineConfig {
        max_cycle_len: 4,
        ..floor_config()
    };
    replay("fee-regime-shift", &small_config(1_313), config);
}

#[test]
fn pool_churn_screened_is_bit_identical() {
    replay(
        "pool-churn",
        &small_config(1_404),
        PipelineConfig::default(),
    );
}

#[test]
fn degenerate_flood_screened_is_bit_identical() {
    replay(
        "degenerate-flood",
        &small_config(1_505),
        PipelineConfig::default(),
    );
}
