//! The durability subsystem's correctness oracle.
//!
//! For every workload in the catalog, a journaled sharded runtime is
//! crash-killed mid-stream at a seeded random event offset: events up to
//! the kill are durably journaled (with periodic snapshots + segment
//! compaction, exactly like the production loop), and the in-memory
//! fleet is then dropped. Recovery must rebuild a runtime whose ranked
//! output is **bit-identical** to an uninterrupted run at the same
//! point, must keep agreeing tick by tick through the rest of the
//! scenario, and must have replayed strictly fewer events than a genesis
//! replay would (the snapshot actually paid for itself) — asserted via
//! `RecoveryStats`.

use std::fs;
use std::path::PathBuf;

use arbloops::prelude::*;
use arbloops::workloads::ScenarioConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct Scratch(PathBuf);

impl Scratch {
    fn new(name: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("arbloops-recovery-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

/// Asserts ranked-output equality, bit for bit, position by position.
fn assert_reports_identical(
    context: &str,
    recovered: &[ArbitrageOpportunity],
    expected: &[ArbitrageOpportunity],
) {
    assert_eq!(
        recovered.len(),
        expected.len(),
        "{context}: opportunity counts diverged"
    );
    for (position, (r, e)) in recovered.iter().zip(expected).enumerate() {
        let context = format!("{context} position {position}");
        assert_eq!(r.cycle.tokens(), e.cycle.tokens(), "{context}: tokens");
        assert_eq!(r.cycle.pools(), e.cycle.pools(), "{context}: pools");
        assert_eq!(r.strategy, e.strategy, "{context}: strategy");
        assert_eq!(
            r.gross_profit.value().to_bits(),
            e.gross_profit.value().to_bits(),
            "{context}: gross profit"
        );
        assert_eq!(
            r.net_profit.value().to_bits(),
            e.net_profit.value().to_bits(),
            "{context}: net profit"
        );
    }
}

/// Journals one workload up to a seeded kill offset (checkpointing and
/// compacting along the way), crashes, recovers, and holds recovery to
/// the uninterrupted run — at the kill point and through every
/// remaining tick.
fn crash_and_recover(workload: &'static str, seed: u64) {
    let config = ScenarioConfig {
        seed,
        domains: 4,
        num_tokens: 20,
        num_pools: 40,
        ticks: 24,
        intensity: 1.0,
    };
    let spec = arbloops::workloads::find(workload).expect("workload in catalog");
    let scenario = spec.scenario(&config).expect("scenario generates");
    let total = scenario.total_events();
    assert!(total >= 12, "{workload}: scenario too small to crash-test");

    // The seeded kill offset: late enough that a checkpoint exists,
    // strictly inside the stream so the crash interrupts real work.
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6a6f_7572);
    let kill = rng.gen_range(total / 3..total);
    let checkpoint_every = (total / 6).max(1);

    let scratch = Scratch::new(workload);
    let pipeline = OpportunityPipeline::default;

    // --- the doomed process: journal + checkpoint until the kill -------
    let mut writer = JournalWriter::open(&scratch.0, JournalConfig::default()).unwrap();
    let store = SnapshotStore::new(&scratch.0).unwrap();
    let mut doomed = ShardedRuntime::new(pipeline(), scenario.pools.clone(), 4).unwrap();
    let mut feed = scenario.feed.clone();
    let mut written = 0usize;
    let mut since_checkpoint = 0usize;
    let mut checkpoints = 0usize;
    for batch in &scenario.ticks {
        batch.apply_feed(&mut feed);
        if written + batch.events.len() >= kill {
            // The crash lands inside this tick: only the events below
            // the kill offset reach the (durable) journal; the engine
            // state is about to be lost anyway.
            writer.append_batch(&batch.events[..kill - written]);
            writer.commit().unwrap();
            break;
        }
        writer.append_batch(&batch.events);
        writer.commit().unwrap();
        written += batch.events.len();
        doomed.apply_events(&batch.events, &feed).unwrap();
        since_checkpoint += batch.events.len();
        if since_checkpoint >= checkpoint_every {
            store.write(written as u64, &doomed.checkpoint()).unwrap();
            writer.compact_below(written as u64).unwrap();
            since_checkpoint = 0;
            checkpoints += 1;
        }
    }
    assert!(
        checkpoints > 0,
        "{workload}: no checkpoint before the kill — recovery would be \
         vacuous (kill {kill}, every {checkpoint_every})"
    );
    drop(writer);
    drop(doomed); // 💥 crash: all in-memory engine state is gone

    // --- recovery ------------------------------------------------------
    let recovered = Recovery::new(&scratch.0, pipeline(), 4)
        .with_genesis_pools(scenario.pools.clone())
        .recover(&feed)
        .unwrap();
    let stats = recovered.stats;
    assert_eq!(stats.journal_tail, kill as u64, "{workload}");
    let snapshot_offset = stats.snapshot_offset.expect("checkpoint existed") as usize;
    assert_eq!(
        snapshot_offset + stats.events_replayed,
        kill,
        "{workload}: replay must cover exactly snapshot..kill"
    );
    assert!(
        stats.events_replayed < kill,
        "{workload}: snapshot recovery must replay strictly fewer events \
         than a genesis replay ({stats})"
    );
    let line = stats.to_string();
    assert!(line.contains("snapshot@"), "{line}");

    // --- the uninterrupted oracle at the kill point --------------------
    // Standing rankings are a pure function of (state, feed) after a
    // refresh, so the oracle may replay the prefix under the kill-time
    // feed in one batch.
    let flat: Vec<Event> = scenario
        .ticks
        .iter()
        .flat_map(|t| t.events.iter().copied())
        .take(kill)
        .collect();
    let mut oracle = ShardedRuntime::new(pipeline(), scenario.pools.clone(), 4).unwrap();
    let expected = oracle.apply_events(&flat, &feed).unwrap();
    let mut recovered_runtime = recovered.runtime;
    let restored = recovered_runtime.refresh(&feed).unwrap();
    assert_reports_identical(
        &format!("{workload} @kill {kill}"),
        &restored.opportunities,
        &expected.opportunities,
    );

    // --- and they stay identical for the rest of the scenario ----------
    let kill_tick = {
        let mut consumed = 0usize;
        scenario
            .ticks
            .iter()
            .position(|batch| {
                consumed += batch.events.len();
                consumed >= kill
            })
            .unwrap_or(scenario.ticks.len())
    };
    let before_kill_tick: usize = scenario.ticks[..kill_tick]
        .iter()
        .map(|t| t.events.len())
        .sum();
    let mut nonempty_ticks = 0usize;
    let mut consumed = kill;
    for (index, batch) in scenario.ticks.iter().enumerate().skip(kill_tick) {
        let events: &[Event] = if index == kill_tick {
            // Feed moves for this tick were applied pre-crash; serve the
            // events the crash cut off.
            &batch.events[kill - before_kill_tick..]
        } else {
            batch.apply_feed(&mut feed);
            &batch.events
        };
        consumed += events.len();
        let expected = oracle.apply_events(events, &feed).unwrap();
        let got = recovered_runtime.apply_events(events, &feed).unwrap();
        assert_reports_identical(
            &format!("{workload} tick {index}"),
            &got.opportunities,
            &expected.opportunities,
        );
        if !got.opportunities.is_empty() {
            nonempty_ticks += 1;
        }
    }
    assert_eq!(consumed, total, "{workload}: every event was replayed");
    assert!(
        nonempty_ticks > 0 || !restored.opportunities.is_empty(),
        "{workload}: the equivalence never saw a standing opportunity — vacuous"
    );
}

#[test]
fn steady_sparse_recovers_bit_identically() {
    crash_and_recover("steady-sparse", 1_101);
}

#[test]
fn whale_bursts_recovers_bit_identically() {
    crash_and_recover("whale-bursts", 2_202);
}

#[test]
fn fee_regime_shift_recovers_bit_identically() {
    crash_and_recover("fee-regime-shift", 3_303);
}

#[test]
fn pool_churn_recovers_bit_identically() {
    crash_and_recover("pool-churn", 4_404);
}

#[test]
fn degenerate_flood_recovers_bit_identically() {
    crash_and_recover("degenerate-flood", 5_505);
}
