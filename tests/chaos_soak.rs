//! The chaos soak: every workload in the catalog, driven through the
//! full journaled ingest pipeline under the standard all-sites fault
//! plan (source outages, bad feed data, journal write/fsync/torn/ENOSPC
//! failures, a slow shard, one mid-tick panic), must **reconverge**: the
//! post-fault final ranking is bit-identical to a never-faulted oracle's.
//!
//! Also proved here: same-seed reruns reproduce the identical fault
//! schedule and final fingerprint (the plan is a pure function of
//! `(seed, site, tick)`), and a soak with observability attached leaves
//! `chaos.*` / `health.*` metrics plus a flight-recorder dump behind.

use std::path::PathBuf;

use arbloops::chaos::harness::FLIGHT_DUMP;
use arbloops::prelude::*;
use arbloops::workloads;

fn soak_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("arbloops-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn soak_config(dir: PathBuf, seed: u64) -> SoakConfig {
    SoakConfig {
        scenario: ScenarioConfig {
            seed,
            domains: 4,
            num_tokens: 20,
            num_pools: 40,
            ticks: 32,
            intensity: 1.0,
        },
        ..SoakConfig::new(dir)
    }
}

fn soak(workload: &str, seed: u64, obs: Option<&Obs>) -> SoakOutcome {
    let spec = workloads::find(workload).expect("workload in catalog");
    let dir = soak_dir(workload);
    let config = soak_config(dir.clone(), seed);
    let plan = standard_plan(seed, config.scenario.ticks as u64);
    let outcome = arbloops::chaos::run_soak(spec, &config, plan, obs).expect("soak completes");
    let _ = std::fs::remove_dir_all(&dir);
    outcome
}

fn assert_reconverged(outcome: &SoakOutcome) {
    assert!(
        !outcome.faults.is_empty(),
        "{}: the plan must actually inject faults",
        outcome.workload
    );
    assert!(
        outcome.recoveries >= 1,
        "{}: the panic window must force at least one supervised recovery",
        outcome.workload
    );
    assert!(
        outcome.final_opportunities > 0,
        "{}: an empty final ranking would make the equality vacuous",
        outcome.workload
    );
    assert_eq!(
        outcome.journal_pending_at_end, 0,
        "{}: the quiet tail must drain the journal backlog",
        outcome.workload
    );
    assert!(
        outcome.reconverged(),
        "{}: post-fault ranking diverged from the never-faulted oracle \
         (soak {:#018x} vs oracle {:#018x}; {} faults, {} recoveries)",
        outcome.workload,
        outcome.fingerprint,
        outcome.oracle_fingerprint,
        outcome.faults.len(),
        outcome.recoveries,
    );
}

#[test]
fn steady_sparse_reconverges_after_faults() {
    assert_reconverged(&soak("steady-sparse", 1_101, None));
}

#[test]
fn whale_bursts_reconverges_after_faults() {
    assert_reconverged(&soak("whale-bursts", 1_202, None));
}

#[test]
fn fee_regime_shift_reconverges_after_faults() {
    assert_reconverged(&soak("fee-regime-shift", 1_303, None));
}

#[test]
fn pool_churn_reconverges_after_faults() {
    assert_reconverged(&soak("pool-churn", 1_404, None));
}

#[test]
fn degenerate_flood_reconverges_after_faults() {
    assert_reconverged(&soak("degenerate-flood", 1_505, None));
}

/// Determinism: the fault schedule, the recovery count, and the final
/// fingerprint are all pure functions of the seed.
#[test]
fn same_seed_reruns_reproduce_the_fault_schedule_and_the_outcome() {
    let first = soak("steady-sparse", 9_000, None);
    let second = soak("steady-sparse", 9_000, None);
    assert_eq!(first.faults, second.faults, "fault logs must be identical");
    assert_eq!(first.recoveries, second.recoveries);
    assert_eq!(first.fingerprint, second.fingerprint);

    let other_seed = soak("steady-sparse", 9_001, None);
    assert_ne!(
        first.faults, other_seed.faults,
        "a different seed must shuffle the schedule"
    );
}

/// With observability attached, a soak leaves the promised trail:
/// `chaos.*` counters, `health.*` gauges, and a flight-recorder dump
/// written by the supervisor on recovery.
#[test]
fn soak_mirrors_chaos_and_health_telemetry() {
    let spec = workloads::find("whale-bursts").expect("in catalog");
    let dir = soak_dir("telemetry");
    let config = soak_config(dir.clone(), 7_707);
    let plan = standard_plan(7_707, config.scenario.ticks as u64);
    let obs = Obs::default();
    let outcome =
        arbloops::chaos::run_soak(spec, &config, plan, Some(&obs)).expect("soak completes");
    assert_reconverged(&outcome);

    let snapshot = obs.registry().snapshot();
    let injected = snapshot.counter("chaos.injected").unwrap_or(0);
    assert_eq!(
        injected as usize,
        outcome.faults.len(),
        "every injected fault is counted"
    );
    assert!(
        snapshot.counter("chaos.injected.panic-tick").unwrap_or(0) >= 1,
        "the per-kind counter tracks the panic"
    );
    assert_eq!(
        snapshot.counter("chaos.recoveries"),
        Some(u64::from(outcome.recoveries)),
        "supervised recoveries are counted"
    );
    assert!(
        snapshot.gauge("health.journal.io.state").is_some(),
        "the journal health gauge is exported"
    );
    assert!(
        snapshot.gauge("health.ingest.source.feed.state").is_some(),
        "per-source health gauges are exported"
    );
    assert_eq!(
        snapshot.gauge("chaos.reconverged"),
        Some(1.0),
        "the reconvergence verdict is exported"
    );
    assert!(
        dir.join(FLIGHT_DUMP).is_file(),
        "the supervisor dumps the flight recorder on recovery"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
