//! Integration: the strategies on loops longer than the paper's examples
//! (the paper's machinery "can be applied to the loops with any length").

use arbloops::prelude::*;

/// A profitable loop of arbitrary length: 1:1 pools with the mispricing
/// concentrated on the first hop.
fn long_loop(length: usize, edge: f64) -> ArbLoop {
    let fee = FeeRate::UNISWAP_V2;
    let mut hops = Vec::with_capacity(length);
    for i in 0..length {
        let out = if i == 0 { 10_000.0 * edge } else { 10_000.0 };
        hops.push(SwapCurve::new(10_000.0, out, fee).unwrap());
    }
    let tokens = (0..length as u32).map(TokenId::new).collect();
    ArbLoop::new(hops, tokens).unwrap()
}

#[test]
fn dominance_chain_holds_up_to_length_10() {
    for length in [4usize, 5, 6, 8, 10] {
        let loop_ = long_loop(length, 1.25);
        let prices: Vec<f64> = (0..length).map(|i| 1.0 + (i as f64) * 0.7).collect();
        let mm = maxmax::evaluate(&loop_, &prices).unwrap();
        let mp = maxprice::evaluate(&loop_, &prices).unwrap();
        let cv = convexopt::evaluate(&loop_, &prices).unwrap();
        assert!(mm.best.monetized >= mp.monetized, "length {length}");
        let tol = 1e-5 * (1.0 + mm.best.monetized.value());
        assert!(
            cv.monetized.value() >= mm.best.monetized.value() - tol,
            "length {length}: convex {} < maxmax {}",
            cv.monetized,
            mm.best.monetized
        );
        assert!(
            cv.plan.max_violation(loop_.hops()) < 1e-6,
            "length {length}"
        );
    }
}

#[test]
fn optimizer_methods_agree_on_long_loops() {
    for length in [4usize, 6, 10] {
        let loop_ = long_loop(length, 1.3);
        let hops = loop_.rotated_hops(0).unwrap();
        let (reference, _) =
            arbloops::strategies::traditional::optimal_input(&hops, Method::ClosedForm).unwrap();
        for method in [Method::Bisection, Method::Newton, Method::GoldenSection] {
            let (x, _) = arbloops::strategies::traditional::optimal_input(&hops, method).unwrap();
            assert!(
                (x - reference).abs() < 1e-4 * (1.0 + reference),
                "length {length} {method:?}: {x} vs {reference}"
            );
        }
    }
}

#[test]
fn full_formulation_agrees_on_length_6() {
    let loop_ = long_loop(6, 1.2);
    let prices: Vec<f64> = (0..6).map(|i| 1.0 + i as f64).collect();
    let reduced = convexopt::evaluate(&loop_, &prices).unwrap();
    let full = convexopt::evaluate_with(
        &loop_,
        &prices,
        &SolverOptions {
            formulation: Formulation::Full,
            ..SolverOptions::default()
        },
    )
    .unwrap();
    let scale = 1.0 + reduced.monetized.value();
    assert!(
        (full.monetized.value() - reduced.monetized.value()).abs() < 5e-3 * scale,
        "full {} vs reduced {}",
        full.monetized,
        reduced.monetized
    );
}

#[test]
fn rotation_invariance_of_convex_optimum() {
    // The convex optimum is a property of the loop, not of the entry
    // point: solving any rotation yields the same monetized profit.
    let loop_ = long_loop(5, 1.3);
    let prices: Vec<f64> = vec![2.0, 3.0, 5.0, 7.0, 11.0];
    let base = convexopt::evaluate(&loop_, &prices).unwrap();
    for start in 1..5 {
        let hops = loop_.rotated_hops(start).unwrap();
        let tokens: Vec<TokenId> = (0..5).map(|k| loop_.tokens()[(start + k) % 5]).collect();
        let rotated_prices: Vec<f64> = (0..5).map(|k| prices[(start + k) % 5]).collect();
        let rotated = ArbLoop::new(hops, tokens).unwrap();
        let cv = convexopt::evaluate(&rotated, &rotated_prices).unwrap();
        assert!(
            (cv.monetized.value() - base.monetized.value()).abs()
                < 1e-4 * (1.0 + base.monetized.value()),
            "rotation {start}: {} vs {}",
            cv.monetized,
            base.monetized
        );
    }
}

#[test]
fn zero_price_token_is_handled() {
    // Fig. 2 sweeps Px down to 0: a worthless token's profit contributes
    // nothing but the loop can still be worked for the others.
    let loop_ = long_loop(3, 1.3);
    let prices = [0.0, 5.0, 5.0];
    let mm = maxmax::evaluate(&loop_, &prices).unwrap();
    let cv = convexopt::evaluate(&loop_, &prices).unwrap();
    assert!(mm.best.monetized.value() > 0.0);
    assert_ne!(mm.best.start, 0, "never start from the worthless token");
    assert!(cv.monetized.value() >= mm.best.monetized.value() - 1e-5);
    // No value parked in the worthless token beyond tolerance.
    assert!(cv.plan.token_profits()[0] * prices[0] == 0.0);
}

#[test]
fn near_breakeven_loops_are_consistent() {
    // Rates barely above 1: tiny but positive optima, no solver blowups.
    for edge_ppm in [9_100, 9_500, 10_000, 20_000] {
        // fees cost ~0.9%; edges below that are unprofitable.
        let edge = 1.0 + edge_ppm as f64 / 1e6;
        let loop_ = long_loop(3, edge);
        let prices = [1.0, 1.0, 1.0];
        let mm = maxmax::evaluate(&loop_, &prices).unwrap();
        if loop_.round_trip_rate() <= 1.0 {
            assert_eq!(mm.best.monetized.value(), 0.0);
            continue;
        }
        assert!(mm.best.monetized.value() > 0.0, "edge {edge}");
        match convexopt::evaluate(&loop_, &prices) {
            Ok(cv) => assert!(
                cv.monetized.value() >= mm.best.monetized.value() * 0.99 - 1e-6,
                "edge {edge}"
            ),
            Err(StrategyError::Convex(arbloops::convex::ConvexError::FeasibilityConstruction)) => {
                // Acceptable for razor-thin interiors.
            }
            Err(e) => panic!("unexpected: {e}"),
        }
    }
}
