//! Crash post-mortem coverage: the panic hook installed by
//! `IngestBot::enable_observability` must dump the flight recorder to
//! the journal directory, the dump must parse as JSON-lines, and it
//! must cover the final tick the process died on (the newest
//! `ingest.tick` mark carries the last applied batch index).
//!
//! Panic hooks are process-global, so this test lives in its own
//! integration-test binary.

use std::fs;
use std::path::PathBuf;

use arbloops::prelude::*;

fn t(i: u32) -> TokenId {
    TokenId::new(i)
}

struct Scratch(PathBuf);

impl Scratch {
    fn new(name: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("arbloops-obsdump-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn paper_chain() -> Chain {
    let mut chain = Chain::new();
    let fee = FeeRate::UNISWAP_V2;
    chain
        .add_pool(t(0), t(1), to_raw(100.0), to_raw(200.0), fee)
        .unwrap();
    chain
        .add_pool(t(1), t(2), to_raw(300.0), to_raw(200.0), fee)
        .unwrap();
    chain
        .add_pool(t(2), t(0), to_raw(200.0), to_raw(400.0), fee)
        .unwrap();
    chain
}

fn paper_feed() -> PriceTable {
    [(t(0), 2.0), (t(1), 10.2), (t(2), 20.0)]
        .into_iter()
        .collect()
}

/// Extracts `"key":value` for a `u64` value from one JSON-lines record.
fn json_u64(line: &str, key: &str) -> Option<u64> {
    let marker = format!("\"{key}\":");
    let start = line.find(&marker)? + marker.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[test]
fn panic_dump_parses_and_covers_the_final_tick() {
    let scratch = Scratch::new("crash");
    let mut chain = paper_chain();
    let whale = chain.create_account();
    chain.mint(whale, t(0), to_raw(1_000.0));

    // Silence the default hook first: enable_observability chains
    // whatever hook is installed, so the deliberate panic below won't
    // spray a backtrace into the test output.
    std::panic::set_hook(Box::new(|_| {}));

    let mut bot = IngestBot::attach(
        &mut chain,
        &paper_feed(),
        BotConfig::default(),
        JournalSettings::new(&scratch.0),
        IngestConfig::default(),
    )
    .unwrap();
    bot.enable_observability(ObsConfig::default());

    let steps = 4u64;
    for i in 0..steps {
        chain.submit(Transaction::Swap {
            account: whale,
            pool: PoolId::new(0),
            token_in: t(0),
            amount_in: to_raw(2.0 + i as f64),
            min_out: 0,
        });
        chain.mine_block();
        bot.step(&mut chain, &[(t(1), 10.2 + 0.05 * i as f64)])
            .unwrap();
        chain.mine_block();
    }
    assert_eq!(bot.driver().batches_applied(), steps);

    // Kill the run. The hook fires during unwinding, before
    // catch_unwind returns, so the dump exists by the next line.
    let crash = std::panic::catch_unwind(|| panic!("simulated crash"));
    assert!(crash.is_err());

    let dump_path = bot.journal_dir().join("flight-recorder.jsonl");
    let dump = fs::read_to_string(&dump_path).expect("panic hook wrote the flight dump");

    let mut newest_tick = None;
    let mut lines = 0usize;
    for line in dump.lines() {
        lines += 1;
        // Well-formed JSON-lines: one object per line with the fixed
        // event fields.
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "malformed dump line: {line}"
        );
        for key in ["\"seq\":", "\"kind\":", "\"name\":"] {
            assert!(line.contains(key), "dump line missing {key}: {line}");
        }
        if line.contains("\"name\":\"ingest.tick\"") {
            assert!(line.contains("\"kind\":\"mark\""));
            newest_tick = json_u64(line, "value");
        }
    }
    assert!(lines > 0, "dump is empty");
    // The marks are zero-based batch indices; the ring keeps the most
    // recent events, so the last one seen is the tick we died on.
    assert_eq!(
        newest_tick,
        Some(steps - 1),
        "dump does not cover the final tick"
    );
}
