//! The streaming engine's correctness oracle.
//!
//! After *any* sequence of chain events — swaps, liquidity churn, new
//! pools — the [`StreamingEngine`]'s standing opportunity set must be
//! **bit-identical** to a fresh [`OpportunityPipeline`] run on the
//! resulting state under the same price feed: same cycles, same winning
//! strategies, same gross/net profits. The incremental path is an
//! optimization, never an approximation.

use arbloops::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Asserts ranked-output equality between the streaming engine and a
/// from-scratch batch run on the engine's live pool set.
fn assert_stream_equals_batch(engine: &StreamingEngine, feed: &PriceTable) {
    let pools: Vec<Pool> = engine.graph().live_pools().map(|(_, p)| *p).collect();
    let fresh = OpportunityPipeline::new(*engine.pipeline().config())
        .run(pools, feed)
        .expect("batch oracle");
    let streamed = engine.ranked();
    assert_eq!(
        streamed.len(),
        fresh.opportunities.len(),
        "opportunity counts diverged"
    );
    for (s, f) in streamed.iter().zip(&fresh.opportunities) {
        assert_eq!(s.cycle.tokens(), f.cycle.tokens(), "cycle tokens diverged");
        assert_eq!(s.cycle.pools(), f.cycle.pools(), "cycle pools diverged");
        assert_eq!(s.strategy, f.strategy, "winning strategy diverged");
        assert_eq!(
            s.gross_profit.value().to_bits(),
            f.gross_profit.value().to_bits(),
            "gross profit diverged on {}",
            s.cycle
        );
        assert_eq!(
            s.net_profit.value().to_bits(),
            f.net_profit.value().to_bits(),
            "net profit diverged on {}",
            s.cycle
        );
    }
}

/// The engine's graph must also mirror the chain's pool reserves exactly
/// (same `to_display` of the same raw words).
fn assert_graph_mirrors_chain(engine: &StreamingEngine, chain: &Chain) {
    assert_eq!(engine.graph().pool_count(), chain.state().pool_count());
    for (i, on_chain) in chain.state().pools().iter().enumerate() {
        let mirrored = &engine.graph().pools()[i];
        let expected = on_chain.to_analysis_pool().expect("representable");
        assert_eq!(mirrored.reserve_a(), expected.reserve_a(), "pool {i}");
        assert_eq!(mirrored.reserve_b(), expected.reserve_b(), "pool {i}");
    }
}

fn seeded_market(seed: u64, num_tokens: usize, num_pools: usize) -> (Chain, PriceTable) {
    let config = SnapshotConfig {
        seed,
        num_tokens,
        num_pools,
        ..SnapshotConfig::default()
    };
    let snapshot = Generator::new(config).generate().expect("snapshot");
    let mut chain = Chain::new();
    for pool in snapshot.pools() {
        chain
            .add_pool(
                pool.token_a(),
                pool.token_b(),
                to_raw(pool.reserve_a()),
                to_raw(pool.reserve_b()),
                pool.fee(),
            )
            .expect("seed pool");
    }
    let mut feed = PriceTable::new();
    for i in 0..snapshot.token_count() as u32 {
        let t = TokenId::new(i);
        feed.set(t, snapshot.usd_price(t).expect("priced"));
    }
    (chain, feed)
}

#[test]
fn arbitrary_event_sequences_match_full_pipeline_runs() {
    let (mut chain, feed) = seeded_market(31, 10, 20);
    let mut rng = StdRng::seed_from_u64(0xfeed_beef);

    // Traders with inventory in every token.
    let traders: Vec<_> = (0..3).map(|_| chain.create_account()).collect();
    for trader in &traders {
        for i in 0..10u32 {
            chain.mint(*trader, TokenId::new(i), to_raw(10_000.0));
        }
    }

    let engine_pipeline = OpportunityPipeline::new(PipelineConfig::default());
    let pools: Vec<Pool> = chain
        .state()
        .pools()
        .iter()
        .map(|p| p.to_analysis_pool().expect("representable"))
        .collect();
    let mut engine = StreamingEngine::new(engine_pipeline, pools).expect("engine");
    let mut cursor = chain.subscribe();
    engine.refresh(&feed).expect("cold start");
    assert_stream_equals_batch(&engine, &feed);

    for round in 0..12 {
        // A burst of random swaps against random pools.
        for _ in 0..rng.gen_range(1usize..6) {
            let pool_index = rng.gen_range(0u32..chain.state().pool_count() as u32);
            let pool_id = PoolId::new(pool_index);
            let pool = chain.state().pool(pool_id).expect("pool");
            let token_in = if rng.gen_bool(0.5) {
                pool.token_a()
            } else {
                pool.token_b()
            };
            let trader = traders[rng.gen_range(0usize..traders.len())];
            chain.submit(Transaction::Swap {
                account: trader,
                pool: pool_id,
                token_in,
                amount_in: to_raw(rng.gen_range(0.1f64..200.0)),
                min_out: 0,
            });
        }
        // Mid-sequence, grow the universe: new pools must flow through
        // `PoolCreated` events, not a re-snapshot.
        if round == 5 || round == 9 {
            let a = rng.gen_range(0u32..10);
            let b = (a + 1 + rng.gen_range(0u32..9)) % 10;
            chain
                .add_pool(
                    TokenId::new(a),
                    TokenId::new(b),
                    to_raw(rng.gen_range(500.0f64..2_000.0)),
                    to_raw(rng.gen_range(500.0f64..2_000.0)),
                    FeeRate::UNISWAP_V2,
                )
                .expect("new pool");
        }
        chain.mine_block();

        let events = chain.drain_events(&mut cursor);
        engine.apply_events(&events, &feed).expect("apply batch");
        assert_graph_mirrors_chain(&engine, &chain);
        assert_stream_equals_batch(&engine, &feed);
    }

    let stats = engine.stats();
    assert!(stats.events_applied > 0);
    assert!(stats.pools_added == 2, "{stats}");
    assert!(
        stats.evaluations_saved > 0,
        "sparse deltas must save work: {stats}"
    );
}

#[test]
fn equivalence_survives_feed_moves_without_manual_dirtying() {
    let (mut chain, mut feed) = seeded_market(7, 8, 14);
    let trader = chain.create_account();
    for i in 0..8u32 {
        chain.mint(trader, TokenId::new(i), to_raw(5_000.0));
    }
    let pools: Vec<Pool> = chain
        .state()
        .pools()
        .iter()
        .map(|p| p.to_analysis_pool().expect("representable"))
        .collect();
    let mut engine =
        StreamingEngine::new(OpportunityPipeline::new(PipelineConfig::default()), pools)
            .expect("engine");
    let mut cursor = chain.subscribe();
    engine.refresh(&feed).expect("cold start");

    let mut rng = StdRng::seed_from_u64(99);
    for _ in 0..6 {
        chain.submit(Transaction::Swap {
            account: trader,
            pool: PoolId::new(rng.gen_range(0u32..chain.state().pool_count() as u32)),
            token_in: TokenId::new(rng.gen_range(0u32..8)),
            amount_in: to_raw(rng.gen_range(1.0f64..50.0)),
            min_out: 0,
        });
        chain.mine_block();

        // The CEX moves every block. Refresh diffs the feed itself and
        // dirties the affected cycles, so no manual dirtying is needed
        // for exact batch equality under the new feed.
        for i in 0..8u32 {
            let t = TokenId::new(i);
            let price = feed.usd_price(t).expect("priced");
            feed.set(t, price * rng.gen_range(0.98f64..1.02));
        }
        let events = chain.drain_events(&mut cursor);
        engine.apply_events(&events, &feed).expect("apply");
        assert_stream_equals_batch(&engine, &feed);
    }
}
