//! Integration: the engine pipeline end-to-end on a paper-calibrated
//! snapshot, checking the paper's dominance theorems on the ranked
//! output: ConvexOpt ≥ MaxMax ≥ every Traditional rotation.

use std::sync::Arc;

use arbloops::engine::SharedStrategy;
use arbloops::prelude::*;
use arbloops::strategies::{maxmax, ConvexOptimization, MaxMax};

/// Tolerance scaled to the profit magnitude (f64 solver outputs).
fn tol(value: f64) -> f64 {
    1e-4 * (1.0 + value.abs())
}

fn paper_snapshot() -> Snapshot {
    let config = SnapshotConfig {
        seed: 20,
        num_tokens: 24,
        num_pools: 60,
        ..SnapshotConfig::default()
    };
    Generator::new(config).generate().expect("snapshot")
}

#[test]
fn ranked_opportunities_satisfy_dominance_theorems() {
    let snapshot = paper_snapshot();
    let pipeline = OpportunityPipeline::new(PipelineConfig {
        min_cycle_len: 3,
        max_cycle_len: 3,
        ..PipelineConfig::default()
    });
    let report = pipeline.run_snapshot(&snapshot).unwrap();
    assert!(
        !report.opportunities.is_empty(),
        "calibrated snapshot should admit arbitrage: {:?}",
        report.stats
    );

    for opp in &report.opportunities {
        // Re-evaluate each strategy on the opportunity's own loop/prices.
        let mm = MaxMax::default()
            .evaluate(&opp.loop_, &opp.prices)
            .expect("maxmax");
        let cv = ConvexOptimization::default()
            .evaluate(&opp.loop_, &opp.prices)
            .expect("convex");
        let mm_usd = mm.monetized.value();
        let cv_usd = cv.monetized.value();

        // Theorem: ConvexOpt dominates MaxMax.
        assert!(
            cv_usd >= mm_usd - tol(mm_usd),
            "convex {cv_usd} < maxmax {mm_usd} on {:?}",
            opp.cycle
        );

        // Theorem: MaxMax dominates every Traditional rotation (it *is*
        // the maximum over rotations — check each explicitly).
        let full = maxmax::evaluate(&opp.loop_, &opp.prices).expect("rotations");
        for rotation in &full.rotations {
            assert!(
                mm_usd >= rotation.monetized.value() - tol(mm_usd),
                "maxmax {mm_usd} < rotation {:?}",
                rotation
            );
        }

        // The winning sizing recorded on the opportunity matches the
        // best strategy's gross profit.
        let best = mm_usd.max(cv_usd);
        assert!(
            (opp.gross_profit.value() - best).abs() <= tol(best),
            "ranked gross {} != best strategy {best}",
            opp.gross_profit
        );
    }

    // Ranking is descending in net profit (default policy).
    for pair in report.opportunities.windows(2) {
        assert!(pair[0].net_profit >= pair[1].net_profit);
    }
}

#[test]
fn single_strategy_pipelines_preserve_dominance_order() {
    let snapshot = paper_snapshot();
    let base = PipelineConfig {
        min_cycle_len: 3,
        max_cycle_len: 3,
        ..PipelineConfig::default()
    };
    let run = |strategy: SharedStrategy| {
        OpportunityPipeline::new(base)
            .with_strategies(vec![strategy])
            .run_snapshot(&snapshot)
            .unwrap()
    };
    let mm_report = run(Arc::new(MaxMax::default()));
    let cv_report = run(Arc::new(ConvexOptimization::default()));

    // Convex finds at least as much total profit as MaxMax.
    let mm_total = mm_report.total_net_profit().value();
    let cv_total = cv_report.total_net_profit().value();
    assert!(
        cv_total >= mm_total - tol(mm_total),
        "convex total {cv_total} < maxmax total {mm_total}"
    );
}
