//! Diff-stream reconstruction oracle.
//!
//! A subscriber that attaches mid-run and applies every delta it is
//! pushed must hold, at all times, a ranking bit-identical to the
//! latest published [`RankedSnapshot`] — including across an adaptive
//! rebalance (shards reshuffle, ranking may not move → noop delta) and
//! a checkpoint/restore (the runtime's revision counter restarts, the
//! publisher re-anchors, readers and subscriptions stay attached).

use arbloops::prelude::*;
use arbloops::serve::{apply, GovernorConfig, ServeRuntime, SubscriptionUpdate};
use arbloops::workloads::ScenarioConfig;

type Fingerprint = Vec<(Vec<PoolId>, String, u64)>;

fn fingerprint(entries: &[ArbitrageOpportunity]) -> Fingerprint {
    entries
        .iter()
        .map(|opp| {
            (
                opp.cycle.pools().to_vec(),
                opp.strategy.to_string(),
                opp.net_profit.value().to_bits(),
            )
        })
        .collect()
}

fn aggressive() -> RebalanceConfig {
    RebalanceConfig {
        interval_ticks: 2,
        skew_threshold: 1.05,
        min_window_events: 4,
        ..RebalanceConfig::enabled()
    }
}

fn config(seed: u64) -> ScenarioConfig {
    ScenarioConfig {
        seed,
        domains: 4,
        num_tokens: 20,
        num_pools: 40,
        ticks: 24,
        intensity: 1.0,
    }
}

/// Drives one workload through a serving runtime with a mid-run
/// subscriber, applying deltas every tick and checkpoint/restoring at
/// `restore_at`. Returns (rebalances, deltas applied, noop deltas).
fn replay(workload: &'static str, seed: u64) -> (usize, usize, u64) {
    let spec = arbloops::workloads::find(workload).expect("workload in catalog");
    let scenario = spec.scenario(&config(seed)).expect("scenario generates");
    let mut feed = scenario.feed.clone();
    let subscribe_at = scenario.ticks.len() / 4;
    let restore_at = scenario.ticks.len() / 2;

    let runtime = ShardedRuntime::new(OpportunityPipeline::default(), scenario.pools.clone(), 4)
        .expect("runtime")
        .with_rebalance(aggressive());
    let mut serve = ServeRuntime::new(runtime, GovernorConfig::default());
    serve.refresh(&feed).expect("cold start");

    let handle = serve.handle(arbloops::serve::ClientClass::Analytics);
    let mut subscription = None;
    let mut view: Vec<ArbitrageOpportunity> = Vec::new();
    let mut deltas_applied = 0usize;

    for (tick, batch) in scenario.ticks.iter().enumerate() {
        if tick == subscribe_at {
            // Attach mid-run: the first poll resyncs to the current
            // snapshot, from which deltas alone must suffice.
            let mut sub = serve.subscribe();
            let SubscriptionUpdate::Resync(base) = sub.poll() else {
                panic!("first poll must resync");
            };
            view = base.entries().to_vec();
            subscription = Some(sub);
        }
        if tick == restore_at {
            // Checkpoint/restore the compute side; the serving side
            // (cell, handles, subscription) survives the swap.
            let (runtime, publisher) = serve.into_parts();
            let checkpoint = runtime.checkpoint();
            let restored = ShardedRuntime::restore(OpportunityPipeline::default(), &checkpoint)
                .expect("restore")
                .with_rebalance(aggressive());
            serve = ServeRuntime::with_publisher(restored, publisher);
        }
        batch.apply_feed(&mut feed);
        serve.apply_events(&batch.events, &feed).expect("tick");

        if let Some(sub) = subscription.as_mut() {
            match sub.poll() {
                SubscriptionUpdate::Current => {}
                SubscriptionUpdate::Deltas(chain) => {
                    for delta in chain {
                        view = apply(&view, &delta).expect("delta applies");
                        deltas_applied += 1;
                    }
                }
                SubscriptionUpdate::Resync(_) => {
                    panic!("{workload} tick {tick}: per-tick polling must never fall behind")
                }
            }
            // The reconstructed view is bit-identical to the latest
            // published snapshot, every tick.
            let published = handle.load();
            assert_eq!(
                fingerprint(&view),
                fingerprint(published.entries()),
                "{workload} tick {tick}: delta reconstruction diverged"
            );
            assert_eq!(sub.seen_revision(), Some(published.revision()));
        }
    }

    let rebalances = serve.runtime().stats().rebalances;
    (
        rebalances,
        deltas_applied,
        serve.publish_stats().noop_deltas,
    )
}

#[test]
fn deltas_reconstruct_across_rebalance_and_restore() {
    let mut total_rebalances = 0usize;
    let mut total_deltas = 0usize;
    for (i, spec) in arbloops::workloads::catalog().iter().enumerate() {
        let (rebalances, deltas, _noops) = replay(spec.name, 4_242 + i as u64);
        total_rebalances += rebalances;
        total_deltas += deltas;
    }
    assert!(
        total_rebalances > 0,
        "no workload rebalanced — the across-rebalance claim is vacuous"
    );
    assert!(
        total_deltas > 0,
        "no deltas ever streamed — the reconstruction claim is vacuous"
    );
}

/// The restore must also hold when the subscriber attaches *before* the
/// checkpoint and the ranking is actively changing around it: the
/// publisher re-anchor forces a publish whose delta is usually a noop
/// (the restored fleet reproduces the ranking bit-for-bit).
#[test]
fn restore_publishes_a_noop_delta_when_ranking_is_stable() {
    let spec = arbloops::workloads::find("steady-sparse").expect("in catalog");
    let scenario = spec.scenario(&config(7_777)).expect("scenario");
    let mut feed = scenario.feed.clone();
    let runtime = ShardedRuntime::new(OpportunityPipeline::default(), scenario.pools.clone(), 4)
        .expect("runtime");
    let mut serve = ServeRuntime::new(runtime, GovernorConfig::default());
    serve.refresh(&feed).expect("cold start");
    let revision_before = serve.published_revision();

    // Restore with no intervening events: the refresh after restore
    // must re-publish (re-anchored) and the delta must be a noop.
    let (runtime, publisher) = serve.into_parts();
    let checkpoint = runtime.checkpoint();
    let restored =
        ShardedRuntime::restore(OpportunityPipeline::default(), &checkpoint).expect("restore");
    let mut serve = ServeRuntime::with_publisher(restored, publisher);
    let mut sub = serve.subscribe();
    let SubscriptionUpdate::Resync(base) = sub.poll() else {
        panic!("first poll must resync");
    };
    let noops_before = serve.publish_stats().noop_deltas;
    serve.refresh(&feed).expect("post-restore refresh");
    assert_eq!(serve.published_revision(), revision_before + 1);
    assert_eq!(
        serve.publish_stats().noop_deltas,
        noops_before + 1,
        "a bit-identical restore must publish a noop delta"
    );
    let SubscriptionUpdate::Deltas(chain) = sub.poll() else {
        panic!("the re-anchor publish must stream to subscribers");
    };
    assert_eq!(chain.len(), 1);
    assert!(chain[0].is_noop());
    let view = apply(base.entries(), &chain[0]).expect("noop applies");
    assert_eq!(fingerprint(&view), fingerprint(base.entries()));

    // And ticking on from the restored fleet keeps streaming real deltas.
    let mut moved = false;
    let mut view = view;
    for batch in &scenario.ticks {
        batch.apply_feed(&mut feed);
        serve.apply_events(&batch.events, &feed).expect("tick");
        if let SubscriptionUpdate::Deltas(chain) = sub.poll() {
            for delta in chain {
                moved |= !delta.is_noop();
                view = apply(&view, &delta).expect("delta applies");
            }
        }
    }
    let final_snapshot = serve.handle(arbloops::serve::ClientClass::Bulk).load();
    assert_eq!(fingerprint(&view), fingerprint(final_snapshot.entries()));
    assert!(moved, "the tick stream never produced a real delta");
}
