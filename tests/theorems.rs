//! Integration: the paper's three theorems as cross-crate properties on
//! randomly generated markets (snapshot → graph → strategies).

use arbloops::prelude::*;
use proptest::prelude::*;

/// Builds the arbitrage-loop cases of a small random market.
fn market_cases(seed: u64) -> Vec<(ArbLoop, Vec<f64>)> {
    let config = SnapshotConfig {
        seed,
        num_tokens: 10,
        num_pools: 20,
        mispricing_std: 0.02, // strong mispricing: plenty of loops
        ..SnapshotConfig::default()
    };
    let snapshot = Generator::new(config).generate().unwrap().filtered(&config);
    let graph = TokenGraph::new(snapshot.pools().to_vec()).unwrap();
    let prices = snapshot.price_vector();
    graph
        .arbitrage_loops(3)
        .unwrap()
        .into_iter()
        .map(|cycle| {
            let hops = graph.curves_for(&cycle).unwrap();
            let loop_ = ArbLoop::new(hops, cycle.tokens().to_vec()).unwrap();
            let case_prices = cycle.tokens().iter().map(|t| prices[t.index()]).collect();
            (loop_, case_prices)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// T1: MaxMax dominates every Traditional rotation and MaxPrice.
    #[test]
    fn t1_maxmax_dominates(seed in 0u64..1_000) {
        for (loop_, prices) in market_cases(seed) {
            let mm = maxmax::evaluate(&loop_, &prices).unwrap();
            for rot in &mm.rotations {
                prop_assert!(mm.best.monetized >= rot.monetized);
            }
            let mp = maxprice::evaluate(&loop_, &prices).unwrap();
            prop_assert!(mm.best.monetized >= mp.monetized);
        }
    }

    /// T2: ConvexOptimization dominates MaxMax (to solver tolerance).
    #[test]
    fn t2_convex_dominates_maxmax(seed in 0u64..1_000) {
        for (loop_, prices) in market_cases(seed) {
            let mm = maxmax::evaluate(&loop_, &prices).unwrap();
            let cv = match convexopt::evaluate(&loop_, &prices) {
                Ok(cv) => cv,
                // Near-breakeven loops may have no usable interior.
                Err(StrategyError::Convex(
                    arbloops::convex::ConvexError::FeasibilityConstruction,
                )) => continue,
                Err(e) => panic!("unexpected error: {e}"),
            };
            let tol = 1e-5 * (1.0 + mm.best.monetized.value());
            prop_assert!(
                cv.monetized.value() >= mm.best.monetized.value() - tol,
                "convex {} < maxmax {}", cv.monetized, mm.best.monetized
            );
        }
    }
}

/// T3: when no rotation is profitable, the convex plan is identically
/// zero. Built from a fee-only market (pool prices agree with CEX).
#[test]
fn t3_no_arb_implies_zero_plan() {
    let config = SnapshotConfig {
        seed: 77,
        num_tokens: 10,
        num_pools: 20,
        mispricing_std: 0.0, // perfectly consistent prices: only fees remain
        ..SnapshotConfig::default()
    };
    let snapshot = Generator::new(config).generate().unwrap().filtered(&config);
    let graph = TokenGraph::new(snapshot.pools().to_vec()).unwrap();
    assert!(
        graph.arbitrage_loops(3).unwrap().is_empty(),
        "fee-only market must have no arbitrage loops"
    );
    // Try the convex solver on every (unprofitable) triangle directly.
    let prices = snapshot.price_vector();
    for cycle in graph.cycles(3).unwrap() {
        let hops = graph.curves_for(&cycle).unwrap();
        let case_prices: Vec<f64> = cycle.tokens().iter().map(|t| prices[t.index()]).collect();
        let problem = LoopProblem::new(hops, case_prices).unwrap();
        let plan = problem.solve(&SolverOptions::default()).unwrap();
        assert!(plan.is_zero(), "plan must be zero on a no-arb loop");
        assert_eq!(plan.monetized_profit(), 0.0);
    }
}

/// The detectors agree on arbitrage existence.
#[test]
fn detectors_agree_on_existence() {
    use arbloops::graph::bellman_ford;
    for seed in [1u64, 2, 3, 4, 5] {
        let config = SnapshotConfig {
            seed,
            num_tokens: 8,
            num_pools: 16,
            ..SnapshotConfig::default()
        };
        let snapshot = Generator::new(config).generate().unwrap().filtered(&config);
        let graph = TokenGraph::new(snapshot.pools().to_vec()).unwrap();
        let enum_found = (2..=4).any(|k| !graph.arbitrage_loops(k).unwrap().is_empty());
        let bfm_found = bellman_ford::find_negative_cycle(&graph).unwrap().is_some();
        // BFM searches all lengths; enumeration up to 4 is a lower bound.
        if enum_found {
            assert!(
                bfm_found,
                "seed {seed}: enumeration found a loop, BFM did not"
            );
        }
    }
}
