//! The sharded runtime's correctness oracle.
//!
//! For every workload in the catalog, one [`StreamingEngine`] and one
//! [`ShardedRuntime`] consume the **same** seeded event stream under the
//! same drifting feed. After every tick the runtime's merged global
//! ranking must be **bit-identical** to the single engine's: same cycles,
//! same winning strategies, same gross/net profits, same order. Sharding
//! is an execution strategy — routing, per-shard engines, broadcasts,
//! rebuilds, and the k-way merge may never change a single bit of output.

use arbloops::prelude::*;
use arbloops::workloads::ScenarioConfig;

/// Asserts merged-output equality, bit for bit, position by position.
fn assert_reports_identical(
    workload: &str,
    tick: usize,
    merged: &[ArbitrageOpportunity],
    expected: &[ArbitrageOpportunity],
) {
    assert_eq!(
        merged.len(),
        expected.len(),
        "{workload} tick {tick}: opportunity counts diverged"
    );
    for (position, (m, e)) in merged.iter().zip(expected).enumerate() {
        let context = format!("{workload} tick {tick} position {position}");
        assert_eq!(m.cycle.tokens(), e.cycle.tokens(), "{context}: tokens");
        assert_eq!(m.cycle.pools(), e.cycle.pools(), "{context}: pools");
        assert_eq!(m.strategy, e.strategy, "{context}: strategy");
        assert_eq!(
            m.gross_profit.value().to_bits(),
            e.gross_profit.value().to_bits(),
            "{context}: gross profit"
        );
        assert_eq!(
            m.net_profit.value().to_bits(),
            e.net_profit.value().to_bits(),
            "{context}: net profit"
        );
        assert_eq!(
            m.optimal_inputs.len(),
            e.optimal_inputs.len(),
            "{context}: input vector shape"
        );
    }
}

/// Replays one workload into both engines, comparing after every tick.
fn replay(workload: &'static str, config: &ScenarioConfig, pipeline_config: PipelineConfig) {
    let spec = arbloops::workloads::find(workload).expect("workload in catalog");
    let scenario = spec.scenario(config).expect("scenario generates");
    let mut feed = scenario.feed.clone();

    let mut single = StreamingEngine::new(
        OpportunityPipeline::new(pipeline_config),
        scenario.pools.clone(),
    )
    .expect("single engine");
    let mut runtime = ShardedRuntime::new(
        OpportunityPipeline::new(pipeline_config),
        scenario.pools.clone(),
        4,
    )
    .expect("sharded runtime");
    assert!(
        runtime.shard_count() > 1,
        "{workload}: multi-domain universe must actually shard"
    );

    // Cold start.
    let cold_single = single.refresh(&feed).expect("single cold start");
    let cold_merged = runtime.refresh(&feed).expect("sharded cold start");
    assert_reports_identical(
        workload,
        0,
        &cold_merged.opportunities,
        &cold_single.opportunities,
    );

    let mut nonempty_ticks = 0usize;
    for (tick, batch) in scenario.ticks.iter().enumerate() {
        batch.apply_feed(&mut feed);
        let expected = single
            .apply_events(&batch.events, &feed)
            .expect("single engine tick");
        let merged = runtime
            .apply_events(&batch.events, &feed)
            .expect("sharded runtime tick");
        assert_reports_identical(
            workload,
            tick + 1,
            &merged.opportunities,
            &expected.opportunities,
        );
        if !merged.opportunities.is_empty() {
            nonempty_ticks += 1;
        }
    }
    assert!(
        nonempty_ticks > 0,
        "{workload}: the scenario never produced an opportunity — the \
         equivalence would be vacuous"
    );
}

fn small_config(seed: u64) -> ScenarioConfig {
    ScenarioConfig {
        seed,
        domains: 4,
        num_tokens: 20,
        num_pools: 40,
        ticks: 24,
        intensity: 1.0,
    }
}

#[test]
fn steady_sparse_is_bit_identical() {
    replay(
        "steady-sparse",
        &small_config(101),
        PipelineConfig::default(),
    );
}

#[test]
fn whale_bursts_is_bit_identical() {
    replay(
        "whale-bursts",
        &small_config(202),
        PipelineConfig::default(),
    );
}

#[test]
fn fee_regime_shift_is_bit_identical() {
    // Longer loops: regime shifts matter most when 4-hop loops can route
    // around the new fee tiers.
    let config = PipelineConfig {
        max_cycle_len: 4,
        ..PipelineConfig::default()
    };
    replay("fee-regime-shift", &small_config(303), config);
}

#[test]
fn pool_churn_is_bit_identical_through_rebuilds() {
    replay("pool-churn", &small_config(404), PipelineConfig::default());
}

#[test]
fn degenerate_flood_is_bit_identical() {
    replay(
        "degenerate-flood",
        &small_config(505),
        PipelineConfig::default(),
    );
}

#[test]
fn top_k_cut_is_bit_identical() {
    // The merge must reproduce the global top-k from per-shard top-k
    // lists exactly.
    let config = PipelineConfig {
        top_k: Some(3),
        ..PipelineConfig::default()
    };
    replay("whale-bursts", &small_config(606), config);
}

#[test]
fn churn_scenarios_actually_exercise_rebuild_and_broadcast() {
    // Guard against the equivalence being vacuous: at least one catalog
    // entry must drive the runtime through PoolCreated broadcasts, and
    // the pool-churn entry through a cross-domain rebuild.
    let spec = arbloops::workloads::find("pool-churn").expect("in catalog");
    let config = ScenarioConfig {
        ticks: 48,
        ..small_config(404)
    };
    let scenario = spec.scenario(&config).expect("scenario");
    let mut feed = scenario.feed.clone();
    let mut runtime =
        ShardedRuntime::new(OpportunityPipeline::default(), scenario.pools.clone(), 4)
            .expect("runtime");
    for batch in &scenario.ticks {
        batch.apply_feed(&mut feed);
        runtime.apply_events(&batch.events, &feed).expect("tick");
    }
    let stats = runtime.stats();
    assert!(stats.broadcasts > 0, "no PoolCreated broadcast: {stats}");
    assert!(
        stats.rebuilds > 0,
        "no cross-domain bridge triggered a rebuild: {stats}"
    );
}
