//! The observability layer's correctness oracle: instrumentation must
//! be a pure observer.
//!
//! Two runs of the same seeded scenario — one with `arb-obs` wired in,
//! one without — must make bit-identical decisions and report identical
//! legacy stats. And the instrumented run's exported registry snapshot
//! must reproduce the legacy `StreamStats` / `IngestStats` displays
//! counter for counter: the migration kept the old structs as the
//! source of truth, so the registry is a mirror, never a fork.

use std::fs;
use std::path::PathBuf;

use arbloops::bot::BotAction;
use arbloops::prelude::*;

fn t(i: u32) -> TokenId {
    TokenId::new(i)
}

struct Scratch(PathBuf);

impl Scratch {
    fn new(name: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("arbloops-obseq-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn paper_chain() -> Chain {
    let mut chain = Chain::new();
    let fee = FeeRate::UNISWAP_V2;
    chain
        .add_pool(t(0), t(1), to_raw(100.0), to_raw(200.0), fee)
        .unwrap();
    chain
        .add_pool(t(1), t(2), to_raw(300.0), to_raw(200.0), fee)
        .unwrap();
    chain
        .add_pool(t(2), t(0), to_raw(200.0), to_raw(400.0), fee)
        .unwrap();
    chain
}

fn paper_feed() -> PriceTable {
    [(t(0), 2.0), (t(1), 10.2), (t(2), 20.0)]
        .into_iter()
        .collect()
}

/// One whale-perturbed block: deterministic swap, mine, decide, mine.
/// Returns the decision reduced to comparable bits.
fn perturb_and_mine(chain: &mut Chain, whale: AccountId, block: usize) {
    chain.submit(Transaction::Swap {
        account: whale,
        pool: PoolId::new(0),
        token_in: t(0),
        amount_in: to_raw(2.0 + block as f64),
        min_out: 0,
    });
    chain.mine_block();
}

type AccountId = arbloops::dexsim::state::AccountId;

fn action_bits(action: &BotAction) -> Option<(u64, usize)> {
    match action {
        BotAction::Idle => None,
        BotAction::Submitted { expected, hops } => Some((expected.value().to_bits(), *hops)),
    }
}

const BLOCKS: usize = 8;

/// Asserts every `engine.*` counter in `snapshot` equals its
/// `StreamStats` source field.
fn assert_stream_stats_mirrored(snapshot: &RegistrySnapshot, stats: &StreamStats) {
    let expected: [(&str, usize); 20] = [
        ("engine.events_applied", stats.events_applied),
        ("engine.syncs_applied", stats.syncs_applied),
        ("engine.pools_added", stats.pools_added),
        ("engine.pools_retired", stats.pools_retired),
        ("engine.pools_revived", stats.pools_revived),
        ("engine.cycles_added", stats.cycles_added),
        ("engine.cycles_retired", stats.cycles_retired),
        ("engine.cycles_dirtied", stats.cycles_dirtied),
        ("engine.cycles_evaluated", stats.cycles_evaluated),
        ("engine.strategy_evaluations", stats.strategy_evaluations),
        ("engine.evaluations_saved", stats.evaluations_saved),
        ("engine.refreshes", stats.refreshes),
        ("engine.cycles_screened_out", stats.cycles_screened_out),
        ("engine.cycles_floor_screened", stats.cycles_floor_screened),
        ("engine.cycles_hop_screened", stats.cycles_hop_screened),
        (
            "engine.cycles_degenerate_skipped",
            stats.cycles_degenerate_skipped,
        ),
        ("engine.screen_delta_updates", stats.screen_delta_updates),
        ("engine.screen_resummations", stats.screen_resummations),
        ("engine.scratch_grow_events", stats.scratch_grow_events),
        ("engine.dirty_bitset_capacity", stats.dirty_bitset_capacity),
    ];
    for (metric, legacy) in expected {
        assert_eq!(
            snapshot.counter(metric),
            Some(legacy as u64),
            "{metric} diverged from StreamStats"
        );
    }
}

#[test]
fn streaming_bot_registry_reproduces_stream_stats_without_perturbing_decisions() {
    let config = BotConfig {
        mode: ScanMode::Streaming,
        ..BotConfig::default()
    };
    let feed = paper_feed();

    let run = |instrument: bool| {
        let mut chain = paper_chain();
        let whale = chain.create_account();
        chain.mint(whale, t(0), to_raw(1_000.0));
        let mut bot = ArbBot::new(&mut chain, config);
        if instrument {
            bot.enable_observability(ObsConfig::default());
        }
        let mut actions = Vec::new();
        for block in 0..BLOCKS {
            perturb_and_mine(&mut chain, whale, block);
            let action = bot.step(&mut chain, &feed).unwrap();
            actions.push(action_bits(&action));
            chain.mine_block();
        }
        let stats = *bot.stream_stats().expect("streaming mode ran");
        let snapshot = bot.obs().map(|obs| obs.snapshot());
        let metrics = bot.metrics();
        (actions, stats, snapshot, metrics)
    };

    let (plain_actions, plain_stats, none_snapshot, none_metrics) = run(false);
    assert!(none_snapshot.is_none() && none_metrics.is_none());
    let (obs_actions, obs_stats, snapshot, metrics) = run(true);

    // The observer observed: decisions and legacy stats are untouched.
    assert_eq!(
        plain_actions, obs_actions,
        "instrumentation changed decisions"
    );
    assert_eq!(
        plain_stats, obs_stats,
        "instrumentation changed StreamStats"
    );
    assert!(
        obs_stats.events_applied > 0,
        "scenario exercised the engine"
    );
    assert!(obs_stats.strategy_evaluations > 0);

    // One exported snapshot reproduces the legacy display.
    let snapshot = snapshot.unwrap();
    assert_stream_stats_mirrored(&snapshot, &obs_stats);
    assert_eq!(
        snapshot.histogram("engine.refresh.eval_ns").unwrap().count,
        obs_stats.refreshes as u64,
        "one refresh span per refresh pass"
    );
    assert_eq!(snapshot.counter("bot.steps"), Some(BLOCKS as u64));

    // And the pull surface renders the same numbers.
    let metrics = metrics.unwrap();
    assert!(metrics.contains(&format!(
        "engine_events_applied {}\n",
        obs_stats.events_applied
    )));
    assert!(metrics.contains(&format!("bot_steps {BLOCKS}\n")));
}

#[test]
fn ingest_bot_registry_reproduces_ingest_stats_without_perturbing_decisions() {
    let run = |instrument: bool, scratch: &Scratch| {
        let mut chain = paper_chain();
        let whale = chain.create_account();
        chain.mint(whale, t(0), to_raw(1_000.0));
        let mut bot = IngestBot::attach(
            &mut chain,
            &paper_feed(),
            BotConfig::default(),
            JournalSettings::new(&scratch.0),
            IngestConfig::default(),
        )
        .unwrap();
        if instrument {
            bot.enable_observability(ObsConfig {
                // Keep this run's hook out of the process: hooks are
                // global and another test binary owns that behavior.
                panic_dump_dir: Some(scratch.0.join("unused-dump-dir")),
                ..ObsConfig::default()
            });
        }
        let mut actions = Vec::new();
        for block in 0..BLOCKS {
            perturb_and_mine(&mut chain, whale, block);
            let action = bot
                .step(&mut chain, &[(t(1), 10.2 + 0.05 * block as f64)])
                .unwrap();
            actions.push(action_bits(&action));
            chain.mine_block();
        }
        let stats = bot.ingest_stats();
        let batches = bot.driver().batches_applied();
        let snapshot = bot.obs().map(|obs| obs.snapshot());
        (actions, stats, batches, snapshot)
    };

    let plain_scratch = Scratch::new("plain");
    let obs_scratch = Scratch::new("obs");
    let (plain_actions, plain_stats, plain_batches, _) = run(false, &plain_scratch);
    let (obs_actions, obs_stats, obs_batches, snapshot) = run(true, &obs_scratch);

    assert_eq!(
        plain_actions, obs_actions,
        "instrumentation changed decisions"
    );
    assert_eq!(
        plain_stats, obs_stats,
        "instrumentation changed IngestStats"
    );
    assert_eq!(plain_batches, obs_batches);
    assert!(obs_stats.events_in > 0, "scenario exercised the front-end");

    let snapshot = snapshot.unwrap();
    let expected: [(&str, u64); 7] = [
        ("ingest.events_in", obs_stats.events_in),
        ("ingest.events_out", obs_stats.events_out),
        ("ingest.coalesced_away", obs_stats.coalesced_away),
        ("ingest.batches_sealed", obs_stats.batches_sealed),
        ("ingest.batches_delivered", obs_stats.batches_delivered),
        ("ingest.degraded_merges", obs_stats.degraded_merges),
        ("ingest.depth_high_water", obs_stats.depth_high_water as u64),
    ];
    for (metric, legacy) in expected {
        assert_eq!(
            snapshot.counter(metric),
            Some(legacy),
            "{metric} diverged from IngestStats"
        );
    }
    assert_eq!(
        snapshot.gauge("ingest.coalesce_ratio"),
        Some(obs_stats.coalesce_ratio())
    );
    // Every applied batch timed one apply span and one e2e latency.
    assert_eq!(
        snapshot.histogram("ingest.apply_ns").unwrap().count,
        obs_batches
    );
    assert_eq!(
        snapshot.histogram("ingest.e2e_ns").unwrap().count,
        obs_batches
    );
}
