//! Integration: snapshot → chain → engine pipeline → flash execution,
//! verifying that predicted profits are realized on-chain.

use arbloops::bot::execution::chained_bundle;
use arbloops::bot::scanner;
use arbloops::prelude::*;

/// Discovers ranked opportunities on the chain, pricing tokens from the
/// snapshot's CEX table.
fn discover(chain: &Chain, snapshot: &Snapshot) -> Vec<ArbitrageOpportunity> {
    let prices: PriceTable = snapshot
        .pools()
        .iter()
        .flat_map(|p| [p.token_a(), p.token_b()])
        .filter_map(|t| snapshot.usd_price(t).map(|p| (t, p)))
        .collect();
    let pipeline = OpportunityPipeline::new(PipelineConfig::default());
    scanner::discover(chain, &pipeline, &prices)
        .unwrap()
        .opportunities
}

/// Deploys a filtered snapshot onto a fresh chain.
fn deploy(config: &SnapshotConfig) -> (Chain, Snapshot) {
    let snapshot = Generator::new(*config).generate().unwrap().filtered(config);
    let mut chain = Chain::new();
    for pool in snapshot.pools() {
        chain
            .add_pool(
                pool.token_a(),
                pool.token_b(),
                to_raw(pool.reserve_a()),
                to_raw(pool.reserve_b()),
                pool.fee(),
            )
            .unwrap();
    }
    (chain, snapshot)
}

#[test]
fn predicted_profit_is_realized_on_chain() {
    let config = SnapshotConfig {
        seed: 9,
        num_tokens: 10,
        num_pools: 20,
        mispricing_std: 0.02,
        ..SnapshotConfig::default()
    };
    let (mut chain, snapshot) = deploy(&config);
    let opportunities = discover(&chain, &snapshot);
    assert!(!opportunities.is_empty(), "market should have loops");

    let opp = &opportunities[0];
    let mm = maxmax::evaluate(&opp.loop_, &opp.prices).unwrap();
    assert!(mm.best.token_profit > 0.0);

    let bot = chain.create_account();
    let steps = chained_bundle(&chain, &opp.cycle, mm.best.start, mm.best.optimal_input).unwrap();
    chain.submit(Transaction::FlashBundle {
        account: bot,
        steps,
    });
    let block = chain.mine_block();
    assert!(block.receipts[0].success, "{:?}", block.receipts[0].error);

    let start_token = opp.cycle.tokens()[mm.best.start];
    let realized = to_display(chain.state().balance(bot, start_token));
    // Integer execution matches the float prediction to sub-0.1% of the
    // predicted profit (rounding only).
    let relative_err = (realized - mm.best.token_profit).abs() / mm.best.token_profit;
    assert!(
        relative_err < 1e-3,
        "realized {realized} vs predicted {} (rel err {relative_err})",
        mm.best.token_profit
    );
}

#[test]
fn executed_loop_closes_the_opportunity() {
    let config = SnapshotConfig {
        seed: 10,
        num_tokens: 8,
        num_pools: 16,
        mispricing_std: 0.02,
        ..SnapshotConfig::default()
    };
    let (mut chain, snapshot) = deploy(&config);
    let before = discover(&chain, &snapshot);
    assert!(!before.is_empty());
    let target = before[0].cycle.clone();
    let rate_before = before[0].loop_.round_trip_rate();

    // Execute the optimal MaxMax trade on the best loop.
    let bot = chain.create_account();
    let hops = before[0].loop_.rotated_hops(0).unwrap();
    let (input, _) =
        arbloops::strategies::traditional::optimal_input(&hops, Method::ClosedForm).unwrap();
    let steps = chained_bundle(&chain, &target, 0, input).unwrap();
    chain.submit(Transaction::FlashBundle {
        account: bot,
        steps,
    });
    assert!(chain.mine_block().receipts[0].success);

    // The same cycle's round-trip rate collapses to ~1 (the paper's
    // optimality condition log Σ p* = 0 post-trade).
    let analysis: Vec<Pool> = chain
        .state()
        .pools()
        .iter()
        .map(|p| p.to_analysis_pool().unwrap())
        .collect();
    let graph = TokenGraph::new(analysis).unwrap();
    let rate_after = target.rate(&graph).unwrap();
    assert!(rate_before > 1.0);
    assert!(
        (rate_after - 1.0).abs() < 1e-3,
        "rate before {rate_before}, after {rate_after}"
    );
}

#[test]
fn reverted_bundles_leave_no_trace() {
    let config = SnapshotConfig {
        seed: 11,
        num_tokens: 8,
        num_pools: 16,
        mispricing_std: 0.0, // no arbitrage anywhere
        ..SnapshotConfig::default()
    };
    let (mut chain, _snapshot) = deploy(&config);
    let digest_before = chain.state().digest();

    // Force a hopeless loop trade: any triangle, large input.
    let analysis: Vec<Pool> = chain
        .state()
        .pools()
        .iter()
        .map(|p| p.to_analysis_pool().unwrap())
        .collect();
    let graph = TokenGraph::new(analysis).unwrap();
    let cycle = graph
        .cycles(3)
        .unwrap()
        .into_iter()
        .next()
        .expect("a triangle");
    let bot = chain.create_account();
    let steps = chained_bundle(&chain, &cycle, 0, 50.0).unwrap();
    chain.submit(Transaction::FlashBundle {
        account: bot,
        steps,
    });
    let block = chain.mine_block();
    assert!(!block.receipts[0].success, "loss-making bundle must revert");
    assert_eq!(
        chain.state().digest(),
        digest_before,
        "reverted bundle must not change state"
    );
}
