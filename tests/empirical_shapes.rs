//! Integration: the figure-shape invariants of the paper's §VI on a
//! reduced synthetic census (kept small so debug-build tests stay fast).

use arbloops::prelude::*;
use arbloops::strategies::batch::{compare_all_parallel, LoopCase};
use arbloops::strategies::report::LoopComparison;

fn study_rows(length: usize) -> Vec<LoopComparison> {
    let config = SnapshotConfig {
        seed: 20230901,
        num_tokens: 16,
        num_pools: 40,
        ..SnapshotConfig::default()
    };
    let snapshot = Generator::new(config).generate().unwrap().filtered(&config);
    let graph = TokenGraph::new(snapshot.pools().to_vec()).unwrap();
    let prices = snapshot.price_vector();
    let cases: Vec<LoopCase> = graph
        .arbitrage_loops(length)
        .unwrap()
        .into_iter()
        .map(|cycle| {
            let hops = graph.curves_for(&cycle).unwrap();
            let loop_ = ArbLoop::new(hops, cycle.tokens().to_vec()).unwrap();
            let case_prices = cycle.tokens().iter().map(|t| prices[t.index()]).collect();
            LoopCase {
                loop_,
                prices: case_prices,
            }
        })
        .collect();
    compare_all_parallel(&cases, &CompareOptions::default(), 4).unwrap()
}

#[test]
fn fig5_shape_all_traditional_points_below_diagonal() {
    let rows = study_rows(3);
    assert!(!rows.is_empty(), "census should contain loops");
    let mut ties = 0usize;
    for row in &rows {
        let mm = row.maxmax.value();
        let mut best_rotation = f64::NEG_INFINITY;
        for t in &row.traditional {
            assert!(
                t.value() <= mm + 1e-9 * (1.0 + mm),
                "a traditional point exceeds MaxMax: {row:?}"
            );
            best_rotation = best_rotation.max(t.value());
        }
        // MaxMax equals its best rotation by definition.
        assert!((best_rotation - mm).abs() <= 1e-9 * (1.0 + mm));
        ties += 1;
    }
    assert_eq!(ties, rows.len());
}

#[test]
fn fig6_shape_maxprice_unreliable() {
    let rows = study_rows(3);
    let below = rows
        .iter()
        .filter(|row| row.maxprice.value() < row.maxmax.value() - 1e-9)
        .count();
    // The heuristic must fail on a material fraction of loops (the paper's
    // central negative result). On synthetic censuses this is typically
    // 30–80%; assert it is neither zero nor universal.
    assert!(
        below > 0,
        "MaxPrice never failed — heuristic should be unreliable"
    );
    assert!(below < rows.len(), "MaxPrice always failed — implausible");
}

#[test]
fn fig7_shape_convex_tracks_maxmax() {
    let rows = study_rows(3);
    for row in &rows {
        let mm = row.maxmax.value();
        // Dominance to solver tolerance.
        assert!(
            row.convex.value() >= mm - 1e-4 * (1.0 + mm),
            "convex materially below maxmax: {row:?}"
        );
        // And near-equality (the paper's empirical finding): within 1%
        // for economically meaningful loops.
        if mm > 0.01 {
            assert!(
                (row.convex.value() - mm).abs() <= 0.01 * mm + 1e-4,
                "convex and maxmax diverge: {row:?}"
            );
        }
    }
}

#[test]
fn fig8_shape_token_profit_overlap() {
    let rows = study_rows(3);
    for row in &rows {
        let mm_total: f64 = row.maxmax_token_profits.iter().sum();
        let cv_total: f64 = row.convex_token_profits.iter().sum();
        // Same order of magnitude of extracted tokens: convex redistributes
        // profit across tokens but total extraction is comparable.
        if mm_total > 0.1 {
            assert!(
                cv_total > 0.0,
                "convex extracted nothing where maxmax extracted {mm_total}: {row:?}"
            );
        }
        // Convex never leaves a negative token position.
        for p in &row.convex_token_profits {
            assert!(*p >= -1e-6, "negative token profit: {row:?}");
        }
    }
}

#[test]
fn fig9_fig10_shape_length4() {
    let rows = study_rows(4);
    assert!(!rows.is_empty(), "length-4 census should contain loops");
    for row in &rows {
        let mm = row.maxmax.value();
        for t in &row.traditional {
            assert!(t.value() <= row.convex.value() + 1e-4 * (1.0 + mm));
        }
        assert!(row.convex.value() >= mm - 1e-4 * (1.0 + mm));
    }
}
