//! The adaptive rebalancer's correctness oracle.
//!
//! Adaptive hot-shard rebalancing (weighted repartitioning + bridge
//! splitting of the dominant component) is an *execution* policy: it may
//! move work between engines, but it may never change a bit of merged
//! output, and its split/steal decisions must be a pure function of the
//! journaled event stream. For every workload in the catalog this file
//! replays one seeded stream three ways —
//!
//! * a single [`StreamingEngine`] (the never-rebalanced oracle),
//! * a [`ShardedRuntime`] with an aggressive [`RebalanceConfig`],
//! * the same runtime checkpointed mid-stream and restored into a fresh
//!   fleet (whose load window restarts empty, so its rebalance *timing*
//!   may legitimately differ),
//!
//! — and demands bit-identical rankings after every tick. A separate
//! property replays the rebalanced runtime twice and demands identical
//! decisions: same rebalance count, same final shard count, same
//! slot-by-slot owner assignment.

use arbloops::prelude::*;
use arbloops::workloads::ScenarioConfig;

/// Tight thresholds so mild inter-domain skew already triggers the
/// adaptive path; correctness must hold at *any* setting.
fn aggressive() -> RebalanceConfig {
    RebalanceConfig {
        interval_ticks: 2,
        skew_threshold: 1.05,
        min_window_events: 4,
        ..RebalanceConfig::enabled()
    }
}

fn small_config(seed: u64) -> ScenarioConfig {
    ScenarioConfig {
        seed,
        domains: 4,
        num_tokens: 20,
        num_pools: 40,
        ticks: 24,
        intensity: 1.0,
    }
}

fn assert_identical(
    workload: &str,
    tick: usize,
    label: &str,
    got: &[ArbitrageOpportunity],
    expected: &[ArbitrageOpportunity],
) {
    assert_eq!(
        got.len(),
        expected.len(),
        "{workload} tick {tick} ({label}): opportunity counts diverged"
    );
    for (position, (g, e)) in got.iter().zip(expected).enumerate() {
        let context = format!("{workload} tick {tick} position {position} ({label})");
        assert_eq!(g.cycle.tokens(), e.cycle.tokens(), "{context}: tokens");
        assert_eq!(g.cycle.pools(), e.cycle.pools(), "{context}: pools");
        assert_eq!(g.strategy, e.strategy, "{context}: strategy");
        assert_eq!(
            g.net_profit.value().to_bits(),
            e.net_profit.value().to_bits(),
            "{context}: net profit"
        );
    }
}

/// Replays one workload into the single-engine oracle and a rebalanced
/// runtime (checkpoint/restoring the runtime at mid-stream), comparing
/// both sharded views against the oracle after every tick.
fn replay(workload: &'static str, config: &ScenarioConfig) {
    let spec = arbloops::workloads::find(workload).expect("workload in catalog");
    let scenario = spec.scenario(config).expect("scenario generates");
    let mut feed = scenario.feed.clone();
    let halfway = scenario.ticks.len() / 2;

    let mut single = StreamingEngine::new(OpportunityPipeline::default(), scenario.pools.clone())
        .expect("single engine");
    let mut runtime =
        ShardedRuntime::new(OpportunityPipeline::default(), scenario.pools.clone(), 4)
            .expect("sharded runtime")
            .with_rebalance(aggressive());

    single.refresh(&feed).expect("single cold start");
    runtime.refresh(&feed).expect("sharded cold start");
    let mut restored: Option<ShardedRuntime> = None;
    let mut nonempty_ticks = 0usize;

    for (tick, batch) in scenario.ticks.iter().enumerate() {
        if tick == halfway {
            let checkpoint = runtime.checkpoint();
            let fresh = ShardedRuntime::restore(OpportunityPipeline::default(), &checkpoint)
                .expect("restore")
                .with_rebalance(aggressive());
            restored = Some(fresh);
        }
        batch.apply_feed(&mut feed);
        let expected = single
            .apply_events(&batch.events, &feed)
            .expect("single tick");
        let merged = runtime
            .apply_events(&batch.events, &feed)
            .expect("rebalanced tick");
        assert_identical(
            workload,
            tick,
            "live",
            &merged.opportunities,
            &expected.opportunities,
        );
        if let Some(fresh) = restored.as_mut() {
            let back = fresh
                .apply_events(&batch.events, &feed)
                .expect("restored tick");
            assert_identical(
                workload,
                tick,
                "restored",
                &back.opportunities,
                &expected.opportunities,
            );
        }
        if !merged.opportunities.is_empty() {
            nonempty_ticks += 1;
        }
    }
    assert!(
        nonempty_ticks > 0,
        "{workload}: the scenario never produced an opportunity — the \
         equivalence would be vacuous"
    );
}

#[test]
fn steady_sparse_rebalanced_is_bit_identical() {
    replay("steady-sparse", &small_config(711));
}

#[test]
fn whale_bursts_rebalanced_is_bit_identical() {
    replay("whale-bursts", &small_config(722));
}

#[test]
fn fee_regime_shift_rebalanced_is_bit_identical() {
    replay("fee-regime-shift", &small_config(733));
}

#[test]
fn pool_churn_rebalanced_is_bit_identical_through_rebuilds() {
    replay("pool-churn", &small_config(744));
}

#[test]
fn degenerate_flood_rebalanced_is_bit_identical() {
    replay("degenerate-flood", &small_config(755));
}

/// Replays one workload through a rebalanced runtime and returns the
/// decision trace: rebalance count, final shard count, and the final
/// slot-by-slot owner assignment.
fn decision_trace(workload: &str, config: &ScenarioConfig) -> (usize, usize, Vec<Vec<PoolId>>) {
    let spec = arbloops::workloads::find(workload).expect("workload in catalog");
    let scenario = spec.scenario(config).expect("scenario generates");
    let mut feed = scenario.feed.clone();
    let mut runtime =
        ShardedRuntime::new(OpportunityPipeline::default(), scenario.pools.clone(), 4)
            .expect("sharded runtime")
            .with_rebalance(aggressive());
    runtime.refresh(&feed).expect("cold start");
    for batch in &scenario.ticks {
        batch.apply_feed(&mut feed);
        runtime.apply_events(&batch.events, &feed).expect("tick");
    }
    let partition = runtime.partition();
    let members: Vec<Vec<PoolId>> = (0..partition.shard_count())
        .map(|shard| partition.members(shard).to_vec())
        .collect();
    (runtime.stats().rebalances, runtime.shard_count(), members)
}

#[test]
fn rebalance_decisions_are_deterministic_across_reruns() {
    let mut fired_anywhere = 0usize;
    for spec in arbloops::workloads::catalog() {
        let config = small_config(766);
        let a = decision_trace(spec.name, &config);
        let b = decision_trace(spec.name, &config);
        assert_eq!(a, b, "{}: split/steal decisions must replay", spec.name);
        fired_anywhere += a.0;
    }
    assert!(
        fired_anywhere > 0,
        "no workload ever tripped the aggressive thresholds — the \
         determinism property is vacuous"
    );
}
