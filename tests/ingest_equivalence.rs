//! The ingestion front-end's correctness oracle.
//!
//! Routing a workload's ticks through [`Ingestor`] → bounded queue →
//! [`IngestDriver`] must be **invisible** to the rankings: for every
//! workload in the catalog, the ingest path's merged opportunity set is
//! bit-identical to feeding the same [`ShardedRuntime`] directly, after
//! every tick. This holds even though the front-end coalesces events
//! (last-write-wins per pool / per token) and carries CEX price moves
//! inline as [`Event::FeedPrice`] — coalescing only discharges writes
//! that were provably unobservable, and the driver replays feed updates
//! into its own table before applying the tick's chain events, the same
//! "feed first" order the direct path uses.
//!
//! A mid-stream checkpoint/restore leg proves the driver's checkpoint is
//! self-contained (the price table rides inside it — no live feed needed
//! to resume), and a lagged `CoalesceHarder` leg proves degraded-mode
//! cross-tick merging still converges to the direct path's final
//! rankings.

use arbloops::prelude::*;
use arbloops::workloads::ScenarioConfig;

/// Asserts merged-output equality, bit for bit, position by position.
fn assert_reports_identical(
    workload: &str,
    tick: usize,
    through_ingest: &[ArbitrageOpportunity],
    expected: &[ArbitrageOpportunity],
) {
    assert_eq!(
        through_ingest.len(),
        expected.len(),
        "{workload} tick {tick}: opportunity counts diverged"
    );
    for (position, (i, e)) in through_ingest.iter().zip(expected).enumerate() {
        let context = format!("{workload} tick {tick} position {position}");
        assert_eq!(i.cycle.tokens(), e.cycle.tokens(), "{context}: tokens");
        assert_eq!(i.cycle.pools(), e.cycle.pools(), "{context}: pools");
        assert_eq!(i.strategy, e.strategy, "{context}: strategy");
        assert_eq!(
            i.gross_profit.value().to_bits(),
            e.gross_profit.value().to_bits(),
            "{context}: gross profit"
        );
        assert_eq!(
            i.net_profit.value().to_bits(),
            e.net_profit.value().to_bits(),
            "{context}: net profit"
        );
        assert_eq!(
            i.optimal_inputs.len(),
            e.optimal_inputs.len(),
            "{context}: input vector shape"
        );
    }
}

fn small_config(seed: u64) -> ScenarioConfig {
    ScenarioConfig {
        seed,
        domains: 4,
        num_tokens: 20,
        num_pools: 40,
        ticks: 24,
        intensity: 1.0,
    }
}

/// Drives one workload down both paths, comparing after every tick, and
/// checkpoint/restores the ingest path halfway through.
fn replay(workload: &'static str, config: &ScenarioConfig, pipeline_config: PipelineConfig) {
    let spec = arbloops::workloads::find(workload).expect("workload in catalog");
    let scenario = spec.scenario(config).expect("scenario generates");

    // Direct path: the oracle.
    let mut direct_feed = scenario.feed.clone();
    let mut direct = ShardedRuntime::new(
        OpportunityPipeline::new(pipeline_config),
        scenario.pools.clone(),
        4,
    )
    .expect("direct runtime");

    // Ingest path: feed source first (prices apply before chain events,
    // matching `TickBatch::apply_feed` on the direct path), then chain.
    let mut ingestor = Ingestor::new(IngestConfig::default());
    let feed_source = ingestor.register_source("cex-feed");
    let chain_source = ingestor.register_source("dexsim");
    let runtime = ShardedRuntime::new(
        OpportunityPipeline::new(pipeline_config),
        scenario.pools.clone(),
        4,
    )
    .expect("ingest runtime");
    let mut driver = IngestDriver::new(runtime, scenario.feed.clone(), ingestor.handle());

    // Cold start.
    let cold_expected = direct.refresh(&direct_feed).expect("direct cold start");
    ingestor.seal_block().expect("empty seal");
    let cold_ingest = driver
        .try_step()
        .expect("empty batch applies")
        .expect("a sealed batch was queued");
    assert_reports_identical(
        workload,
        0,
        &cold_ingest.opportunities,
        &cold_expected.opportunities,
    );

    let restore_at = scenario.ticks.len() / 2;
    let mut resumed: Option<(Ingestor, IngestDriver, SourceId, SourceId)> = None;
    let mut nonempty_ticks = 0usize;

    for (tick, batch) in scenario.ticks.iter().enumerate() {
        batch.apply_feed(&mut direct_feed);
        let expected = direct
            .apply_events(&batch.events, &direct_feed)
            .expect("direct tick");

        let report = {
            let (ingestor, driver, feed_source, chain_source) = match &mut resumed {
                Some((i, d, f, c)) => (i, d, *f, *c),
                None => (&mut ingestor, &mut driver, feed_source, chain_source),
            };
            ingestor
                .offer_feed_moves(feed_source, &batch.feed_moves)
                .expect("feed source registered");
            ingestor
                .offer(chain_source, batch.events.iter().copied())
                .expect("chain source registered");
            ingestor.seal_block().expect("seal");
            driver
                .try_step()
                .expect("batch applies")
                .expect("one batch per tick")
        };
        assert_reports_identical(
            workload,
            tick + 1,
            &report.opportunities,
            &expected.opportunities,
        );
        if !report.opportunities.is_empty() {
            nonempty_ticks += 1;
        }

        // Mid-stream: capture the driver's self-contained checkpoint and
        // resume into a *fresh* ingestor + driver. The price table must
        // ride inside the checkpoint — nothing else carries it over.
        if tick + 1 == restore_at {
            let mut checkpoint = driver.checkpoint();
            checkpoint.source_positions = ingestor.source_positions();
            assert!(
                !checkpoint.feed.is_empty(),
                "{workload}: the checkpoint must embed the price table"
            );

            let mut fresh = Ingestor::new(IngestConfig::default());
            let f = fresh.register_source("cex-feed");
            let c = fresh.register_source("dexsim");
            fresh
                .restore_positions(&checkpoint.source_positions)
                .expect("positions fit");
            assert_eq!(fresh.source_positions(), ingestor.source_positions());
            let restored = IngestDriver::restore(
                OpportunityPipeline::new(pipeline_config),
                &checkpoint,
                fresh.handle(),
            )
            .expect("checkpoint restores");
            resumed = Some((fresh, restored, f, c));
        }
    }
    assert!(
        nonempty_ticks > 0,
        "{workload}: the scenario never produced an opportunity — the \
         equivalence would be vacuous"
    );
    let (ingestor, driver) = match &resumed {
        Some((i, d, _, _)) => (i, d),
        None => (&ingestor, &driver),
    };
    let stats = ingestor.stats();
    assert_eq!(
        stats.events_in,
        stats.events_out + stats.coalesced_away,
        "{workload}: flow conservation on the drained stream: {stats}"
    );
    assert_eq!(driver.handle().depth(), 0, "{workload}: fully drained");
}

#[test]
fn steady_sparse_matches_direct_feeding() {
    replay(
        "steady-sparse",
        &small_config(101),
        PipelineConfig::default(),
    );
}

#[test]
fn whale_bursts_matches_direct_feeding() {
    replay(
        "whale-bursts",
        &small_config(202),
        PipelineConfig::default(),
    );
}

#[test]
fn fee_regime_shift_matches_direct_feeding() {
    let config = PipelineConfig {
        max_cycle_len: 4,
        ..PipelineConfig::default()
    };
    replay("fee-regime-shift", &small_config(303), config);
}

#[test]
fn pool_churn_matches_direct_feeding_through_rebuilds() {
    replay("pool-churn", &small_config(404), PipelineConfig::default());
}

#[test]
fn degenerate_flood_matches_direct_feeding() {
    replay(
        "degenerate-flood",
        &small_config(505),
        PipelineConfig::default(),
    );
}

/// A consumer that drains only every fourth tick under capacity 1 +
/// `CoalesceHarder` forces cross-tick merges, yet the final rankings
/// must still land exactly on the direct path's.
#[test]
fn lagged_consumer_in_degraded_mode_converges_to_direct_final_state() {
    let config = small_config(707);
    let spec = arbloops::workloads::find("degenerate-flood").expect("in catalog");
    let scenario = spec.scenario(&config).expect("scenario generates");

    let mut direct_feed = scenario.feed.clone();
    let mut direct = ShardedRuntime::new(OpportunityPipeline::default(), scenario.pools.clone(), 4)
        .expect("direct runtime");
    let mut final_expected = direct.refresh(&direct_feed).expect("cold start");

    let mut ingestor = Ingestor::new(IngestConfig {
        queue_capacity: 1,
        lag_policy: LagPolicy::CoalesceHarder,
        coalesce: true,
        ..IngestConfig::default()
    });
    let feed_source = ingestor.register_source("cex-feed");
    let chain_source = ingestor.register_source("dexsim");
    let runtime = ShardedRuntime::new(OpportunityPipeline::default(), scenario.pools.clone(), 4)
        .expect("ingest runtime");
    let mut driver = IngestDriver::new(runtime, scenario.feed.clone(), ingestor.handle());

    let mut last_ingest = None;
    for (tick, batch) in scenario.ticks.iter().enumerate() {
        batch.apply_feed(&mut direct_feed);
        final_expected = direct
            .apply_events(&batch.events, &direct_feed)
            .expect("direct tick");

        ingestor
            .offer_feed_moves(feed_source, &batch.feed_moves)
            .expect("registered");
        ingestor
            .offer(chain_source, batch.events.iter().copied())
            .expect("registered");
        ingestor
            .seal_block()
            .expect("seal never blocks in degraded mode");
        if tick % 4 == 3 {
            if let Some(report) = driver.drain().expect("merged batches apply") {
                last_ingest = Some(report);
            }
        }
    }
    ingestor.close();
    if let Some(report) = driver.drain().expect("tail batches apply") {
        last_ingest = Some(report);
    }
    let final_ingest = last_ingest.expect("the lagged run applied at least one batch");

    assert_reports_identical(
        "degenerate-flood/lagged",
        scenario.ticks.len(),
        &final_ingest.opportunities,
        &final_expected.opportunities,
    );
    let stats = ingestor.stats();
    assert!(
        stats.degraded_merges > 0,
        "capacity 1 with a lagging consumer must merge: {stats}"
    );
    assert!(
        stats.coalesce_ratio() > 1.0,
        "degenerate-flood must coalesce: {stats}"
    );
    assert_eq!(stats.events_in, stats.events_out + stats.coalesced_away);
}
